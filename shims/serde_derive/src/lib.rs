//! `#[derive(Serialize, Deserialize)]` for the offline `serde` shim.
//!
//! A dependency-free derive (no `syn`/`quote`): the input token stream is
//! walked directly. Supported shapes — everything this workspace derives:
//!
//! * structs with named fields, tuple structs, unit structs
//! * enums with unit, tuple and struct variants (tagged with a `u32`)
//!
//! Generics are intentionally unsupported and panic at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Advances `i` past any `#[...]` attributes and a `pub`/`pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(t) if is_punct(t, '#') => {
                // '#' then the bracketed attribute group.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
}

/// Advances `i` past a type, stopping after the `,` that ends the field
/// (or at end of stream). Tracks `<...>` nesting; `(...)`/`[...]` arrive
/// as single groups so they need no tracking.
fn skip_type_and_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') {
            depth -= 1;
        } else if is_punct(t, ',') && depth == 0 {
            *i += 1;
            return;
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde shim derive: expected field name");
        fields.push(name);
        i += 1;
        assert!(
            is_punct(&toks[i], ':'),
            "serde shim derive: expected ':' after field name"
        );
        i += 1;
        skip_type_and_comma(&toks, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        skip_type_and_comma(&toks, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde shim derive: expected variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        if let Some(t) = toks.get(i) {
            assert!(
                is_punct(t, ','),
                "serde shim derive: expected ',' between variants (discriminants unsupported)"
            );
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_of(&toks[i]).expect("serde shim derive: expected struct/enum");
    i += 1;
    let name = ident_of(&toks[i]).expect("serde shim derive: expected type name");
    i += 1;
    if toks.get(i).map(|t| is_punct(t, '<')).unwrap_or(false) {
        panic!("serde shim derive: generic types are unsupported");
    }
    let shape = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(t) if is_punct(t, ';') => Shape::UnitStruct,
            _ => panic!("serde shim derive: unrecognized struct body"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde shim derive: unrecognized enum body"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Derives the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => fields
            .iter()
            .map(|f| format!("::serde::Serialize::serialize(&self.{f}, out)?;"))
            .collect::<String>(),
        Shape::TupleStruct(n) => (0..*n)
            .map(|k| format!("::serde::Serialize::serialize(&self.{k}, out)?;"))
            .collect::<String>(),
        Shape::UnitStruct => String::new(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(tag, v)| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => {{ ::serde::Serialize::serialize(&{tag}u32, out)?; }}"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let sers: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b}, out)?;"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {{ ::serde::Serialize::serialize(&{tag}u32, out)?; {sers} }}",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let sers: String = fields
                                .iter()
                                .map(|f| format!("::serde::Serialize::serialize({f}, out)?;"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => {{ ::serde::Serialize::serialize(&{tag}u32, out)?; {sers} }}",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize(&self, out: &mut dyn ::std::io::Write) -> ::std::io::Result<()> {{\n\
             {body}\n\
             Ok(())\n\
           }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated impl must parse")
}

/// Derives the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(r)?,"))
                .collect();
            format!("Ok({name} {{ {inits} }})")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|_| "::serde::Deserialize::deserialize(r)?".to_string())
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(tag, v)| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!("{tag}u32 => {name}::{vn},"),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|_| "::serde::Deserialize::deserialize(r)?".to_string())
                                .collect();
                            format!("{tag}u32 => {name}::{vn}({}),", inits.join(", "))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(r)?,"))
                                .collect();
                            format!("{tag}u32 => {name}::{vn} {{ {inits} }},")
                        }
                    }
                })
                .collect();
            format!(
                "let __tag: u32 = ::serde::Deserialize::deserialize(r)?;\n\
                 Ok(match __tag {{\n\
                   {arms}\n\
                   _ => return Err(::std::io::Error::new(\n\
                     ::std::io::ErrorKind::InvalidData,\n\
                     format!(\"invalid enum tag {{__tag}} for {name}\"),\n\
                   )),\n\
                 }})"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn deserialize(r: &mut dyn ::std::io::Read) -> ::std::io::Result<Self> {{\n\
             {body}\n\
           }}\n\
         }}"
    );
    out.parse()
        .expect("serde shim derive: generated impl must parse")
}
