//! Offline stand-in for `bincode` 1.x, backed by the `serde` shim's
//! little-endian binary codec.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// Serialization/deserialization failure (bincode 1.x boxes its errors;
/// keeping the alias shape lets call sites treat it identically).
pub type Error = Box<ErrorKind>;

/// The failure cause.
#[derive(Debug)]
pub enum ErrorKind {
    /// Underlying I/O failure or malformed input.
    Io(std::io::Error),
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ErrorKind {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Box::new(ErrorKind::Io(e))
    }
}

/// Serializes `value` into `writer`.
///
/// # Errors
///
/// I/O failures from the writer.
pub fn serialize_into<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    value.serialize(&mut writer)?;
    writer.flush()?;
    Ok(())
}

/// Reads one `T` from `reader`.
///
/// # Errors
///
/// I/O failures or malformed data.
pub fn deserialize_from<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    Ok(T::deserialize(&mut reader)?)
}

/// Serializes `value` to an owned byte vector.
///
/// # Errors
///
/// Never fails in practice (in-memory writer), but keeps bincode's shape.
pub fn serialize<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    serialize_into(&mut out, value)?;
    Ok(out)
}

/// Deserializes one `T` from a byte slice.
///
/// # Errors
///
/// Malformed or truncated data.
pub fn deserialize<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    deserialize_from(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_buffers() {
        let v = vec![(1u32, -2.5f64), (3, 4.5)];
        let bytes = serialize(&v).unwrap();
        let back: Vec<(u32, f64)> = deserialize(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn truncated_input_reports_error() {
        let bytes = serialize(&12345u64).unwrap();
        let res: Result<u64, Error> = deserialize(&bytes[..3]);
        let err = res.unwrap_err();
        assert!(!err.to_string().is_empty());
    }
}
