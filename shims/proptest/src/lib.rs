//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: range and
//! tuple strategies, `collection::vec`, `any`, `prop_map` /
//! `prop_flat_map` / `prop_filter`, the `proptest!` macro and the
//! `prop_assert*` family. Failing inputs are reported by case index and
//! re-raised — there is no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies during generation.
pub type TestRng = StdRng;

/// Rejection signal raised by `prop_assert*` / `prop_assume!`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the message explains where.
    Fail(String),
    /// `prop_assume!` rejected the generated input.
    Reject,
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discards values failing `pred`, resampling (up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Full-range strategy for a primitive (`any::<u8>()` etc.).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// An exact length or half-open length range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.lo + 1 >= self.len.hi {
                self.len.lo
            } else {
                rng.gen_range(self.len.lo..self.len.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test seed derived from the test's path.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Executes `cases` generated inputs of one property.
pub fn run_property<F: FnMut(&mut TestRng) -> Result<(), TestCaseError>>(
    config: &ProptestConfig,
    name: &str,
    mut case: F,
) {
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    let mut executed = 0u32;
    let mut rejected = 0u32;
    while executed < config.cases {
        // Fresh per-case RNG so a failing case is reproducible in isolation.
        let mut case_rng = TestRng::seed_from_u64(rng.next_u64());
        match case(&mut case_rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(100).max(10_000),
                    "{name}: too many prop_assume! rejections"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {executed}: {msg}")
            }
        }
    }
}

/// Asserts a condition inside a property, signalling a test-case failure
/// instead of panicking (so the runner can report the case index).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Rejects the generated input (the case is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            #[allow(clippy::redundant_closure_call)]
            $crate::run_property(&config, concat!(module_path!(), "::", stringify!($name)), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_compose() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        let s = (0.0f64..1.0, 1usize..4)
            .prop_map(|(f, n)| vec![f; n])
            .prop_filter("nonempty", |v| !v.is_empty());
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 4);
        let flat = (1usize..5).prop_flat_map(|n| collection::vec(0u8..=255, n));
        let bytes = flat.generate(&mut rng);
        assert!((1..5).contains(&bytes.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_lengths_match(len in 0usize..20, v in collection::vec(any::<u8>(), 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(len < 20);
            prop_assert_ne!(v.len(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_case_index() {
        crate::run_property(&ProptestConfig::with_cases(8), "demo", |rng| {
            let v = crate::Strategy::generate(&(0u32..10), rng);
            prop_assert!(v < 5, "v was {}", v);
            Ok(())
        });
    }
}
