//! Offline stand-in for `rand` 0.8.
//!
//! Provides a deterministic xoshiro256++ [`rngs::StdRng`], the [`Rng`] /
//! [`SeedableRng`] traits and [`seq::SliceRandom`] — the exact subset this
//! workspace uses. Streams are deterministic per seed but are **not** the
//! same bit streams crates.io `rand` produces; in-repo consumers only rely
//! on reproducibility and statistical quality.

/// Low-level random source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from the full output range of an RNG
/// (the shim's equivalent of rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types uniformly samplable from a bounded range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                if inclusive {
                    // `lo + span*unit` cannot exceed hi by more than one
                    // rounding step; clamp keeps [lo, hi].
                    v.min(hi)
                } else if v >= hi {
                    // Rounding can land exactly on `hi`; fold back.
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive range samplable by [`Rng::gen_range`].
///
/// A single blanket impl per range shape (mirroring rand 0.8) so that
/// literal ranges unify their element type with the call site's.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        T::sample_range(lo, hi, true, rng)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full-range distribution
    /// (`f32`/`f64` are uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Uniformly shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_are_in_range_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let k = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn works_through_generic_bounds() {
        fn draw<R: super::Rng>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
