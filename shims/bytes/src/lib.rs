//! Offline stand-in for `bytes`: a growable byte buffer with the small
//! `BufMut` surface the frame codec uses.

/// A growable, contiguous byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_export() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3]);
    }
}
