//! Offline stand-in for `criterion`.
//!
//! A wall-clock micro-benchmark harness with criterion's call shape:
//! groups, `bench_function`, `iter`/`iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros. Reports mean time per
//! iteration and derived throughput on stdout, one `bench:` line per
//! benchmark (machine-readable enough for `run_all` to scrape).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup allocations (accepted for
/// call-compatibility; the shim re-runs setup for every iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Top-level harness state and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the time budget for measurement.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name} ==");
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            measurement_time,
            warm_up_time,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_bench(name, sample_size, measurement_time, warm_up_time, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks one function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    // Warm-up: run until the budget elapses.
    let warm_start = Instant::now();
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    while warm_start.elapsed() < warm_up_time {
        f(&mut bencher);
        if bencher.iters == 0 {
            break; // closure never called iter; avoid spinning forever
        }
    }

    // Measurement.
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    let meas_start = Instant::now();
    let mut samples = 0usize;
    while samples < sample_size && meas_start.elapsed() < measurement_time {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
        samples += 1;
        if b.iters == 0 {
            break;
        }
    }

    if iters == 0 {
        println!("bench: {name:<48} (no iterations)");
        return;
    }
    let per_iter = total.as_secs_f64() / iters as f64;
    println!(
        "bench: {name:<48} {:>12}  ({:.1} iters/s, {} iters)",
        format_time(per_iter),
        1.0 / per_iter,
        iters
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // A small inner batch amortizes clock reads for fast routines.
        let batch = 8;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let batch = 8;
        for _ in 0..batch {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += batch;
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_time_and_iters() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
