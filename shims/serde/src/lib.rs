//! Offline stand-in for `serde`.
//!
//! A compact little-endian binary codec with the same *spelling* as serde
//! (`Serialize`/`Deserialize` traits plus `#[derive(...)]`), sufficient
//! for the persistence this workspace does (datasets, trained models).
//! Derived impls write fields in declaration order; lengths are `u64`,
//! enum tags `u32`. See `shims/README.md`.

// Lets the derive's generated `::serde::...` paths resolve when the
// derive is used inside this crate (its own tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::io::{self, Read, Write};

/// Serializes `self` into a byte stream.
pub trait Serialize {
    /// Writes the binary encoding of `self` to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()>;
}

/// Reconstructs a value from the byte stream produced by [`Serialize`].
pub trait Deserialize: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` when the stream does not decode.
    fn deserialize(r: &mut dyn Read) -> io::Result<Self>;
}

#[inline]
fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

macro_rules! impl_le_primitive {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[inline]
            fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
                out.write_all(&self.to_le_bytes())
            }
        }
        impl Deserialize for $t {
            #[inline]
            fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
                let mut buf = [0u8; std::mem::size_of::<$t>()];
                r.read_exact(&mut buf)?;
                Ok(<$t>::from_le_bytes(buf))
            }
        }
    )*};
}

impl_le_primitive!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Serialize for usize {
    #[inline]
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        (*self as u64).serialize(out)
    }
}

impl Deserialize for usize {
    #[inline]
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        usize::try_from(u64::deserialize(r)?).map_err(|_| bad_data("usize overflow"))
    }
}

impl Serialize for isize {
    #[inline]
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        (*self as i64).serialize(out)
    }
}

impl Deserialize for isize {
    #[inline]
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        isize::try_from(i64::deserialize(r)?).map_err(|_| bad_data("isize overflow"))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        (u8::from(*self)).serialize(out)
    }
}

impl Deserialize for bool {
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        match u8::deserialize(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(bad_data("invalid bool")),
        }
    }
}

impl Serialize for char {
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        (*self as u32).serialize(out)
    }
}

impl Deserialize for char {
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        char::from_u32(u32::deserialize(r)?).ok_or_else(|| bad_data("invalid char"))
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        (self.len() as u64).serialize(out)?;
        out.write_all(self.as_bytes())
    }
}

impl Deserialize for String {
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        let len = u64::deserialize(r)? as usize;
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| bad_data("invalid utf-8"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        (self.len() as u64).serialize(out)?;
        for v in self {
            v.serialize(out)?;
        }
        Ok(())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        let len = u64::deserialize(r)? as usize;
        // Grow incrementally so a corrupt length cannot pre-allocate GBs.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::deserialize(r)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        match self {
            None => 0u8.serialize(out),
            Some(v) => {
                1u8.serialize(out)?;
                v.serialize(out)
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        match u8::deserialize(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(r)?)),
            _ => Err(bad_data("invalid option tag")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
        for v in self {
            v.serialize(out)?;
        }
        Ok(())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
        let mut out = [T::default(); N];
        for v in out.iter_mut() {
            *v = T::deserialize(r)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, out: &mut dyn Write) -> io::Result<()> {
                $(self.$n.serialize(out)?;)+
                Ok(())
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(r: &mut dyn Read) -> io::Result<Self> {
                Ok(($($t::deserialize(r)?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.serialize(&mut buf).unwrap();
        let mut r = buf.as_slice();
        let back = T::deserialize(&mut (&mut r as &mut dyn Read)).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(42u8);
        roundtrip(-7i64);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip('λ');
        roundtrip("hello Ṽ".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1.0f32, -2.0, 3.5]);
        roundtrip(Some(vec![1u16, 2, 3]));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, 2.0f64, String::from("x")));
        roundtrip([5u32; 4]);
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf = Vec::new();
        12345u64.serialize(&mut buf).unwrap();
        buf.truncate(3);
        let mut r = buf.as_slice();
        assert!(u64::deserialize(&mut (&mut r as &mut dyn Read)).is_err());
    }

    #[test]
    fn invalid_bool_is_invalid_data() {
        let buf = [7u8];
        let mut r = buf.as_slice();
        let err = bool::deserialize(&mut (&mut r as &mut dyn Read)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    struct Named {
        a: u32,
        b: Vec<f32>,
        c: Option<String>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone, Copy)]
    struct Tup(u8, i32);

    #[derive(Serialize, Deserialize, Debug, PartialEq, Clone)]
    enum Mixed {
        Unit,
        Pair(u8, u8),
        Rec { x: f64, y: Vec<u16> },
    }

    #[test]
    fn derived_struct_roundtrips() {
        roundtrip(Named {
            a: 9,
            b: vec![1.0, 2.0],
            c: Some("z".into()),
        });
        roundtrip(Tup(3, -4));
    }

    #[test]
    fn derived_enum_roundtrips() {
        roundtrip(Mixed::Unit);
        roundtrip(Mixed::Pair(1, 2));
        roundtrip(Mixed::Rec {
            x: 0.5,
            y: vec![7, 8],
        });
    }

    #[test]
    fn derived_enum_rejects_bad_tag() {
        let buf = 99u32.to_le_bytes();
        let mut r = buf.as_slice();
        assert!(Mixed::deserialize(&mut (&mut r as &mut dyn Read)).is_err());
    }
}
