//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`
//! with `std::thread::scope` underneath. Spawn closures receive a unit
//! placeholder instead of the nested-scope handle (every in-repo caller
//! ignores the argument).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle for spawning threads inside a [`scope`].
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure's argument is a unit
        /// placeholder for crossbeam's nested-scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.0.spawn(move || f(())))
        }
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        ///
        /// # Errors
        ///
        /// The thread's panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all spawned threads are joined before returning.
    ///
    /// # Errors
    ///
    /// Never errs (std scopes propagate panics), but keeps crossbeam's
    /// `Result` shape so call sites can `.expect(...)` identically.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .expect("scope");
            assert_eq!(total, 10);
        }
    }
}
