//! Property-based tests for the beamforming-feedback pipeline.

use deepcsi_bfi::{
    beamforming_matrix, decompose, dequantize, quant, quantize, v_from_angles, GivensAngles,
};
use deepcsi_linalg::{CMatrix, C64};
use deepcsi_phy::Codebook;
use proptest::prelude::*;
use std::f64::consts::{FRAC_PI_2, PI};

fn c64() -> impl Strategy<Value = C64> {
    (-2.0f64..2.0, -2.0f64..2.0).prop_map(|(re, im)| C64::new(re, im))
}

/// Random M×N CFR matrix with a minimum Frobenius norm so the SVD is
/// well-conditioned.
fn cfr(m: usize, n: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(c64(), m * n)
        .prop_map(move |data| CMatrix::from_fn(m, n, |r, c| data[r * n + c]))
        .prop_filter("CFR must be non-degenerate", |h| h.fro_norm() > 0.1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn beamforming_matrix_is_orthonormal(h in cfr(3, 2)) {
        let v = beamforming_matrix(&h, 2);
        prop_assert!(v.is_unitary(1e-8));
    }

    #[test]
    fn givens_roundtrip_3x2(h in cfr(3, 2)) {
        // decompose → reconstruct must satisfy V = Ṽ D̃ exactly.
        let v = beamforming_matrix(&h, 2);
        let dec = decompose(&v);
        let vt = v_from_angles(&dec.angles, 3, 2);
        let rebuilt = vt.matmul(&CMatrix::diag(&dec.d_tilde));
        prop_assert!(v.max_abs_diff(&rebuilt) < 1e-8);
        // Canonical form: last row real non-negative.
        for c in 0..2 {
            prop_assert!(vt[(2, c)].im.abs() < 1e-9);
            prop_assert!(vt[(2, c)].re > -1e-9);
        }
    }

    #[test]
    fn givens_roundtrip_4x2(h in cfr(4, 2)) {
        let v = beamforming_matrix(&h, 2);
        let dec = decompose(&v);
        let vt = v_from_angles(&dec.angles, 4, 2);
        let rebuilt = vt.matmul(&CMatrix::diag(&dec.d_tilde));
        prop_assert!(v.max_abs_diff(&rebuilt) < 1e-8);
    }

    #[test]
    fn givens_roundtrip_2x1(h in cfr(2, 1)) {
        let v = beamforming_matrix(&h, 1);
        let dec = decompose(&v);
        let vt = v_from_angles(&dec.angles, 2, 1);
        let rebuilt = vt.matmul(&CMatrix::diag(&dec.d_tilde));
        prop_assert!(v.max_abs_diff(&rebuilt) < 1e-8);
    }

    #[test]
    fn v_tilde_invariant_to_per_column_phase(h in cfr(3, 2), t0 in 0.0..(2.0 * PI), t1 in 0.0..(2.0 * PI)) {
        // Ṽ is a canonical form: multiplying V's columns by unit phases
        // must not change it. This is why per-packet common phase offsets
        // (CFO/PPO) cancel in the feedback.
        let v = beamforming_matrix(&h, 2);
        let phased = v.matmul(&CMatrix::diag(&[C64::cis(t0), C64::cis(t1)]));
        let a = decompose(&v);
        let b = decompose(&phased);
        let va = v_from_angles(&a.angles, 3, 2);
        let vb = v_from_angles(&b.angles, 3, 2);
        prop_assert!(va.max_abs_diff(&vb) < 1e-8);
    }

    #[test]
    fn quantize_phi_indices_in_range(a in -10.0f64..10.0) {
        for cb in [Codebook::SU_LOW, Codebook::SU_HIGH, Codebook::MU_LOW, Codebook::MU_HIGH] {
            let q = quant::quantize_phi(a, cb);
            prop_assert!((q as u32) < cb.phi_levels());
        }
    }

    #[test]
    fn quantize_psi_indices_in_range(a in -1.0f64..3.0) {
        for cb in [Codebook::SU_LOW, Codebook::SU_HIGH, Codebook::MU_LOW, Codebook::MU_HIGH] {
            let q = quant::quantize_psi(a, cb);
            prop_assert!((q as u32) < cb.psi_levels());
        }
    }

    #[test]
    fn quantization_error_within_half_step(a in 0.0..(2.0 * PI), b in 0.0..FRAC_PI_2) {
        let cb = Codebook::MU_HIGH;
        let phi_back = quant::dequantize_phi(quant::quantize_phi(a, cb), cb);
        let d = (a - phi_back).rem_euclid(2.0 * PI);
        let d = d.min(2.0 * PI - d);
        prop_assert!(d <= PI / cb.phi_levels() as f64 + 1e-9);

        let psi_back = quant::dequantize_psi(quant::quantize_psi(b, cb), cb);
        // Interior points are within half a step; the boundary cells add
        // up to a quarter step of clamping bias.
        prop_assert!((b - psi_back).abs() <= PI / (2.0 * cb.psi_levels() as f64) + 1e-9);
    }

    #[test]
    fn quantized_reconstruction_is_near_exact(h in cfr(3, 2)) {
        let v = beamforming_matrix(&h, 2);
        let dec = decompose(&v);
        let q = quantize(&dec.angles, Codebook::MU_HIGH);
        let back = dequantize(&q, Codebook::MU_HIGH);
        let vt_exact = v_from_angles(&dec.angles, 3, 2);
        let vt_quant = v_from_angles(&back, 3, 2);
        // Fine MU codebook keeps the matrix close in Frobenius norm.
        prop_assert!(vt_exact.sub(&vt_quant).fro_norm() < 0.1);
        // Both remain unitary (rotations preserve orthonormality exactly).
        prop_assert!(vt_quant.is_unitary(1e-8));
    }

    #[test]
    fn dequantized_angles_are_valid_ranges(qphi in 0u16..512, qpsi in 0u16..128) {
        let cb = Codebook::MU_HIGH;
        let phi = quant::dequantize_phi(qphi, cb);
        let psi = quant::dequantize_psi(qpsi, cb);
        prop_assert!((0.0..2.0 * PI).contains(&phi));
        prop_assert!((0.0..=FRAC_PI_2).contains(&psi));
    }
}

#[test]
fn angle_count_consistency_across_dims() {
    for (m, n_ss) in [(2, 1), (3, 1), (3, 2), (4, 1), (4, 2), (4, 3)] {
        let count = GivensAngles::expected_count(m, n_ss);
        let angles = GivensAngles {
            m,
            n_ss,
            phi: vec![0.3; count],
            psi: vec![0.4; count],
        };
        assert!(angles.is_consistent());
        let vt = v_from_angles(&angles, m, n_ss);
        assert_eq!(vt.shape(), (m, n_ss));
        assert!(vt.is_unitary(1e-9));
    }
}
