//! Algorithm 1: Givens-rotation decomposition of `V_k` and its inverse
//! (Eq. (7)).

use deepcsi_linalg::{CMatrix, C64};
use serde::{Deserialize, Serialize};

/// The (φ, ψ) angles of one subcarrier's compressed feedback.
///
/// Angles are stored in the order Algorithm 1 (and the standard's angle
/// table) produces them: for each column `i = 1..=min(N_SS, M−1)` the φ
/// block `φ_{i,i} … φ_{M−1,i}` and the ψ block `ψ_{i+1,i} … ψ_{M,i}`.
/// For the paper's M=3, N_SS=2 feedback: `phi = [φ11, φ21, φ22]`,
/// `psi = [ψ21, ψ31, ψ32]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GivensAngles {
    /// Number of beamformer antennas M (rows of Ṽ).
    pub m: usize,
    /// Number of spatial streams N_SS (columns of Ṽ).
    pub n_ss: usize,
    /// φ angles in `[0, 2π)`, i-major order.
    pub phi: Vec<f64>,
    /// ψ angles in `[0, π/2]`, i-major order.
    pub psi: Vec<f64>,
}

impl GivensAngles {
    /// Number of φ (equivalently ψ) angles implied by the dimensions.
    pub fn expected_count(m: usize, n_ss: usize) -> usize {
        let imax = n_ss.min(m.saturating_sub(1));
        (1..=imax).map(|i| m - i).sum()
    }

    /// Validates the angle-vector lengths against `m`/`n_ss`.
    pub fn is_consistent(&self) -> bool {
        let want = Self::expected_count(self.m, self.n_ss);
        self.phi.len() == want && self.psi.len() == want
    }
}

/// Output of Algorithm 1: the angles plus the `D̃_k` diagonal that was
/// factored out (Eq. (6): `V_k = Ṽ_k D̃_k`).
#[derive(Debug, Clone)]
pub struct GivensDecomposition {
    /// The feedback angles.
    pub angles: GivensAngles,
    /// Diagonal of `D̃_k` (unit-modulus phases of the last row of `V_k`).
    pub d_tilde: Vec<C64>,
}

/// Builds the `D_{k,i}` matrix of Eq. (4) from the φ block of column `i`
/// (1-based): `diag(I_{i−1}, e^{jφ_{i,i}}, …, e^{jφ_{M−1,i}}, 1)`.
fn d_matrix(m: usize, i: usize, phis: &[f64]) -> CMatrix {
    let mut d = CMatrix::identity(m);
    for (off, &phi) in phis.iter().enumerate() {
        let row = i - 1 + off; // 0-based diagonal position of φ_{i+off, i}
        d[(row, row)] = C64::cis(phi);
    }
    d
}

/// Builds the `G_{k,ℓ,i}` rotation of Eq. (5) (1-based `ℓ`, `i`): identity
/// except `[i,i] = cos ψ`, `[i,ℓ] = sin ψ`, `[ℓ,i] = −sin ψ`,
/// `[ℓ,ℓ] = cos ψ`.
fn g_matrix(m: usize, l: usize, i: usize, psi: f64) -> CMatrix {
    let mut g = CMatrix::identity(m);
    let (c, s) = (psi.cos(), psi.sin());
    g[(i - 1, i - 1)] = C64::real(c);
    g[(i - 1, l - 1)] = C64::real(s);
    g[(l - 1, i - 1)] = C64::real(-s);
    g[(l - 1, l - 1)] = C64::real(c);
    g
}

/// Wraps an angle into `[0, 2π)`.
fn wrap_2pi(a: f64) -> f64 {
    let t = a.rem_euclid(2.0 * std::f64::consts::PI);
    if t >= 2.0 * std::f64::consts::PI {
        0.0
    } else {
        t
    }
}

/// Algorithm 1 of the paper: decomposes the beamforming matrix `V_k`
/// (M×N_SS, orthonormal columns) into Givens angles and the residual
/// diagonal `D̃_k`.
///
/// The decomposition is exact: [`v_from_angles`] applied to the returned
/// (unquantized) angles rebuilds `Ṽ_k` with `V_k = Ṽ_k D̃_k` to machine
/// precision, and the last row of `Ṽ_k` is real and non-negative by
/// construction.
///
/// # Panics
///
/// Panics if `v` has more columns than rows.
pub fn decompose(v: &CMatrix) -> GivensDecomposition {
    let (m, n_ss) = v.shape();
    assert!(n_ss <= m, "V must be tall: {m}x{n_ss}");

    // D̃ = diag(e^{j∠[V]_{M,c}}); factoring it out makes the last row of
    // Ω real non-negative.
    let d_tilde: Vec<C64> = (0..n_ss).map(|c| C64::cis(v[(m - 1, c)].arg())).collect();
    let d_tilde_h = CMatrix::diag(&d_tilde).hermitian();
    let mut omega = v.matmul(&d_tilde_h);

    let imax = n_ss.min(m - 1);
    let mut phi = Vec::with_capacity(GivensAngles::expected_count(m, n_ss));
    let mut psi = Vec::with_capacity(phi.capacity());

    for i in 1..=imax {
        // φ block: phases of column i, rows i..M−1 (1-based).
        let phis: Vec<f64> = (i..m)
            .map(|l| wrap_2pi(omega[(l - 1, i - 1)].arg()))
            .collect();
        let d_i = d_matrix(m, i, &phis);
        omega = d_i.hermitian().matmul(&omega);
        phi.extend_from_slice(&phis);

        // ψ block: plane rotations zeroing rows i+1..M of column i.
        for l in (i + 1)..=m {
            let a = omega[(i - 1, i - 1)].re; // real after D† rotation
            let b = omega[(l - 1, i - 1)].re; // real after D† rotation
            let denom = (a * a + b * b).sqrt();
            let p = if denom < 1e-300 {
                0.0
            } else {
                (a / denom).clamp(-1.0, 1.0).acos()
            };
            let g = g_matrix(m, l, i, p);
            omega = g.matmul(&omega);
            psi.push(p);
        }
    }

    GivensDecomposition {
        angles: GivensAngles { m, n_ss, phi, psi },
        d_tilde,
    }
}

/// Eq. (7): rebuilds `Ṽ_k` from the feedback angles:
///
/// ```text
/// Ṽ_k = Π_{i=1}^{min(N_SS, M−1)} ( D_{k,i} Π_{ℓ=i+1}^{M} G_{k,ℓ,i}ᵀ ) I_{M×N_SS}
/// ```
///
/// This is the computation the DeepCSI observer performs on sniffed
/// (dequantized) angles.
///
/// # Panics
///
/// Panics if the angle-vector lengths do not match `m`/`n_ss`.
pub fn v_from_angles(angles: &GivensAngles, m: usize, n_ss: usize) -> CMatrix {
    let want = GivensAngles::expected_count(m, n_ss);
    assert_eq!(angles.phi.len(), want, "φ count mismatch");
    assert_eq!(angles.psi.len(), want, "ψ count mismatch");

    let imax = n_ss.min(m - 1);
    let mut acc = CMatrix::identity(m);
    let mut phi_pos = 0usize;
    let mut psi_pos = 0usize;
    for i in 1..=imax {
        let nphi = m - i;
        let phis = &angles.phi[phi_pos..phi_pos + nphi];
        phi_pos += nphi;
        let mut prod = d_matrix(m, i, phis);
        for l in (i + 1)..=m {
            let g_t = g_matrix(m, l, i, angles.psi[psi_pos]).transpose();
            psi_pos += 1;
            prod = prod.matmul(&g_t);
        }
        acc = acc.matmul(&prod);
    }
    acc.matmul(&CMatrix::eye_rect(m, n_ss))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beamforming_matrix;

    fn sample_v() -> CMatrix {
        let h = CMatrix::from_rows(&[
            vec![C64::new(0.8, 0.1), C64::new(-0.2, 0.5)],
            vec![C64::new(0.1, -0.9), C64::new(0.4, 0.3)],
            vec![C64::new(-0.5, 0.2), C64::new(0.6, -0.1)],
        ]);
        beamforming_matrix(&h, 2)
    }

    #[test]
    fn angle_counts_for_3x2() {
        assert_eq!(GivensAngles::expected_count(3, 2), 3);
        assert_eq!(GivensAngles::expected_count(3, 1), 2);
        assert_eq!(GivensAngles::expected_count(4, 2), 5);
        assert_eq!(GivensAngles::expected_count(2, 1), 1);
    }

    #[test]
    fn decompose_produces_valid_ranges() {
        let dec = decompose(&sample_v());
        assert!(dec.angles.is_consistent());
        for &p in &dec.angles.phi {
            assert!((0.0..2.0 * std::f64::consts::PI).contains(&p), "φ={p}");
        }
        for &p in &dec.angles.psi {
            assert!(
                (0.0..=std::f64::consts::FRAC_PI_2 + 1e-12).contains(&p),
                "ψ={p}"
            );
        }
    }

    #[test]
    fn roundtrip_reconstructs_v() {
        // Eq. (6): V = Ṽ D̃ must hold exactly for unquantized angles.
        let v = sample_v();
        let dec = decompose(&v);
        let v_tilde = v_from_angles(&dec.angles, 3, 2);
        let d = CMatrix::diag(&dec.d_tilde);
        let rebuilt = v_tilde.matmul(&d);
        assert!(
            v.max_abs_diff(&rebuilt) < 1e-10,
            "‖V − ṼD̃‖∞ = {}",
            v.max_abs_diff(&rebuilt)
        );
    }

    #[test]
    fn last_row_real_non_negative() {
        let dec = decompose(&sample_v());
        let v_tilde = v_from_angles(&dec.angles, 3, 2);
        for c in 0..2 {
            let z = v_tilde[(2, c)];
            assert!(z.im.abs() < 1e-10, "imag part {}", z.im);
            assert!(z.re > -1e-10, "real part {}", z.re);
        }
    }

    #[test]
    fn v_tilde_columns_orthonormal() {
        let dec = decompose(&sample_v());
        let v_tilde = v_from_angles(&dec.angles, 3, 2);
        assert!(v_tilde.is_unitary(1e-10));
    }

    #[test]
    fn single_stream_decomposition() {
        let h = CMatrix::from_rows(&[
            vec![C64::new(1.0, 0.3)],
            vec![C64::new(-0.4, 0.6)],
            vec![C64::new(0.2, -0.7)],
        ]);
        // Normalise to a unit column.
        let v = h.scale(C64::real(1.0 / h.fro_norm()));
        let dec = decompose(&v);
        assert_eq!(dec.angles.phi.len(), 2);
        assert_eq!(dec.angles.psi.len(), 2);
        let vt = v_from_angles(&dec.angles, 3, 1);
        let rebuilt = vt.matmul(&CMatrix::diag(&dec.d_tilde));
        assert!(v.max_abs_diff(&rebuilt) < 1e-10);
    }

    #[test]
    fn identity_input_gives_zero_psi() {
        // V = I_{3×2} is already in canonical form: all ψ = 0, φ = 0.
        let v = CMatrix::eye_rect(3, 2);
        let dec = decompose(&v);
        for &p in &dec.angles.psi {
            assert!(p.abs() < 1e-12);
        }
        for &p in &dec.angles.phi {
            assert!(p.abs() < 1e-12 || (p - 2.0 * std::f64::consts::PI).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_zero_column_is_handled() {
        // A zero column has undefined phases; the decomposition must not
        // produce NaN.
        let mut v = CMatrix::eye_rect(3, 2);
        v[(0, 1)] = C64::ZERO;
        v[(1, 1)] = C64::ZERO;
        v[(2, 1)] = C64::ZERO;
        let dec = decompose(&v);
        assert!(dec.angles.phi.iter().all(|p| p.is_finite()));
        assert!(dec.angles.psi.iter().all(|p| p.is_finite()));
        let vt = v_from_angles(&dec.angles, 3, 2);
        assert!(vt.is_finite());
    }

    #[test]
    #[should_panic(expected = "φ count mismatch")]
    fn mismatched_angle_lengths_panic() {
        let a = GivensAngles {
            m: 3,
            n_ss: 2,
            phi: vec![0.0],
            psi: vec![0.0, 0.0, 0.0],
        };
        let _ = v_from_angles(&a, 3, 2);
    }
}
