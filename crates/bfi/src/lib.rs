//! The IEEE 802.11ac/ax compressed beamforming-feedback pipeline (§III-B
//! of the DeepCSI paper).
//!
//! During VHT channel sounding the beamformee estimates the per-subcarrier
//! CFR `H_k`, extracts the beamforming matrix `V_k` (the leading right
//! singular vectors of `H_kᵀ`, Eq. (3)), converts it to Givens angles
//! (Algorithm 1), quantizes them (Eq. (8)) and sends them in clear text.
//! The observer — DeepCSI — reverses the last two steps to obtain `Ṽ_k`
//! (Eq. (7)).
//!
//! The crate exposes each stage separately so tests and benchmarks can
//! exercise them in isolation:
//!
//! * [`beamforming_matrix`] — `H_k` → `V_k` (Eq. (3)).
//! * [`decompose`] — `V_k` → ([`GivensAngles`], `D̃`) (Algorithm 1).
//! * [`quantize`] / [`dequantize`] — Eq. (8) (in [`quant`]).
//! * [`v_from_angles`] — angles → `Ṽ_k` (Eq. (7)).
//! * [`BeamformingFeedback`] — the full per-sounding feedback across all
//!   sounded subcarriers, as captured by a monitor.
//!
//! # Example: the full beamformee→observer loop for one subcarrier
//!
//! ```
//! use deepcsi_linalg::{C64, CMatrix};
//! use deepcsi_phy::Codebook;
//! use deepcsi_bfi::{beamforming_matrix, decompose, quantize, dequantize, v_from_angles};
//!
//! // A 3×2 channel (M = 3 TX antennas, N = 2 RX antennas).
//! let h = CMatrix::from_rows(&[
//!     vec![C64::new(0.8, 0.1), C64::new(-0.2, 0.5)],
//!     vec![C64::new(0.1, -0.9), C64::new(0.4, 0.3)],
//!     vec![C64::new(-0.5, 0.2), C64::new(0.6, -0.1)],
//! ]);
//! let v = beamforming_matrix(&h, 2);          // beamformee: V_k
//! let dec = decompose(&v);                    // beamformee: angles
//! let q = quantize(&dec.angles, Codebook::MU_HIGH);
//! let angles = dequantize(&q, Codebook::MU_HIGH);
//! let v_tilde = v_from_angles(&angles, 3, 2); // observer: Ṽ_k
//! assert!(v_tilde.is_unitary(1e-9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod feedback;
mod givens;
pub mod quant;
mod vmatrix;

pub use feedback::{BeamformingFeedback, VSeries};
pub use givens::{decompose, v_from_angles, GivensAngles, GivensDecomposition};
pub use quant::{dequantize, quantize, QuantizedAngles};
pub use vmatrix::beamforming_matrix;
