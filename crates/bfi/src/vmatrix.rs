//! Extraction of the beamforming matrix `V_k` from the CFR (Eq. (3)).

use deepcsi_linalg::{right_singular_vectors, CMatrix};

/// Computes the beamforming matrix `V_k` for one subcarrier.
///
/// Following Eq. (3) of the paper, the M×N CFR sub-matrix `H_k` (TX
/// antennas × RX antennas) is decomposed as `H_kᵀ = U_k S_k Z_k†` and the
/// first `n_ss` columns of the M×M unitary `Z_k` form `V_k`.
///
/// # Panics
///
/// Panics if `n_ss` exceeds either dimension of `h_k`.
///
/// # Example
///
/// ```
/// use deepcsi_linalg::{C64, CMatrix};
/// use deepcsi_bfi::beamforming_matrix;
///
/// let h = CMatrix::from_rows(&[
///     vec![C64::new(1.0, 0.0), C64::new(0.0, 0.5)],
///     vec![C64::new(0.0, -1.0), C64::new(0.3, 0.0)],
///     vec![C64::new(0.5, 0.5), C64::new(-0.2, 0.8)],
/// ]);
/// let v = beamforming_matrix(&h, 2);
/// assert_eq!(v.shape(), (3, 2));
/// assert!(v.is_unitary(1e-9)); // orthonormal columns
/// ```
pub fn beamforming_matrix(h_k: &CMatrix, n_ss: usize) -> CMatrix {
    let (m, n) = h_k.shape();
    assert!(
        n_ss <= n && n_ss <= m,
        "n_ss={n_ss} exceeds channel dimensions {m}x{n}"
    );
    // Right singular vectors of H_kᵀ (N×M), ordered by descending singular
    // value; the leading n_ss columns span the strongest TX-side subspace.
    let z = right_singular_vectors(&h_k.transpose());
    z.first_cols(n_ss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_linalg::{svd, C64};

    fn sample_h() -> CMatrix {
        CMatrix::from_rows(&[
            vec![C64::new(0.8, 0.1), C64::new(-0.2, 0.5)],
            vec![C64::new(0.1, -0.9), C64::new(0.4, 0.3)],
            vec![C64::new(-0.5, 0.2), C64::new(0.6, -0.1)],
        ])
    }

    #[test]
    fn columns_are_orthonormal() {
        let v = beamforming_matrix(&sample_h(), 2);
        assert!(v.is_unitary(1e-9));
    }

    #[test]
    fn first_column_is_dominant_right_singular_vector() {
        let h = sample_h();
        let v = beamforming_matrix(&h, 1);
        let d = svd(&h.transpose());
        // ‖Hᵀ v₁‖ must equal the largest singular value.
        let hv = h.transpose().matmul(&v);
        assert!((hv.fro_norm() - d.s[0]).abs() < 1e-9);
    }

    #[test]
    fn beamforming_gain_dominates_random_direction() {
        // Steering along v₁ must capture at least as much energy as any
        // other unit direction (variational characterisation of the SVD).
        let h = sample_h();
        let v = beamforming_matrix(&h, 1);
        let gain_v = h.transpose().matmul(&v).fro_norm();
        let w = CMatrix::from_fn(3, 1, |r, _| C64::new(0.5 + r as f64 * 0.1, -0.3));
        let wn = w.scale(C64::real(1.0 / w.fro_norm()));
        let gain_w = h.transpose().matmul(&wn).fro_norm();
        assert!(gain_v >= gain_w - 1e-12);
    }

    #[test]
    fn nss_one_and_two_share_first_column_up_to_phase() {
        let h = sample_h();
        let v1 = beamforming_matrix(&h, 1);
        let v2 = beamforming_matrix(&h, 2);
        // Columns come from the same ordered basis, so they agree exactly.
        for r in 0..3 {
            assert!((v1[(r, 0)] - v2[(r, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds channel dimensions")]
    fn oversized_nss_panics() {
        let _ = beamforming_matrix(&sample_h(), 3);
    }
}
