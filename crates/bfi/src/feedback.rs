//! Per-sounding feedback containers spanning all sounded subcarriers.

use crate::{beamforming_matrix, decompose, dequantize, quantize, v_from_angles, QuantizedAngles};
use deepcsi_linalg::{CMatrix, C64};
use deepcsi_phy::{Codebook, MimoConfig};
use serde::{Deserialize, Serialize};

/// The compressed beamforming feedback of one sounding event: quantized
/// (φ, ψ) angles for every sounded subcarrier.
///
/// This is exactly the payload a monitor extracts from a captured VHT
/// Compressed Beamforming frame (minus the MAC framing, which lives in
/// `deepcsi-frame`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamformingFeedback {
    /// MIMO dimensioning of the link.
    pub mimo: MimoConfig,
    /// Quantization codebook used by the beamformee.
    pub codebook: Codebook,
    /// Sounded subcarrier indices (ascending).
    pub subcarriers: Vec<i32>,
    /// Quantized angles, one entry per subcarrier.
    pub angles: Vec<QuantizedAngles>,
}

impl BeamformingFeedback {
    /// Beamformee-side computation (steps 1–3 of Fig. 3): per-subcarrier
    /// `H_k → V_k → angles → quantized angles`.
    ///
    /// `cfr[j]` must be the M×N CFR of subcarrier `subcarriers[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `cfr` and `subcarriers` lengths differ, or if any CFR
    /// sub-matrix disagrees with `mimo`.
    pub fn from_cfr(
        cfr: &[CMatrix],
        subcarriers: &[i32],
        mimo: MimoConfig,
        codebook: Codebook,
    ) -> Self {
        assert_eq!(
            cfr.len(),
            subcarriers.len(),
            "one CFR matrix per subcarrier required"
        );
        let angles = cfr
            .iter()
            .map(|h_k| {
                assert_eq!(
                    h_k.shape(),
                    (mimo.m_tx(), mimo.n_rx()),
                    "CFR shape must be M×N"
                );
                let v = beamforming_matrix(h_k, mimo.n_ss());
                let dec = decompose(&v);
                quantize(&dec.angles, codebook)
            })
            .collect();
        BeamformingFeedback {
            mimo,
            codebook,
            subcarriers: subcarriers.to_vec(),
            angles,
        }
    }

    /// Observer-side reconstruction (step 4 of Fig. 3): dequantizes the
    /// angles and rebuilds `Ṽ_k` for every subcarrier via Eq. (7).
    pub fn reconstruct(&self) -> VSeries {
        let v = self
            .angles
            .iter()
            .map(|q| {
                let a = dequantize(q, self.codebook);
                v_from_angles(&a, self.mimo.m_tx(), self.mimo.n_ss())
            })
            .collect();
        VSeries {
            subcarriers: self.subcarriers.clone(),
            v,
        }
    }

    /// Number of sounded subcarriers in this feedback.
    pub fn len(&self) -> usize {
        self.subcarriers.len()
    }

    /// Returns `true` when the feedback carries no subcarriers.
    pub fn is_empty(&self) -> bool {
        self.subcarriers.is_empty()
    }
}

/// The beamforming matrix Ṽ stacked over subcarriers: the paper's
/// `K × M × N_SS` tensor, stored as one M×N_SS matrix per subcarrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VSeries {
    /// Sounded subcarrier indices (ascending).
    pub subcarriers: Vec<i32>,
    /// `v[j]` is the M×N_SS beamforming matrix of subcarrier
    /// `subcarriers[j]`.
    pub v: Vec<CMatrix>,
}

impl VSeries {
    /// Computes the **unquantized** Ṽ series straight from the CFR — the
    /// reference used to measure quantization error (Fig. 13).
    pub fn exact_from_cfr(cfr: &[CMatrix], subcarriers: &[i32], mimo: MimoConfig) -> Self {
        assert_eq!(cfr.len(), subcarriers.len());
        let v = cfr
            .iter()
            .map(|h_k| {
                let vk = beamforming_matrix(h_k, mimo.n_ss());
                let dec = decompose(&vk);
                v_from_angles(&dec.angles, mimo.m_tx(), mimo.n_ss())
            })
            .collect();
        VSeries {
            subcarriers: subcarriers.to_vec(),
            v,
        }
    }

    /// Number of subcarriers.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Returns `true` when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// The per-subcarrier series of one Ṽ element `[Ṽ]_{row,col}`
    /// (0-based), e.g. for the Fig. 14 time-evolution plots.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty or the element is out of range.
    pub fn element_series(&self, row: usize, col: usize) -> Vec<C64> {
        assert!(!self.v.is_empty(), "empty series");
        self.v.iter().map(|m| m[(row, col)]).collect()
    }

    /// Mean element-wise reconstruction error vs. a reference series:
    /// `mean_j |[Ṽ]_{row,col}(j) − [Ṽref]_{row,col}(j)|`.
    ///
    /// # Panics
    ///
    /// Panics if the two series have different lengths.
    pub fn element_error(&self, reference: &VSeries, row: usize, col: usize) -> f64 {
        assert_eq!(self.len(), reference.len(), "series length mismatch");
        let n = self.len().max(1);
        self.v
            .iter()
            .zip(reference.v.iter())
            .map(|(a, b)| (a[(row, col)] - b[(row, col)]).abs())
            .sum::<f64>()
            / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_cfr(seed: u64, n_sc: usize, m: usize, n: usize) -> Vec<CMatrix> {
        // Small deterministic pseudo-random CFR series (xorshift).
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n_sc)
            .map(|_| CMatrix::from_fn(m, n, |_, _| C64::new(next(), next())))
            .collect()
    }

    #[test]
    fn from_cfr_builds_one_angle_set_per_subcarrier() {
        let mimo = MimoConfig::paper_default();
        let sc: Vec<i32> = (0..8).collect();
        let cfr = random_cfr(7, 8, 3, 2);
        let fb = BeamformingFeedback::from_cfr(&cfr, &sc, mimo, Codebook::MU_HIGH);
        assert_eq!(fb.len(), 8);
        assert!(!fb.is_empty());
        for q in &fb.angles {
            assert_eq!(q.q_phi.len(), 3);
            assert_eq!(q.q_psi.len(), 3);
        }
    }

    #[test]
    fn reconstruction_close_to_exact() {
        let mimo = MimoConfig::paper_default();
        let sc: Vec<i32> = (0..16).collect();
        let cfr = random_cfr(42, 16, 3, 2);
        let fb = BeamformingFeedback::from_cfr(&cfr, &sc, mimo, Codebook::MU_HIGH);
        let quantized = fb.reconstruct();
        let exact = VSeries::exact_from_cfr(&cfr, &sc, mimo);
        // At (bψ=7, bφ=9) quantization the element error is small (Fig. 13b
        // shows it concentrated below 1e-2).
        for row in 0..3 {
            for col in 0..2 {
                let e = quantized.element_error(&exact, row, col);
                assert!(e < 0.05, "element ({row},{col}) error {e}");
            }
        }
    }

    #[test]
    fn stream1_reconstruction_error_exceeds_stream0() {
        // The recursive structure of Algorithm 1 propagates quantization
        // error into higher-order columns (Fig. 13): averaged over the
        // matrix rows, column 1 must reconstruct worse than column 0.
        let mimo = MimoConfig::paper_default();
        let sc: Vec<i32> = (0..64).collect();
        let cfr = random_cfr(1234, 64, 3, 2);
        let fb = BeamformingFeedback::from_cfr(&cfr, &sc, mimo, Codebook::MU_LOW);
        let quantized = fb.reconstruct();
        let exact = VSeries::exact_from_cfr(&cfr, &sc, mimo);
        let err_col0: f64 = (0..3).map(|r| quantized.element_error(&exact, r, 0)).sum();
        let err_col1: f64 = (0..3).map(|r| quantized.element_error(&exact, r, 1)).sum();
        assert!(
            err_col1 > err_col0,
            "stream-1 error {err_col1} ≤ stream-0 error {err_col0}"
        );
    }

    #[test]
    fn element_series_extracts_the_right_entry() {
        let mimo = MimoConfig::paper_default();
        let sc: Vec<i32> = (0..4).collect();
        let cfr = random_cfr(5, 4, 3, 2);
        let series = VSeries::exact_from_cfr(&cfr, &sc, mimo);
        let e = series.element_series(2, 0);
        assert_eq!(e.len(), 4);
        for (j, z) in e.iter().enumerate() {
            assert_eq!(*z, series.v[j][(2, 0)]);
        }
    }

    #[test]
    #[should_panic(expected = "one CFR matrix per subcarrier")]
    fn mismatched_lengths_panic() {
        let mimo = MimoConfig::paper_default();
        let cfr = random_cfr(5, 4, 3, 2);
        let _ = BeamformingFeedback::from_cfr(&cfr, &[0, 1], mimo, Codebook::MU_HIGH);
    }

    #[test]
    fn empty_feedback_reports_empty() {
        let fb = BeamformingFeedback {
            mimo: MimoConfig::paper_default(),
            codebook: Codebook::MU_HIGH,
            subcarriers: vec![],
            angles: vec![],
        };
        assert!(fb.is_empty());
        assert!(fb.reconstruct().is_empty());
    }
}
