//! Angle quantization per Eq. (8) of the paper (IEEE 802.11ac §8.4.1.48).
//!
//! The beamformee maps each φ angle to `bφ` bits and each ψ angle to
//! `bψ = bφ − 2` bits; the beamformer (and any observer) recovers the
//! angle centers via
//!
//! ```text
//! φ = π (1/2^{bφ}   + qφ / 2^{bφ−1}),   qφ ∈ {0, …, 2^{bφ}−1}
//! ψ = π (1/2^{bψ+2} + qψ / 2^{bψ+1}),   qψ ∈ {0, …, 2^{bψ}−1}
//! ```

use crate::GivensAngles;
use deepcsi_phy::Codebook;
use serde::{Deserialize, Serialize};
use std::f64::consts::PI;

/// Quantized feedback angles for one subcarrier (what actually travels in
/// the VHT Compressed Beamforming frame).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedAngles {
    /// Number of beamformer antennas M.
    pub m: usize,
    /// Number of spatial streams N_SS.
    pub n_ss: usize,
    /// Quantization indices for the φ angles (i-major order).
    pub q_phi: Vec<u16>,
    /// Quantization indices for the ψ angles (i-major order).
    pub q_psi: Vec<u16>,
}

/// Quantizes one φ angle.
///
/// The angle is wrapped into `[0, 2π)` first; values in the wrap-around
/// half-step above the last center map to index 0 as on real hardware.
pub fn quantize_phi(phi: f64, cb: Codebook) -> u16 {
    let levels = 1i64 << cb.b_phi;
    let wrapped = phi.rem_euclid(2.0 * PI);
    // Invert Eq. (8): q = φ·2^{bφ−1}/π − 1/2, rounded to nearest center.
    let q = (wrapped * (levels as f64 / 2.0) / PI - 0.5).round() as i64;
    (q.rem_euclid(levels)) as u16
}

/// Quantizes one ψ angle (clamped into the codebook's `[0, π/2]` range).
pub fn quantize_psi(psi: f64, cb: Codebook) -> u16 {
    let levels = 1i64 << cb.b_psi;
    let clamped = psi.clamp(0.0, PI / 2.0);
    let q = (clamped * (2.0 * levels as f64) / PI - 0.5).round() as i64;
    q.clamp(0, levels - 1) as u16
}

/// Recovers a φ angle center from its index (Eq. (8)).
pub fn dequantize_phi(q: u16, cb: Codebook) -> f64 {
    let levels = (1u32 << cb.b_phi) as f64;
    PI * (1.0 / levels + q as f64 / (levels / 2.0))
}

/// Recovers a ψ angle center from its index (Eq. (8)).
pub fn dequantize_psi(q: u16, cb: Codebook) -> f64 {
    let levels = (1u32 << cb.b_psi) as f64;
    PI * (1.0 / (4.0 * levels) + q as f64 / (2.0 * levels))
}

/// Quantizes a full angle set (beamformee side).
pub fn quantize(angles: &GivensAngles, cb: Codebook) -> QuantizedAngles {
    QuantizedAngles {
        m: angles.m,
        n_ss: angles.n_ss,
        q_phi: angles.phi.iter().map(|&a| quantize_phi(a, cb)).collect(),
        q_psi: angles.psi.iter().map(|&a| quantize_psi(a, cb)).collect(),
    }
}

/// Dequantizes a full angle set (beamformer / observer side).
pub fn dequantize(q: &QuantizedAngles, cb: Codebook) -> GivensAngles {
    GivensAngles {
        m: q.m,
        n_ss: q.n_ss,
        phi: q.q_phi.iter().map(|&i| dequantize_phi(i, cb)).collect(),
        psi: q.q_psi.iter().map(|&i| dequantize_psi(i, cb)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CB: Codebook = Codebook::MU_HIGH;

    #[test]
    fn phi_error_bounded_by_half_step() {
        let step = 2.0 * PI / CB.phi_levels() as f64;
        let mut a = 0.0;
        while a < 2.0 * PI {
            let q = quantize_phi(a, CB);
            let back = dequantize_phi(q, CB);
            // Distance on the circle.
            let d = (a - back).rem_euclid(2.0 * PI);
            let d = d.min(2.0 * PI - d);
            assert!(d <= step / 2.0 + 1e-12, "φ={a} err={d}");
            a += 0.0137;
        }
    }

    #[test]
    fn psi_error_bounded_by_half_step() {
        let step = PI / (2.0 * CB.psi_levels() as f64);
        let mut a = 0.0;
        while a <= PI / 2.0 {
            let q = quantize_psi(a, CB);
            let back = dequantize_psi(q, CB);
            assert!((a - back).abs() <= step / 2.0 + 1e-12, "ψ={a}");
            a += 0.0071;
        }
    }

    #[test]
    fn centers_are_fixed_points() {
        for q in [0u16, 1, 100, 511] {
            let a = dequantize_phi(q, CB);
            assert_eq!(quantize_phi(a, CB), q, "φ center q={q}");
        }
        for q in [0u16, 1, 64, 127] {
            let a = dequantize_psi(q, CB);
            assert_eq!(quantize_psi(a, CB), q, "ψ center q={q}");
        }
    }

    #[test]
    fn phi_wraps_near_two_pi() {
        // Centers sit at half-step offsets, so just below 2π the nearest
        // center is the last one; negative angles wrap the same way.
        let eps = 1e-6;
        let top = (CB.phi_levels() - 1) as u16;
        assert_eq!(quantize_phi(2.0 * PI - eps, CB), top);
        assert_eq!(quantize_phi(-eps, CB), top);
        // Far beyond the wrap the index stays in range.
        let q = quantize_phi(5.0 * PI, CB);
        assert!((q as u32) < CB.phi_levels());
        // And the circular quantization error stays within half a step.
        let back = dequantize_phi(quantize_phi(2.0 * PI - eps, CB), CB);
        let d = (2.0 * PI - eps - back).rem_euclid(2.0 * PI);
        let d = d.min(2.0 * PI - d);
        assert!(d <= PI / CB.phi_levels() as f64 + 1e-12);
    }

    #[test]
    fn psi_clamps_out_of_range() {
        assert_eq!(quantize_psi(-0.5, CB), 0);
        assert_eq!(
            quantize_psi(PI, CB),
            (CB.psi_levels() - 1) as u16,
            "above range clamps to top"
        );
    }

    #[test]
    fn coarse_codebook_is_coarser() {
        // The same angle quantized with MU_LOW loses more precision.
        let a = 1.2345;
        let fine =
            (a - dequantize_phi(quantize_phi(a, Codebook::MU_HIGH), Codebook::MU_HIGH)).abs();
        let coarse =
            (a - dequantize_phi(quantize_phi(a, Codebook::MU_LOW), Codebook::MU_LOW)).abs();
        assert!(coarse >= fine);
    }

    #[test]
    fn monotone_within_range() {
        // Quantization preserves order away from the wrap boundary.
        let q1 = quantize_phi(0.5, CB);
        let q2 = quantize_phi(1.5, CB);
        let q3 = quantize_phi(3.0, CB);
        assert!(q1 < q2 && q2 < q3);
    }

    #[test]
    fn full_angle_set_roundtrip() {
        let angles = GivensAngles {
            m: 3,
            n_ss: 2,
            phi: vec![0.1, 3.0, 6.0],
            psi: vec![0.2, 0.7, 1.4],
        };
        let q = quantize(&angles, CB);
        assert_eq!(q.q_phi.len(), 3);
        assert_eq!(q.q_psi.len(), 3);
        let back = dequantize(&q, CB);
        for (a, b) in angles.phi.iter().zip(back.phi.iter()) {
            assert!((a - b).abs() < 0.01, "φ {a} vs {b}");
        }
        for (a, b) in angles.psi.iter().zip(back.psi.iter()) {
            assert!((a - b).abs() < 0.02, "ψ {a} vs {b}");
        }
    }
}
