//! Decision-policy integration tests: the three policies over real
//! engine runs — the confidence policy's early exit at equal accuracy,
//! and the adaptive policy flagging a low-confidence impersonation the
//! fixed policy happily accepts.

use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, generate_d1, D1Set, Dataset, GenConfig, InputSpec};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_impair::DeviceId;
use deepcsi_nn::{Dense, Flatten, Network, Tensor, TrainConfig};
use deepcsi_phy::{Codebook, MimoConfig};
use deepcsi_serve::{
    Backpressure, DecisionPolicyConfig, DeviceRegistry, Engine, EngineConfig, EngineReport,
    PolicyKind, ReplaySource, Verdict,
};

fn spec() -> InputSpec {
    InputSpec {
        stride: 4,
        ..InputSpec::default()
    }
}

fn gen_config(snapshots: usize) -> GenConfig {
    GenConfig {
        num_modules: 3,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    }
}

fn trained_authenticator(ds: &Dataset, modules: usize) -> Authenticator {
    let spec = spec();
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(modules),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let result = run_experiment(&cfg, &split);
    assert!(result.accuracy > 0.8, "model too weak for policy tests");
    Authenticator::new(result.network, spec)
}

fn engine_config(kind: PolicyKind) -> EngineConfig {
    EngineConfig {
        workers: 2,
        backpressure: Backpressure::Block,
        decision: DecisionPolicyConfig {
            kind,
            ..DecisionPolicyConfig::default()
        },
        ..EngineConfig::default()
    }
}

/// Replays `frames` through one engine under `kind` and returns the
/// final report.
fn serve(
    kind: PolicyKind,
    auth: Authenticator,
    registry: DeviceRegistry,
    frames: &[Vec<u8>],
) -> EngineReport {
    let engine = Engine::start(engine_config(kind), auth, registry);
    for frame in frames {
        engine.ingest_frame(frame);
    }
    engine.shutdown()
}

/// The acceptance criterion: on a clean capture, `ConfidenceWeighted`
/// must reach the same (all-Accept) verdicts as `FixedMajority`, never
/// later than it, and at the median in at most half the reports.
#[test]
fn confidence_weighted_matches_fixed_accuracy_in_half_the_reports() {
    let ds = generate_d1(&gen_config(40));
    let auth = trained_authenticator(&ds, 3);
    let replay = ReplaySource::from_dataset(&ds);
    let frames: Vec<Vec<u8>> = replay.frames().map(<[u8]>::to_vec).collect();
    let registry = ReplaySource::registry(&ds);

    let fixed = serve(
        PolicyKind::FixedMajority,
        auth.clone(),
        registry.clone(),
        &frames,
    );
    let confidence = serve(PolicyKind::ConfidenceWeighted, auth, registry, &frames);

    assert_eq!(fixed.stats.policy, "fixed");
    assert_eq!(confidence.stats.policy, "confidence");
    assert_eq!(fixed.decisions.len(), confidence.decisions.len());

    // Equal accuracy: every registered stream earns the same Accept —
    // and per stream the confidence policy is never slower than the
    // fixed window.
    for (f, c) in fixed.decisions.iter().zip(confidence.decisions.iter()) {
        assert_eq!(f.source, c.source);
        assert_eq!(f.verdict, Verdict::Accept, "{} under fixed", f.source);
        assert_eq!(c.verdict, Verdict::Accept, "{} under confidence", c.source);

        let f_at = f.decided_at.expect("fixed stream decided");
        let c_at = c.decided_at.expect("confidence stream decided");
        assert!(
            c_at <= f_at,
            "{}: confidence decided at {c_at}, after fixed at {f_at}",
            f.source
        );
    }

    // At the median the early exit is a ≥ 2x cut in reports-to-verdict.
    let f_p50 = fixed.stats.reports_to_verdict_p50.expect("fixed p50");
    let c_p50 = confidence.stats.reports_to_verdict_p50.expect("conf p50");
    assert!(
        c_p50 * 2 <= f_p50,
        "reports-to-verdict p50: confidence {c_p50} vs fixed {f_p50} — not an early exit"
    );
    assert_eq!(fixed.stats.verdicts_decided, fixed.decisions.len() as u64);
}

/// A hand-built 3×2 feedback whose six quantized angles are set per
/// "device", over 16 subcarriers.
fn crafted_feedback(q_phi: [u16; 3], q_psi: [u16; 3]) -> BeamformingFeedback {
    let subcarriers: Vec<i32> = (0..16).collect();
    BeamformingFeedback {
        mimo: MimoConfig::new(3, 2, 2).expect("valid"),
        codebook: Codebook::MU_HIGH,
        angles: vec![
            QuantizedAngles {
                m: 3,
                n_ss: 2,
                q_phi: q_phi.to_vec(),
                q_psi: q_psi.to_vec(),
            };
            subcarriers.len()
        ],
        subcarriers,
    }
}

/// Encodes `fb` as a report frame from `source`.
fn frame_for(source: MacAddr, seq: u16, fb: BeamformingFeedback) -> Vec<u8> {
    let monitor = MacAddr::station(0xAC_CE55);
    BeamformingReportFrame::new(monitor, source, monitor, seq, fb).encode()
}

/// A Flatten+Dense classifier with hand-set weights: class 0's logit is
/// an exact linear functional hitting `logit_genuine` on the genuine
/// tensor and `logit_impostor` on the impostor tensor; classes 1 and 2
/// stay at logit 0. Confidence is thereby controlled exactly while the
/// predicted module stays 0 for both streams.
fn crafted_authenticator(
    spec: &InputSpec,
    genuine: &BeamformingFeedback,
    impostor: &BeamformingFeedback,
    logit_genuine: f64,
    logit_impostor: f64,
) -> Authenticator {
    let t_a: Tensor = spec.tensor(genuine);
    let t_b: Tensor = spec.tensor(impostor);
    let (a, b) = (t_a.as_slice(), t_b.as_slice());
    assert_eq!(a.len(), b.len());
    let dot = |x: &[f32], y: &[f32]| -> f64 {
        x.iter()
            .zip(y)
            .map(|(&p, &q)| f64::from(p) * f64::from(q))
            .sum()
    };
    // Solve w = α·t_a + β·t_b with ⟨w, t_a⟩ = logit_genuine and
    // ⟨w, t_b⟩ = logit_impostor (2×2 Gram system).
    let (gaa, gab, gbb) = (dot(a, a), dot(a, b), dot(b, b));
    let det = gaa * gbb - gab * gab;
    assert!(
        det.abs() > 1e-9,
        "crafted tensors are linearly dependent (det {det})"
    );
    let alpha = (logit_genuine * gbb - logit_impostor * gab) / det;
    let beta = (logit_impostor * gaa - logit_genuine * gab) / det;

    let mut net = Network::new();
    net.push(Flatten::new());
    net.push(Dense::new(a.len(), 3, 1));
    // Overwrite the random init: row 0 = α·t_a + β·t_b, rows 1–2 and
    // the bias all zero.
    for view in net.params() {
        for w in view.w.iter_mut() {
            *w = 0.0;
        }
        if view.w.len() == a.len() * 3 {
            for (j, w) in view.w[..a.len()].iter_mut().enumerate() {
                *w = (alpha * f64::from(a[j]) + beta * f64::from(b[j])) as f32;
            }
        }
    }
    Authenticator::new(net, spec.clone())
}

/// The adaptive-threshold flagging scenario the fixed policy cannot see,
/// pinned deterministically end to end through the engine: an impostor
/// takes over a registered stream presenting the *right* module — the
/// majority vote stays clean, so `FixedMajority` keeps accepting — but
/// at a confidence far below the stream's own calibrated profile.
/// `AdaptiveThreshold` flags the takeover.
#[test]
fn adaptive_flags_right_module_wrong_confidence_impostor_fixed_accepts() {
    let spec = InputSpec::default(); // stride 1, stream 0, antennas 0–2
    let genuine_fb = crafted_feedback([100, 200, 300], [40, 60, 80]);
    let impostor_fb = crafted_feedback([350, 50, 120], [20, 90, 35]);
    // softmax(6, 0, 0) ≈ 0.995 confidence for the genuine device;
    // softmax(1.5, 0, 0) ≈ 0.69 for the impostor — same winning class.
    let auth = crafted_authenticator(&spec, &genuine_fb, &impostor_fb, 6.0, 1.5);

    let victim = MacAddr::station(0x715);
    let mut registry = DeviceRegistry::new();
    registry.register(victim, DeviceId(0));

    // 40 genuine reports (the adaptive policy calibrates on these),
    // then the impostor takes over the source address for 40 more.
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for k in 0..40u16 {
        frames.push(frame_for(victim, k, genuine_fb.clone()));
    }
    for k in 40..80u16 {
        frames.push(frame_for(victim, k, impostor_fb.clone()));
    }

    let fixed = serve(
        PolicyKind::FixedMajority,
        auth.clone(),
        registry.clone(),
        &frames,
    );
    let adaptive = serve(PolicyKind::AdaptiveThreshold, auth, registry, &frames);

    // Both engines classified every report and saw the same stream.
    for r in [&fixed, &adaptive] {
        assert_eq!(r.stats.classified, frames.len() as u64);
        assert_eq!(r.decisions.len(), 1);
        let d = r.decisions[0].decision.expect("stream has evidence");
        assert_eq!(d.module, 0, "impostor must present the right module");
        assert_eq!(d.observations, frames.len() as u64);
    }

    // The fixed majority window accepts the impostor: the majority
    // module still matches the registration.
    assert_eq!(
        fixed.decisions[0].verdict,
        Verdict::Accept,
        "fixed policy was expected to pass the impostor: {:?}",
        fixed.decisions[0]
    );

    // The adaptive policy calibrated the stream at ~0.995 confidence;
    // the takeover's ~0.69 EMA is far below the learned floor.
    assert_eq!(
        adaptive.decisions[0].verdict,
        Verdict::Reject,
        "adaptive policy must flag the confidence collapse: {:?}",
        adaptive.decisions[0]
    );
    // It had accepted the genuine phase first (decided before the
    // takeover at report 40).
    let decided_at = adaptive.decisions[0].decided_at.expect("decided");
    assert!(decided_at <= 40, "decided during the genuine phase");
}

/// Re-registering a source to a new module re-judges the *same* policy
/// evidence against the new expectation: the stream that was accepted as
/// module A is confidently rejected once the registry expects module B —
/// without feeding a single new report.
#[test]
fn reregistration_rejudges_existing_policy_state() {
    use deepcsi_serve::{DecisionPolicy, FixedMajority, VerdictPolicy, WindowConfig};

    let policy = FixedMajority::new(WindowConfig::default(), VerdictPolicy::default());
    let mut state = policy.new_state();
    for _ in 0..20 {
        state.push(1, 0.9);
    }

    let mac = MacAddr::station(42);
    let mut registry = DeviceRegistry::new();
    registry.register(mac, DeviceId(1));
    let expected = |reg: &DeviceRegistry| reg.expected(mac).map(|d| d.0 as usize);

    assert_eq!(state.verdict(expected(&registry)), Verdict::Accept);
    let before = state.decision().expect("evidence exists");

    // Re-register the MAC to a different module: same evidence, new
    // judgement.
    registry.register(mac, DeviceId(2));
    assert_eq!(state.verdict(expected(&registry)), Verdict::Reject);

    // The stream's evidence is untouched by the registry change.
    assert_eq!(state.decision(), Some(before));
}
