//! Capture-file serving: the dataset → pcap → engine path must be
//! indistinguishable from the in-memory replay path, telemetry must
//! reconcile end to end, and `drain()` must wake by signal, not by
//! sleep-polling.

use deepcsi_capture::{PcapFileSource, PcapWriter, RadiotapBuilder, LINKTYPE_RADIOTAP};
use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, generate_d1, D1Set, Dataset, GenConfig, InputSpec};
use deepcsi_nn::{Dense, Flatten, Network, TrainConfig};
use deepcsi_serve::{
    Backpressure, Engine, EngineConfig, EngineReport, ReplaySource, SourceStatus, Verdict,
    VerdictPolicy, WindowConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn spec() -> InputSpec {
    InputSpec {
        stride: 4,
        ..InputSpec::default()
    }
}

fn dataset(modules: u32, snapshots: usize) -> Dataset {
    generate_d1(&GenConfig {
        num_modules: modules,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    })
}

fn trained_authenticator(ds: &Dataset, modules: usize) -> Authenticator {
    let spec = spec();
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(modules),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let result = run_experiment(&cfg, &split);
    assert!(result.accuracy > 0.8, "model too weak for verdict test");
    Authenticator::new(result.network, spec)
}

/// A minimal (but deterministic) model for plumbing/latency tests.
fn trivial_authenticator(ds: &Dataset, classes: usize) -> Authenticator {
    let spec = spec();
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    let mut net = Network::new();
    net.push(Flatten::new());
    net.push(Dense::new(probe.len(), classes, 1));
    Authenticator::new(net, spec)
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        backpressure: Backpressure::Block,
        window: WindowConfig {
            len: 25,
            ema_alpha: 0.2,
        },
        policy: VerdictPolicy {
            min_observations: 10,
            min_vote_fraction: 0.6,
        },
        ..EngineConfig::default()
    }
}

fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "deepcsi-serve-capture-{}-{tag}-{seq}",
        std::process::id()
    ))
}

/// Runs one engine over a frame source until it ends, returning the
/// final report.
fn serve_source(
    auth: Authenticator,
    ds: &Dataset,
    source: &mut dyn deepcsi_capture::FrameSource,
) -> EngineReport {
    let engine = Engine::start(engine_config(), auth, ReplaySource::registry(ds));
    assert_eq!(
        engine.ingest_available(source).expect("source serves"),
        SourceStatus::End
    );
    engine.shutdown()
}

/// The acceptance criterion: export-to-pcap + `PcapFileSource` must
/// produce byte-identical per-device verdicts and reconciled telemetry
/// vs the in-memory `ReplaySource` — for both container formats.
#[test]
fn pcap_roundtrip_equals_in_memory_replay() {
    let ds = dataset(3, 40);
    let auth = trained_authenticator(&ds, 3);
    let replay = ReplaySource::from_dataset(&ds);

    // In-memory path, through the same FrameSource interface.
    let mut in_memory = replay.clone();
    let baseline = serve_source(auth.clone(), &ds, &mut in_memory);

    // pcap file path.
    let pcap_path = temp_path("roundtrip.pcap");
    replay
        .write_pcap(std::fs::File::create(&pcap_path).unwrap())
        .unwrap();
    let mut pcap_src = PcapFileSource::open(&pcap_path).unwrap();
    let via_pcap = serve_source(auth.clone(), &ds, &mut pcap_src);

    // pcapng file path.
    let ng_path = temp_path("roundtrip.pcapng");
    replay
        .write_pcapng(std::fs::File::create(&ng_path).unwrap())
        .unwrap();
    let mut ng_src = PcapFileSource::open(&ng_path).unwrap();
    let via_pcapng = serve_source(auth, &ds, &mut ng_src);

    // Every stream earns a correct Accept — and the three paths agree
    // byte for byte on every per-device decision.
    assert_eq!(baseline.decisions.len(), ReplaySource::registry(&ds).len());
    for d in &baseline.decisions {
        assert_eq!(d.verdict, Verdict::Accept, "{}", d.source);
    }
    assert_eq!(baseline.decisions, via_pcap.decisions);
    assert_eq!(baseline.decisions, via_pcapng.decisions);

    for report in [&baseline, &via_pcap, &via_pcapng] {
        let s = &report.stats;
        assert_eq!(s.classified as usize, replay.len());
        assert_eq!(s.capture_packets as usize, replay.len());
        assert_eq!((s.capture_skipped, s.capture_errors, s.dropped), (0, 0, 0));
        assert!(s.capture_reconciles(), "telemetry does not reconcile: {s}");
    }
    // The file paths actually read the container framing on top of the
    // MPDU bytes the in-memory path counts.
    assert!(via_pcap.stats.capture_bytes > baseline.stats.capture_bytes);

    std::fs::remove_file(&pcap_path).ok();
    std::fs::remove_file(&ng_path).ok();
}

/// A realistic monitor-mode mix — beamforming reports, beacons, a
/// radiotap-corrupt packet and a prefilter-passing-but-undecodable
/// frame — must leave `enqueued == seen − skipped − errored` intact.
#[test]
fn capture_telemetry_reconciles_over_noisy_capture() {
    let ds = dataset(2, 6);
    let replay = ReplaySource::from_dataset(&ds);

    let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
    let rt = || RadiotapBuilder::new().antenna_signal(-50).build();
    let mut valid = 0u64;
    for (k, mpdu) in replay.frames().enumerate() {
        // Interleave noise around every real report.
        let mut beacon = rt();
        beacon.extend_from_slice(&[0x80; 40]); // management/beacon
        w.write_packet(k as u64 * 10, &beacon).unwrap();
        let mut pkt = rt();
        pkt.extend_from_slice(mpdu);
        w.write_packet(k as u64 * 10 + 1, &pkt).unwrap();
        valid += 1;
    }
    // One packet whose radiotap header lies about its length…
    let mut corrupt = rt();
    corrupt[2] = 0xEE;
    corrupt[3] = 0x03;
    w.write_packet(9_000, &corrupt).unwrap();
    // …and one that passes the 3-byte prefilter but is not a decodable
    // beamforming report (bogus MIMO control / payload).
    let mut lookalike = rt();
    let mut mpdu = vec![0xFFu8; 40];
    mpdu[0] = 0xE0;
    mpdu[24] = 21;
    mpdu[25] = 0;
    lookalike.extend_from_slice(&mpdu);
    w.write_packet(9_001, &lookalike).unwrap();
    let image = w.finish().unwrap();

    let engine = Engine::start(
        engine_config(),
        trivial_authenticator(&ds, 2),
        ReplaySource::registry(&ds),
    );
    let mut source = PcapFileSource::from_bytes(image);
    assert_eq!(
        engine.ingest_available(&mut source).unwrap(),
        SourceStatus::End
    );
    let report = engine.shutdown();
    let s = &report.stats;

    assert_eq!(s.capture_packets, valid * 2 + 2);
    assert_eq!(s.capture_skipped, valid, "one beacon per report");
    assert_eq!(s.capture_errors, 1, "the corrupt radiotap packet");
    assert_eq!(s.decode_errors, 1, "the prefilter lookalike");
    assert_eq!(s.enqueued, valid);
    assert_eq!(s.classified, valid);
    assert!(
        s.capture_reconciles(),
        "enqueued must equal seen − skipped − errored: {s}"
    );
}

/// With the Condvar in place, drain latency is a thread wake-up — it
/// must no longer quantize to the old 200 µs sleep-poll interval.
#[test]
fn drain_latency_is_not_quantized_to_a_poll_interval() {
    use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
    use deepcsi_frame::{BeamformingReportFrame, MacAddr};
    use deepcsi_phy::{Codebook, MimoConfig};

    let ds = dataset(1, 2);
    // A tiny 2×1 report the model is incompatible with: the worker's
    // whole job is one `compatible()` check + reject accounting, so the
    // measured wait is the drain handoff itself, not inference.
    let frame = BeamformingReportFrame::new(
        MacAddr::station(0),
        MacAddr::station(1),
        MacAddr::station(0),
        1,
        BeamformingFeedback {
            mimo: MimoConfig::new(2, 1, 1).expect("valid"),
            codebook: Codebook::MU_HIGH,
            subcarriers: vec![0, 1],
            angles: vec![
                QuantizedAngles {
                    m: 2,
                    n_ss: 1,
                    q_phi: vec![1],
                    q_psi: vec![2],
                };
                2
            ],
        },
    )
    .encode();
    let engine = Engine::start(
        EngineConfig {
            workers: 1,
            max_batch: 1,                 // classify immediately…
            batch_linger: Duration::ZERO, // …without lingering
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        trivial_authenticator(&ds, 2),
        ReplaySource::registry(&ds),
    );

    // Warm up the worker (thread start, first inference).
    for _ in 0..16 {
        engine.ingest_frame(&frame);
        engine.drain();
    }
    // Time the `drain()` call alone: on this machine the worker only
    // gets the core once the caller blocks, so the wait covers the
    // classify + wake-up handoff in both implementations — but the old
    // sleep-poll version could not return in under one full 200 µs
    // sleep quantum whenever it had to wait at all.
    let mut waits: Vec<Duration> = (0..64)
        .map(|_| {
            engine.ingest_frame(&frame);
            let t = Instant::now();
            engine.drain();
            t.elapsed()
        })
        .collect();
    waits.sort();
    // Under the old implementation *every* waiting drain cost ≥ one
    // full 200 µs sleep, so even the fastest of 64 cycles sat above
    // the quantum. Asserting the minimum keeps the regression check
    // meaningful while shrugging off a loaded machine (other tests in
    // this binary train models concurrently) slowing most wake-ups.
    let fastest = waits[0];
    assert!(
        fastest < Duration::from_micros(200),
        "drain still quantizes to the poll interval (fastest wait of 64: {fastest:?})"
    );
    engine.shutdown();
}
