//! Dataset-scale soak: sustained report volume through the engine with
//! drop-rate and latency SLO assertions (ROADMAP "dataset-scale serving
//! runs", first slice).
//!
//! Two scales share one harness:
//!
//! * `soak_smoke_10k` — always on, so the harness itself is exercised
//!   by every `cargo test` run and in CI;
//! * `soak_1m` — `#[ignore]`d by default (minutes of wall clock);
//!   run it explicitly for a full-scale soak:
//!   `cargo test -p deepcsi-serve --test soak --release -- --ignored`.
//!
//! The SLOs pinned here are deliberately lax — CI machines are noisy —
//! but they are *real*: lossless ingest (zero drops under `Block`
//! backpressure), full classification accounting at the end of the run,
//! and a p99 micro-batch latency bound.

use deepcsi_core::{Authenticator, ModelConfig};
use deepcsi_data::{generate_d1, GenConfig, InputSpec};
use deepcsi_serve::{Backpressure, Engine, EngineConfig, EngineStats, ReplaySource, Verdict};
use std::time::Duration;

/// p99 micro-batch latency SLO. A batch on this untrained demo-size
/// model takes well under a millisecond of inference; 250 ms only
/// trips on a genuine stall (lock contention, a wedged worker, an
/// allocation storm), not on scheduler noise.
const P99_SLO: Duration = Duration::from_millis(250);

/// Drives at least `total` reports through a 2-worker engine by
/// replaying a small synthetic capture, then asserts the soak SLOs and
/// returns the final stats.
fn run_soak(total: u64) -> EngineStats {
    let ds = generate_d1(&GenConfig {
        num_modules: 2,
        snapshots_per_trace: 10,
        ..GenConfig::default()
    });
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    // Untrained weights: soak measures the serving machinery, not the
    // classifier (throughput does not depend on what the verdicts are).
    let auth = Authenticator::new(ModelConfig::demo(2).build_for(&probe), spec);

    let replay = ReplaySource::from_dataset(&ds);
    let registry = ReplaySource::registry(&ds);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            // Lossless mode: every report must be classified, so the
            // drop-rate SLO is exact (zero), not statistical.
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        auth.freeze(),
        registry.clone(),
    );

    let frames: Vec<&[u8]> = replay.frames().collect();
    assert!(!frames.is_empty());
    let mut sent = 0u64;
    'replay: loop {
        for frame in &frames {
            engine.ingest_frame(frame);
            sent += 1;
            if sent >= total {
                break 'replay;
            }
        }
    }
    engine.drain();
    let report = engine.shutdown();
    let stats = report.stats;

    // --- soak SLOs ---------------------------------------------------
    assert_eq!(stats.ingested, sent, "ingest accounting drifted");
    assert_eq!(stats.dropped, 0, "lossless soak must not drop");
    assert_eq!(stats.decode_errors, 0);
    assert_eq!(stats.rejected, 0);
    assert_eq!(
        stats.classified, sent,
        "every enqueued report must be classified by shutdown"
    );
    let p99 = stats.batch_latency_p99.expect("batches ran");
    assert!(
        p99 <= P99_SLO,
        "p99 batch latency {p99:?} exceeds the {P99_SLO:?} SLO"
    );
    // Sustained replay: every registered stream must have accumulated
    // evidence (the model is untrained, so the *verdicts* are not the
    // SLO — the per-stream machinery reaching a windowed decision is).
    assert_eq!(report.decisions.len(), registry.len());
    for d in &report.decisions {
        let w = d
            .decision
            .unwrap_or_else(|| panic!("{} accumulated no evidence", d.source));
        assert!(w.observations > 0);
        assert_ne!(d.verdict, Verdict::Unknown, "{} never decided", d.source);
    }
    stats
}

/// Smoke-scale soak (10k reports): always on, keeping the harness and
/// its SLO assertions exercised by every test run.
#[test]
fn soak_smoke_10k() {
    let stats = run_soak(10_000);
    assert!(stats.batches > 0);
    assert!(stats.mean_batch >= 1.0);
}

/// Full-scale soak (1M reports). `#[ignore]`d: minutes of wall clock on
/// a laptop-class core. Run with `-- --ignored` (release strongly
/// recommended).
#[test]
#[ignore = "dataset-scale soak: minutes of runtime; run with -- --ignored"]
fn soak_1m() {
    let stats = run_soak(1_000_000);
    assert_eq!(stats.classified, 1_000_000);
}
