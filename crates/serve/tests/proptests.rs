//! Property tests for the decision-window and policy invariants the
//! docs promise:
//!
//! * [`WindowedDecision::vote_fraction`] is in `(0, 1]` — the winner
//!   holds at least one vote and never more than the window.
//! * [`DecisionWindow::decision`] is `None` if and only if no report was
//!   ever pushed.
//! * Ties resolve to the smallest winning module id, independent of
//!   arrival order.

use deepcsi_serve::{
    ConfidenceWeighted, DecisionPolicy, DecisionWindow, VerdictPolicy, WindowConfig,
    WindowedDecision,
};
use proptest::prelude::*;

fn window_config() -> impl Strategy<Value = WindowConfig> {
    (1usize..40, 0.01f64..1.0).prop_map(|(len, ema_alpha)| WindowConfig { len, ema_alpha })
}

/// Arbitrary report streams: (module, confidence) pairs.
fn reports() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0usize..8, 0.0f64..1.0), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vote_fraction_is_in_unit_interval((cfg, stream) in (window_config(), reports())) {
        let mut w = DecisionWindow::new(cfg);
        for &(module, confidence) in &stream {
            w.push(module, confidence);
            let d = w.decision().expect("Some after every push");
            prop_assert!(
                d.vote_fraction > 0.0 && d.vote_fraction <= 1.0,
                "vote_fraction {} escaped (0, 1]",
                d.vote_fraction
            );
            prop_assert!(d.confidence_ema >= 0.0 && d.confidence_ema <= 1.0);
        }
    }

    #[test]
    fn decision_is_none_iff_no_push((cfg, stream) in (window_config(), reports())) {
        let mut w = DecisionWindow::new(cfg);
        // The contract: None before the first push…
        prop_assert!(w.decision().is_none());
        prop_assert!(w.is_empty());
        // …and Some ever after, regardless of what was pushed.
        for &(module, confidence) in &stream {
            w.push(module, confidence);
            prop_assert!(w.decision().is_some());
        }
    }

    #[test]
    fn observations_count_every_push((cfg, stream) in (window_config(), reports())) {
        let mut w = DecisionWindow::new(cfg);
        for (n, &(module, confidence)) in stream.iter().enumerate() {
            w.push(module, confidence);
            prop_assert_eq!(w.decision().expect("pushed").observations, n as u64 + 1);
            prop_assert!(w.len() <= cfg.len);
        }
    }

    #[test]
    fn ties_resolve_to_smallest_winner_regardless_of_order(
        mut stream in proptest::collection::vec(0usize..5, 1..20),
        rot in 0usize..20,
    ) {
        // Fill a window larger than the stream so arrival order cannot
        // change the surviving vote multiset — only the tie-break may
        // depend on order, and it must not.
        let cfg = WindowConfig { len: 32, ema_alpha: 0.5 };
        let push_all = |votes: &[usize]| {
            let mut w = DecisionWindow::new(cfg);
            for &m in votes {
                w.push(m, 0.5);
            }
            w.decision().expect("non-empty stream").module
        };
        let baseline = push_all(&stream);
        let rot = rot % stream.len();
        stream.rotate_left(rot);
        prop_assert_eq!(push_all(&stream), baseline);
    }

    #[test]
    fn weighted_posterior_is_in_unit_interval(stream in reports()) {
        // The ConfidenceWeighted policy documents the same (0, 1] range
        // for its posterior-mass vote_fraction.
        let policy = ConfidenceWeighted::new(
            WindowConfig::default(),
            VerdictPolicy::default(),
            0.9,
            3.0,
        );
        let mut s = policy.new_state();
        prop_assert!(s.decision().is_none());
        for &(module, confidence) in &stream {
            s.push(module, confidence);
            let d: WindowedDecision = s.decision().expect("Some after every push");
            prop_assert!(
                d.vote_fraction > 0.0 && d.vote_fraction <= 1.0,
                "posterior {} escaped (0, 1]",
                d.vote_fraction
            );
        }
    }
}
