//! Property tests for the decision-window and policy invariants the
//! docs promise:
//!
//! * [`WindowedDecision::vote_fraction`] is in `(0, 1]` — the winner
//!   holds at least one vote and never more than the window.
//! * [`DecisionWindow::decision`] is `None` if and only if no report was
//!   ever pushed.
//! * Ties resolve to the smallest winning module id, independent of
//!   arrival order.
//! * [`LatencyHistogram`] quantiles stay within ±12.5% of the exact
//!   order statistic (log-linear buckets, 4 sub-buckets per octave),
//!   and its export accounts for every observation.

use deepcsi_serve::{
    ConfidenceWeighted, DecisionPolicy, DecisionWindow, LatencyHistogram, VerdictPolicy,
    WindowConfig, WindowedDecision,
};
use proptest::prelude::*;
use std::time::Duration;

fn window_config() -> impl Strategy<Value = WindowConfig> {
    (1usize..40, 0.01f64..1.0).prop_map(|(len, ema_alpha)| WindowConfig { len, ema_alpha })
}

/// Arbitrary report streams: (module, confidence) pairs.
fn reports() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0usize..8, 0.0f64..1.0), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vote_fraction_is_in_unit_interval((cfg, stream) in (window_config(), reports())) {
        let mut w = DecisionWindow::new(cfg);
        for &(module, confidence) in &stream {
            w.push(module, confidence);
            let d = w.decision().expect("Some after every push");
            prop_assert!(
                d.vote_fraction > 0.0 && d.vote_fraction <= 1.0,
                "vote_fraction {} escaped (0, 1]",
                d.vote_fraction
            );
            prop_assert!(d.confidence_ema >= 0.0 && d.confidence_ema <= 1.0);
        }
    }

    #[test]
    fn decision_is_none_iff_no_push((cfg, stream) in (window_config(), reports())) {
        let mut w = DecisionWindow::new(cfg);
        // The contract: None before the first push…
        prop_assert!(w.decision().is_none());
        prop_assert!(w.is_empty());
        // …and Some ever after, regardless of what was pushed.
        for &(module, confidence) in &stream {
            w.push(module, confidence);
            prop_assert!(w.decision().is_some());
        }
    }

    #[test]
    fn observations_count_every_push((cfg, stream) in (window_config(), reports())) {
        let mut w = DecisionWindow::new(cfg);
        for (n, &(module, confidence)) in stream.iter().enumerate() {
            w.push(module, confidence);
            prop_assert_eq!(w.decision().expect("pushed").observations, n as u64 + 1);
            prop_assert!(w.len() <= cfg.len);
        }
    }

    #[test]
    fn ties_resolve_to_smallest_winner_regardless_of_order(
        mut stream in proptest::collection::vec(0usize..5, 1..20),
        rot in 0usize..20,
    ) {
        // Fill a window larger than the stream so arrival order cannot
        // change the surviving vote multiset — only the tie-break may
        // depend on order, and it must not.
        let cfg = WindowConfig { len: 32, ema_alpha: 0.5 };
        let push_all = |votes: &[usize]| {
            let mut w = DecisionWindow::new(cfg);
            for &m in votes {
                w.push(m, 0.5);
            }
            w.decision().expect("non-empty stream").module
        };
        let baseline = push_all(&stream);
        let rot = rot % stream.len();
        stream.rotate_left(rot);
        prop_assert_eq!(push_all(&stream), baseline);
    }

    #[test]
    fn weighted_posterior_is_in_unit_interval(stream in reports()) {
        // The ConfidenceWeighted policy documents the same (0, 1] range
        // for its posterior-mass vote_fraction.
        let policy = ConfidenceWeighted::new(
            WindowConfig::default(),
            VerdictPolicy::default(),
            0.9,
            3.0,
        );
        let mut s = policy.new_state();
        prop_assert!(s.decision().is_none());
        for &(module, confidence) in &stream {
            s.push(module, confidence);
            let d: WindowedDecision = s.decision().expect("Some after every push");
            prop_assert!(
                d.vote_fraction > 0.0 && d.vote_fraction <= 1.0,
                "posterior {} escaped (0, 1]",
                d.vote_fraction
            );
        }
    }
}

/// Observation streams spanning the histogram's whole dynamic range:
/// exact sub-4ns buckets, microsecond-scale, and values deep into the
/// high octaves, freely mixed.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    // A 10-bit mantissa shifted across 50 octaves: zeros, exact sub-4ns
    // values, and everything up to ~10³ seconds, all in one stream.
    let any_magnitude = (0u32..50, 0u64..1024).prop_map(|(e, m)| m << e);
    proptest::collection::vec(any_magnitude, 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_linear_quantile_tracks_the_exact_order_statistic(
        (ns, q) in (observations(), 0.01f64..1.0)
    ) {
        // The docs promise: `quantile(q)` lands in the bucket holding
        // the ceil(n·q)-th smallest observation, resolved to its
        // midpoint — within ±12.5% of that order statistic (exact below
        // 4ns, where buckets are 1ns wide).
        let h = LatencyHistogram::default();
        for &n in &ns {
            h.record(Duration::from_nanos(n));
        }
        // `record` clamps to ≥ 1ns (an observation always happened);
        // mirror that in the reference order statistics.
        let mut sorted: Vec<u64> = ns.iter().map(|&n| n.max(1)).collect();
        sorted.sort_unstable();
        let target = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[target - 1];
        let est = h.quantile(q).expect("non-empty").as_nanos() as u64;
        if exact < 4 {
            prop_assert_eq!(est, exact, "sub-4ns buckets are exact");
        } else {
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(
                err <= 0.125,
                "quantile {est} is {:.1}% from order statistic {exact}",
                err * 100.0
            );
        }
    }

    #[test]
    fn histogram_export_accounts_every_observation(ns in observations()) {
        let h = LatencyHistogram::default();
        let mut total_ns = 0u128;
        for &n in &ns {
            h.record(Duration::from_nanos(n));
            total_ns += n.max(1) as u128;
        }
        let snap = h.export();
        // Cumulative buckets are monotone, and the last one owns the
        // whole population.
        for pair in snap.buckets.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1, "cumulative counts regressed");
            prop_assert!(pair[0].0 < pair[1].0, "bucket bounds not increasing");
        }
        prop_assert_eq!(snap.count, ns.len() as u64);
        prop_assert_eq!(snap.buckets.last().expect("non-empty").1, ns.len() as u64);
        // The exported sum (seconds) matches the recorded nanoseconds.
        let expect_s = total_ns as f64 * 1e-9;
        prop_assert!(
            (snap.sum - expect_s).abs() <= expect_s * 1e-9 + 1e-12,
            "sum {} != {}",
            snap.sum,
            expect_s
        );
    }
}
