//! Wall-clock soak: the PR 5 soak harness promoted to track SLOs *over
//! time* instead of only at shutdown.
//!
//! The report volume is split into checkpointed intervals; after each
//! interval the engine is drained and a stats snapshot taken, so the
//! assertions see a time series rather than one end-of-run aggregate:
//!
//! * **p99 latency drift** — the micro-batch p99 must hold the SLO at
//!   *every* checkpoint, not just amortised over the whole run;
//! * **device-count stability** — per-device policy states are never
//!   evicted (full LRU stays on the ROADMAP), so after a warm-up pass
//!   has seen every MAC the `device_states` gauge must not grow;
//! * **verdict-rate stability** — verdicts only accumulate (monotone,
//!   bounded by the registry) and every interval stays lossless;
//! * **RSS growth** — resident memory may not climb materially across
//!   the run (Linux only; skipped where `/proc` is unavailable).
//!
//! Two scales share the harness: `wallclock_soak_smoke_10k` (always on,
//! the CI step) and an `#[ignore]`d sustained variant.

use deepcsi_core::{Authenticator, ModelConfig};
use deepcsi_data::{generate_d1, GenConfig, InputSpec};
use deepcsi_serve::{
    Backpressure, BatchFormer, Engine, EngineConfig, EngineStats, ReplaySource, Verdict,
};
use std::sync::Arc;
use std::time::Duration;

/// Same stall-detection bound as the aggregate soak (`soak.rs`).
const P99_SLO: Duration = Duration::from_millis(250);

/// Allowed resident-set growth between the first and last checkpoint.
/// The engine allocates nothing per report once its windows are full;
/// 64 MiB absorbs allocator slack and lazily-faulted pages without
/// masking a real per-report leak at these volumes.
const RSS_GROWTH_BOUND_BYTES: u64 = 64 * 1024 * 1024;

/// Resident set size via `/proc/self/statm`, if the platform has it.
fn rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4096)
}

/// Drives `total` reports through a 2-worker engine in `intervals`
/// checkpointed chunks (after a full warm-up replay pass that visits
/// every MAC) and returns the per-checkpoint snapshots.
fn run_wallclock_soak(total: u64, intervals: usize) -> Vec<EngineStats> {
    assert!(intervals >= 3, "a time series needs at least 3 intervals");
    let ds = generate_d1(&GenConfig {
        num_modules: 2,
        snapshots_per_trace: 10,
        ..GenConfig::default()
    });
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    let auth = Authenticator::new(ModelConfig::demo(2).build_for(&probe), spec);

    let replay = ReplaySource::from_dataset(&ds);
    let registry = ReplaySource::registry(&ds);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        auth.freeze(),
        registry.clone(),
    );

    let frames: Vec<&[u8]> = replay.frames().collect();
    assert!(!frames.is_empty());

    // Warm-up: one full pass over the capture, so every MAC has a
    // device state before the first checkpoint. Growth after this point
    // is a leak (or an unexpected new stream), not warm-up.
    for frame in &frames {
        engine.ingest_frame(frame);
    }
    engine.drain();
    let warmup = engine.stats();
    assert_eq!(
        warmup.device_states,
        registry.len() as u64,
        "warm-up pass must instantiate exactly one state per registered stream"
    );

    let mut checkpoints = Vec::with_capacity(intervals);
    let mut rss = Vec::with_capacity(intervals);
    let per_interval = (total / intervals as u64).max(1);
    let mut cursor = 0usize;
    for _ in 0..intervals {
        let mut sent = 0u64;
        while sent < per_interval {
            engine.ingest_frame(frames[cursor]);
            cursor = (cursor + 1) % frames.len();
            sent += 1;
        }
        engine.drain();
        checkpoints.push(engine.stats());
        rss.push(rss_bytes());
    }

    // --- SLOs, per checkpoint ---------------------------------------
    let mut prev = warmup.clone();
    for (i, cp) in checkpoints.iter().enumerate() {
        let p99 = cp.batch_latency_p99.expect("batches ran");
        assert!(
            p99 <= P99_SLO,
            "checkpoint {i}: p99 batch latency {p99:?} exceeds {P99_SLO:?}"
        );
        assert_eq!(
            cp.device_states, warmup.device_states,
            "checkpoint {i}: device states grew after warm-up"
        );
        let delta = cp.delta(&prev);
        assert_eq!(
            delta.classified, per_interval,
            "checkpoint {i}: interval lost reports"
        );
        assert_eq!(delta.dropped, 0, "checkpoint {i}: lossless soak dropped");
        assert!(
            cp.verdicts_decided >= prev.verdicts_decided
                && cp.verdicts_decided <= registry.len() as u64,
            "checkpoint {i}: verdict count unstable ({} → {})",
            prev.verdicts_decided,
            cp.verdicts_decided
        );
        prev = cp.clone();
    }
    if let (Some(Some(first)), Some(Some(last))) = (rss.first(), rss.last()) {
        assert!(
            last.saturating_sub(*first) < RSS_GROWTH_BOUND_BYTES,
            "RSS grew {} → {} bytes across the soak",
            first,
            last
        );
    }

    // End-of-run accounting, as in the aggregate soak.
    let report = engine.shutdown();
    assert_eq!(report.decisions.len(), registry.len());
    for d in &report.decisions {
        assert_ne!(d.verdict, Verdict::Unknown, "{} never decided", d.source);
    }
    checkpoints
}

/// Smoke-scale wall-clock soak (10k reports, 3 checkpoints): always on,
/// the CI step next to `soak_smoke_10k`.
#[test]
fn wallclock_soak_smoke_10k() {
    let checkpoints = run_wallclock_soak(10_000, 3);
    assert_eq!(checkpoints.len(), 3);
    // The series is genuinely cumulative.
    assert!(checkpoints[2].classified > checkpoints[0].classified);
}

/// Sustained wall-clock soak (500k reports, 5 checkpoints).
/// `#[ignore]`d: minutes of runtime; run with `-- --ignored` (release
/// strongly recommended).
#[test]
#[ignore = "sustained wall-clock soak: minutes of runtime; run with -- --ignored"]
fn wallclock_soak_sustained_500k() {
    let checkpoints = run_wallclock_soak(500_000, 5);
    assert_eq!(checkpoints.len(), 5);
}

/// Burst/idle wall-clock phases through the adaptive batch former: a
/// sustained backlog grows the per-worker target all the way to
/// `max_batch` (prompt, allowance-filling batches double it; the
/// backlog tail holds it), idle gaps longer than the linger collapse it
/// back to the floor, the p99 batch-latency SLO holds throughout — and
/// the decision vector is bit-identical to the fixed former's over the
/// same frames.
#[test]
fn adaptive_former_tracks_burst_and_idle_phases() {
    let ds = generate_d1(&GenConfig {
        num_modules: 2,
        snapshots_per_trace: 10,
        ..GenConfig::default()
    });
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    let auth = Authenticator::new(ModelConfig::demo(2).build_for(&probe), spec);
    let frozen = Arc::new(auth.freeze());
    let registry = ReplaySource::registry(&ds);
    let frames: Vec<Vec<u8>> = ReplaySource::from_dataset(&ds)
        .frames()
        .map(<[u8]>::to_vec)
        .collect();

    // Scheduler jitter must read as "prompt", so the linger (which
    // doubles as the former's idle threshold) sits well above a
    // scheduling quantum — and the idle gaps sit well above the linger.
    let linger = Duration::from_millis(25);
    let config = |former| EngineConfig {
        workers: 1,
        batch_linger: linger,
        former,
        backpressure: Backpressure::Block,
        ..EngineConfig::default()
    };
    let max_batch = EngineConfig::default().max_batch as u64;

    let engine = Engine::start_frozen(
        config(BatchFormer::adaptive()),
        Arc::clone(&frozen),
        registry.clone(),
    );

    // Burst phase: a sustained backlog (ingest far outruns inference,
    // so the queue holds pressure until the tail).
    for _ in 0..40 {
        for frame in &frames {
            engine.ingest_frame(frame);
        }
    }
    engine.drain();
    let burst = engine.stats();
    assert_eq!(
        burst.batch_target, max_batch,
        "burst backlog did not grow the target to max_batch"
    );

    // Idle phase: lone reports separated by gaps far longer than the
    // linger. Every dry wait halves the target; five halvings from 32
    // reach the floor and later ones pin it there.
    for _ in 0..7 {
        std::thread::sleep(3 * linger);
        engine.ingest_frame(&frames[0]);
        engine.drain();
    }
    let idle = engine.stats();
    assert_eq!(
        idle.batch_target, 1,
        "idle gaps did not collapse the target to min_batch"
    );
    let p99 = idle.batch_latency_p99.expect("batches ran");
    assert!(p99 <= P99_SLO, "adaptive p99 {p99:?} exceeds {P99_SLO:?}");
    let adaptive = engine.shutdown();

    // Determinism: the identical frame sequence through the fixed
    // former decides identically — batch formation shapes departure
    // timing, never a verdict.
    let engine = Engine::start_frozen(config(BatchFormer::Fixed), frozen, registry);
    for _ in 0..40 {
        for frame in &frames {
            engine.ingest_frame(frame);
        }
    }
    for _ in 0..7 {
        engine.ingest_frame(&frames[0]);
    }
    let fixed = engine.shutdown();
    assert_eq!(
        fixed.stats.classified, adaptive.stats.classified,
        "former modes classified different report counts"
    );
    assert_eq!(
        fixed.decisions, adaptive.decisions,
        "decisions diverged between former modes"
    );
}
