//! Engine precision equivalence: the same capture served at
//! `--precision f32` and `--precision int8` must reach the same
//! verdicts.
//!
//! Quantization is allowed to perturb logits (the nn-level parity suite
//! bounds by how much), but on the clean-capture fixtures and the
//! crafted impostor scenario the *decisions* — per-device verdict and
//! decided module — must be identical, at any `infer_threads` split.

use std::sync::Arc;

use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
use deepcsi_core::{
    run_experiment, Authenticator, ExperimentConfig, FrozenAuthenticator, ModelConfig, Precision,
};
use deepcsi_data::{d1_split, generate_d1, D1Set, Dataset, GenConfig, InputSpec};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_impair::DeviceId;
use deepcsi_nn::{Dense, Flatten, Network, Tensor, TrainConfig};
use deepcsi_phy::{Codebook, MimoConfig};
use deepcsi_serve::{
    Backpressure, DecisionPolicyConfig, DeviceRegistry, Engine, EngineConfig, EngineReport,
    PolicyKind, ReplaySource, Verdict,
};

fn spec() -> InputSpec {
    InputSpec {
        stride: 4,
        ..InputSpec::default()
    }
}

fn trained_authenticator(ds: &Dataset, modules: usize) -> Authenticator {
    let spec = spec();
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(modules),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let result = run_experiment(&cfg, &split);
    assert!(result.accuracy > 0.8, "model too weak for verdict tests");
    Authenticator::new(result.network, spec)
}

/// Calibration batch: every tensorized snapshot of the dataset.
fn calib_tensors(auth: &Authenticator, ds: &Dataset) -> Vec<Tensor> {
    ds.traces
        .iter()
        .flat_map(|t| t.snapshots.iter())
        .map(|fb| auth.tensorize(fb))
        .collect()
}

fn config(kind: PolicyKind, precision: Precision, infer_threads: usize) -> EngineConfig {
    EngineConfig {
        workers: 2,
        infer_threads,
        precision,
        backpressure: Backpressure::Block,
        decision: DecisionPolicyConfig {
            kind,
            ..DecisionPolicyConfig::default()
        },
        ..EngineConfig::default()
    }
}

fn serve(
    kind: PolicyKind,
    precision: Precision,
    infer_threads: usize,
    frozen: &Arc<FrozenAuthenticator>,
    registry: DeviceRegistry,
    frames: &[Vec<u8>],
) -> EngineReport {
    let engine = Engine::start_frozen(
        config(kind, precision, infer_threads),
        Arc::clone(frozen),
        registry,
    );
    for frame in frames {
        engine.ingest_frame(frame);
    }
    engine.shutdown()
}

/// The comparable decision surface: per-device (source, verdict,
/// decided module). Confidence EMAs may differ in the last ulps between
/// precisions; the decisions must not.
fn verdict_vector(report: &EngineReport) -> Vec<(MacAddr, Verdict, Option<usize>)> {
    report
        .decisions
        .iter()
        .map(|d| (d.source, d.verdict, d.decision.map(|w| w.module)))
        .collect()
}

/// Clean-capture equivalence: a trained model serving its own synthetic
/// capture decides identically at f32 and int8, across policies and
/// `infer_threads` — and the int8 run classifies every report (no
/// rejects, no drops).
#[test]
fn precision_never_changes_a_clean_capture_verdict() {
    let ds = generate_d1(&GenConfig {
        num_modules: 3,
        snapshots_per_trace: 40,
        ..GenConfig::default()
    });
    let auth = trained_authenticator(&ds, 3);
    let f32_snap = Arc::new(auth.freeze());
    let int8_snap =
        Arc::new(FrozenAuthenticator::quantized(&auth, &calib_tensors(&auth, &ds)).unwrap());
    let frames: Vec<Vec<u8>> = ReplaySource::from_dataset(&ds)
        .frames()
        .map(<[u8]>::to_vec)
        .collect();
    let registry = ReplaySource::registry(&ds);

    for kind in [PolicyKind::FixedMajority, PolicyKind::ConfidenceWeighted] {
        let baseline = serve(
            kind,
            Precision::F32,
            1,
            &f32_snap,
            registry.clone(),
            &frames,
        );
        assert!(
            baseline
                .decisions
                .iter()
                .all(|d| d.verdict == Verdict::Accept),
            "clean capture must accept every registered stream ({kind:?})"
        );
        for threads in [1usize, 2] {
            let quantized = serve(
                kind,
                Precision::Int8,
                threads,
                &int8_snap,
                registry.clone(),
                &frames,
            );
            assert_eq!(quantized.stats.classified as usize, frames.len());
            assert_eq!(quantized.stats.rejected, 0);
            assert_eq!(quantized.stats.precision, "int8");
            assert_eq!(
                verdict_vector(&baseline),
                verdict_vector(&quantized),
                "verdicts diverged at int8 (policy {kind:?}, threads {threads})"
            );
        }
    }
}

/// A hand-built 3×2 feedback whose six quantized angles are set per
/// "device" (mirrors the decision-policy suite).
fn crafted_feedback(q_phi: [u16; 3], q_psi: [u16; 3]) -> BeamformingFeedback {
    let subcarriers: Vec<i32> = (0..16).collect();
    BeamformingFeedback {
        mimo: MimoConfig::new(3, 2, 2).expect("valid"),
        codebook: Codebook::MU_HIGH,
        angles: vec![
            QuantizedAngles {
                m: 3,
                n_ss: 2,
                q_phi: q_phi.to_vec(),
                q_psi: q_psi.to_vec(),
            };
            subcarriers.len()
        ],
        subcarriers,
    }
}

fn frame_for(source: MacAddr, seq: u16, fb: BeamformingFeedback) -> Vec<u8> {
    let monitor = MacAddr::station(0xAC_CE55);
    BeamformingReportFrame::new(monitor, source, monitor, seq, fb).encode()
}

/// A Flatten+Dense classifier with hand-set weights giving exact logits
/// per stream phase (same construction as the decision-policy suite).
fn crafted_authenticator(
    spec: &InputSpec,
    genuine: &BeamformingFeedback,
    impostor: &BeamformingFeedback,
    logit_genuine: f64,
    logit_impostor: f64,
) -> Authenticator {
    let t_a: Tensor = spec.tensor(genuine);
    let t_b: Tensor = spec.tensor(impostor);
    let (a, b) = (t_a.as_slice(), t_b.as_slice());
    assert_eq!(a.len(), b.len());
    let dot = |x: &[f32], y: &[f32]| -> f64 {
        x.iter()
            .zip(y)
            .map(|(&p, &q)| f64::from(p) * f64::from(q))
            .sum()
    };
    let (gaa, gab, gbb) = (dot(a, a), dot(a, b), dot(b, b));
    let det = gaa * gbb - gab * gab;
    assert!(det.abs() > 1e-9, "crafted tensors are linearly dependent");
    let alpha = (logit_genuine * gbb - logit_impostor * gab) / det;
    let beta = (logit_impostor * gaa - logit_genuine * gab) / det;

    let mut net = Network::new();
    net.push(Flatten::new());
    net.push(Dense::new(a.len(), 3, 1));
    for view in net.params() {
        for w in view.w.iter_mut() {
            *w = 0.0;
        }
        if view.w.len() == a.len() * 3 {
            for (j, w) in view.w[..a.len()].iter_mut().enumerate() {
                *w = (alpha * f64::from(a[j]) + beta * f64::from(b[j])) as f32;
            }
        }
    }
    Authenticator::new(net, spec.clone())
}

/// PR 3's takeover scenario at int8: an impostor presenting the right
/// module at collapsed confidence must still pass the fixed majority
/// and still be flagged by the adaptive floor — quantization does not
/// blunt the adaptive policy's confidence discrimination.
#[test]
fn impostor_scenario_verdicts_survive_quantization() {
    let spec = InputSpec::default();
    let genuine_fb = crafted_feedback([100, 200, 300], [40, 60, 80]);
    let impostor_fb = crafted_feedback([350, 50, 120], [20, 90, 35]);
    // softmax(6, 0, 0) ≈ 0.995 confidence genuine, softmax(1.5, 0, 0)
    // ≈ 0.69 impostor — same winning class.
    let auth = crafted_authenticator(&spec, &genuine_fb, &impostor_fb, 6.0, 1.5);
    let calib = vec![spec.tensor(&genuine_fb), spec.tensor(&impostor_fb)];
    let int8_snap = Arc::new(FrozenAuthenticator::quantized(&auth, &calib).unwrap());

    let victim = MacAddr::station(0x715);
    let mut registry = DeviceRegistry::new();
    registry.register(victim, DeviceId(0));

    let mut frames: Vec<Vec<u8>> = Vec::new();
    for k in 0..40u16 {
        frames.push(frame_for(victim, k, genuine_fb.clone()));
    }
    for k in 40..80u16 {
        frames.push(frame_for(victim, k, impostor_fb.clone()));
    }

    for threads in [1usize, 2] {
        let fixed = serve(
            PolicyKind::FixedMajority,
            Precision::Int8,
            threads,
            &int8_snap,
            registry.clone(),
            &frames,
        );
        let adaptive = serve(
            PolicyKind::AdaptiveThreshold,
            Precision::Int8,
            threads,
            &int8_snap,
            registry.clone(),
            &frames,
        );
        for r in [&fixed, &adaptive] {
            assert_eq!(r.stats.classified, frames.len() as u64);
            assert_eq!(r.decisions.len(), 1);
            let d = r.decisions[0].decision.expect("stream has evidence");
            assert_eq!(d.module, 0, "impostor must present the right module");
        }
        // Same outcome the f32 policy tests pin: the fixed majority
        // passes the impostor, the adaptive floor flags it.
        assert_eq!(fixed.decisions[0].verdict, Verdict::Accept);
        assert_eq!(adaptive.decisions[0].verdict, Verdict::Reject);
    }
}

/// Declaring one precision and serving another is a startup error, not
/// a silently wrong backend.
#[test]
#[should_panic(expected = "engine configured for int8")]
fn precision_mismatch_fails_at_startup() {
    let spec = InputSpec::default();
    let fb = crafted_feedback([100, 200, 300], [40, 60, 80]);
    let other = crafted_feedback([350, 50, 120], [20, 90, 35]);
    let auth = crafted_authenticator(&spec, &fb, &other, 6.0, 1.5);
    // f32 snapshot, int8 config.
    let _ = Engine::start_frozen(
        config(PolicyKind::FixedMajority, Precision::Int8, 1),
        auth.freeze(),
        DeviceRegistry::new(),
    );
}
