//! Observability integration: tracing and profiling must be *pure
//! observers* — verdicts bit-identical with them on or off, at both
//! precisions — and the exported artifacts (Chrome trace JSON,
//! Prometheus text) must survive a round trip through the `obs` crate's
//! own parsers.

use std::sync::Arc;

use deepcsi_core::{Authenticator, FrozenAuthenticator, ModelConfig};
use deepcsi_data::{generate_d1, Dataset, GenConfig, InputSpec};
use deepcsi_obs::{
    parse_chrome_trace, parse_prometheus, write_chrome_trace, JsonValue, TraceConfig,
};
use deepcsi_serve::{
    Backpressure, Engine, EngineConfig, EngineReport, Precision, ReplaySource, Stage,
};

fn spec() -> InputSpec {
    InputSpec {
        stride: 4, // narrow inputs keep the tests fast
        ..InputSpec::default()
    }
}

fn dataset(modules: u32, snapshots: usize) -> Dataset {
    generate_d1(&GenConfig {
        num_modules: modules,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    })
}

/// An untrained classifier: observability must not perturb *whatever*
/// the model decides, so accuracy is irrelevant here — determinism is
/// what's under test.
fn authenticator(ds: &Dataset, modules: usize) -> Authenticator {
    let spec = spec();
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    Authenticator::new(ModelConfig::fast(modules, 0).build_for(&probe), spec)
}

/// Freezes at the requested precision (int8 calibrates on the dataset's
/// own snapshots, like `deepcsi-served` does).
fn frozen(auth: &Authenticator, ds: &Dataset, precision: Precision) -> Arc<FrozenAuthenticator> {
    Arc::new(match precision {
        Precision::F32 => auth.freeze(),
        Precision::Int8 => {
            let calib: Vec<_> = ds
                .traces
                .iter()
                .flat_map(|t| t.snapshots.iter())
                .map(|fb| auth.tensorize(fb))
                .collect();
            FrozenAuthenticator::quantized(auth, &calib).expect("int8 quantization")
        }
    })
}

fn serve(
    frozen: &Arc<FrozenAuthenticator>,
    ds: &Dataset,
    precision: Precision,
    stage_timing: bool,
    trace: TraceConfig,
    profile: bool,
) -> EngineReport {
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            precision,
            backpressure: Backpressure::Block,
            stage_timing,
            trace,
            profile,
            ..EngineConfig::default()
        },
        Arc::clone(frozen),
        ReplaySource::registry(ds),
    );
    for frame in ReplaySource::from_dataset(ds).frames() {
        engine.ingest_frame(frame);
    }
    engine.shutdown()
}

/// One device's decision, flattened for comparison:
/// (source, verdict, decided module, observations, decided_at).
type DecisionRow = (String, String, Option<usize>, u64, Option<u64>);

/// Everything decision-shaped in a report, in comparable form.
fn decision_vector(report: &EngineReport) -> Vec<DecisionRow> {
    report
        .decisions
        .iter()
        .map(|d| {
            (
                d.source.to_string(),
                format!("{:?}", d.verdict),
                d.decision.as_ref().map(|w| w.module),
                d.decision.as_ref().map_or(0, |w| w.observations),
                d.decided_at,
            )
        })
        .collect()
}

#[test]
fn observability_does_not_change_verdicts_at_either_precision() {
    let ds = dataset(3, 20);
    let auth = authenticator(&ds, 3);
    for precision in [Precision::F32, Precision::Int8] {
        let model = frozen(&auth, &ds, precision);
        // Fully dark (no timestamps at all) vs everything on (every
        // batch traced, every layer profiled).
        let dark = serve(&model, &ds, precision, false, TraceConfig::default(), false);
        let lit = serve(&model, &ds, precision, true, TraceConfig::always(), true);
        assert_eq!(
            decision_vector(&dark),
            decision_vector(&lit),
            "{precision} verdicts changed when observability was enabled"
        );
        assert_eq!(dark.stats.classified, lit.stats.classified);
        // The dark run really was dark, and the lit run really did
        // observe: spans on one side only.
        assert!(dark.spans.is_empty() && dark.layer_profile.is_none());
        assert!(!lit.spans.is_empty() && lit.layer_profile.is_some());
    }
}

#[test]
fn spans_cover_every_stage_and_round_trip_through_chrome_json() {
    let ds = dataset(2, 15);
    let auth = authenticator(&ds, 2);
    let model = frozen(&auth, &ds, Precision::F32);
    let report = serve(
        &model,
        &ds,
        Precision::F32,
        true,
        TraceConfig::always(),
        false,
    );

    // With sample_every = 1 every pipeline stage must have fired.
    for stage in Stage::ALL {
        assert!(
            report.spans.iter().any(|s| s.name == stage.name()),
            "no {:?} span in {} spans",
            stage.name(),
            report.spans.len()
        );
    }
    // Spans arrive sorted and with sane extents.
    for pair in report.spans.windows(2) {
        assert!(pair[0].start_ns <= pair[1].start_ns, "spans not sorted");
    }

    // Chrome trace_event JSON round trip through the obs parser.
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, &report.spans).expect("write trace");
    let text = String::from_utf8(buf).expect("utf8 trace");
    let parsed = parse_chrome_trace(&text).expect("parse trace");
    assert_eq!(parsed.len(), report.spans.len());
    for (p, e) in parsed.iter().zip(&report.spans) {
        assert!(p.matches(e), "span {:?} did not round-trip", e.name);
    }
}

#[test]
fn metrics_artifacts_parse_cleanly_after_a_run() {
    let ds = dataset(2, 15);
    let auth = authenticator(&ds, 2);
    let model = frozen(&auth, &ds, Precision::F32);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        Arc::clone(&model),
        ReplaySource::registry(&ds),
    );
    let telemetry = engine.telemetry_handle();
    for frame in ReplaySource::from_dataset(&ds).frames() {
        engine.ingest_frame(frame);
    }
    engine.drain();

    let reg = telemetry.metrics();
    let text = reg.to_prometheus();
    let samples = parse_prometheus(&text).expect("prometheus text parses");
    assert!(!samples.is_empty());
    assert!(!text.contains("NaN"), "non-finite value leaked:\n{text}");
    let classified = samples
        .iter()
        .find(|s| s.name == "deepcsi_classified_total")
        .expect("classified counter exported");
    assert_eq!(classified.value as u64, telemetry.snapshot().classified);

    let line = reg.to_json_line();
    let json = JsonValue::parse(&line).expect("JSON line parses");
    assert_eq!(
        json.get("deepcsi_classified_total")
            .and_then(|v| v.as_f64()),
        Some(classified.value)
    );

    let report = engine.shutdown();
    assert_eq!(report.stats.classified, classified.value as u64);
}

#[test]
fn layer_profile_merges_every_worker_and_accounts_every_sample() {
    let ds = dataset(2, 15);
    let auth = authenticator(&ds, 2);
    let model = frozen(&auth, &ds, Precision::F32);
    let report = serve(
        &model,
        &ds,
        Precision::F32,
        true,
        TraceConfig::default(),
        true,
    );
    let ops = report.layer_profile.as_ref().expect("profile requested");
    assert!(!ops.is_empty());
    // Every op saw every classified sample exactly once, on every row.
    for op in ops {
        assert_eq!(
            op.samples, report.stats.classified,
            "op {} sample count diverges from classified",
            op.name
        );
        assert!(op.calls > 0 && op.bytes > 0);
    }
    assert_eq!(model.model().len(), ops.len());
}
