//! Observability integration: tracing, profiling, the audit trail and
//! the live scrape plane must be *pure observers* — verdicts
//! bit-identical with them on or off, at both precisions — and the
//! exported artifacts (Chrome trace JSON, Prometheus text, audit JSONL,
//! every HTTP endpoint payload) must survive a round trip through the
//! `obs` crate's own parsers, even while being scraped under load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use deepcsi_core::{Authenticator, FrozenAuthenticator, ModelConfig};
use deepcsi_data::{generate_d1, Dataset, GenConfig, InputSpec};
use deepcsi_obs::{
    http_get, parse_chrome_trace, parse_prometheus, write_chrome_trace, HealthState, JsonValue,
    SloConfig, TraceConfig,
};
use deepcsi_serve::{
    AuditConfig, Backpressure, Engine, EngineConfig, EngineReport, ObsPlane, ObsPlaneConfig,
    Precision, ReplaySource, Stage,
};

/// A plane config for deterministic tests: free port, and a ticker that
/// effectively never fires on its own — every SLO evaluation goes
/// through `tick_now()`.
fn test_plane_config(slo: SloConfig) -> ObsPlaneConfig {
    ObsPlaneConfig {
        listen: "127.0.0.1:0".to_string(),
        slo,
        slo_interval: Duration::from_secs(3600),
        ..ObsPlaneConfig::default()
    }
}

const SCRAPE_TIMEOUT: Duration = Duration::from_secs(5);

fn spec() -> InputSpec {
    InputSpec {
        stride: 4, // narrow inputs keep the tests fast
        ..InputSpec::default()
    }
}

fn dataset(modules: u32, snapshots: usize) -> Dataset {
    generate_d1(&GenConfig {
        num_modules: modules,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    })
}

/// An untrained classifier: observability must not perturb *whatever*
/// the model decides, so accuracy is irrelevant here — determinism is
/// what's under test.
fn authenticator(ds: &Dataset, modules: usize) -> Authenticator {
    let spec = spec();
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    Authenticator::new(ModelConfig::fast(modules, 0).build_for(&probe), spec)
}

/// Freezes at the requested precision (int8 calibrates on the dataset's
/// own snapshots, like `deepcsi-served` does).
fn frozen(auth: &Authenticator, ds: &Dataset, precision: Precision) -> Arc<FrozenAuthenticator> {
    Arc::new(match precision {
        Precision::F32 => auth.freeze(),
        Precision::Int8 => {
            let calib: Vec<_> = ds
                .traces
                .iter()
                .flat_map(|t| t.snapshots.iter())
                .map(|fb| auth.tensorize(fb))
                .collect();
            FrozenAuthenticator::quantized(auth, &calib).expect("int8 quantization")
        }
    })
}

fn serve(
    frozen: &Arc<FrozenAuthenticator>,
    ds: &Dataset,
    precision: Precision,
    stage_timing: bool,
    trace: TraceConfig,
    profile: bool,
) -> EngineReport {
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            precision,
            backpressure: Backpressure::Block,
            stage_timing,
            trace,
            profile,
            ..EngineConfig::default()
        },
        Arc::clone(frozen),
        ReplaySource::registry(ds),
    );
    for frame in ReplaySource::from_dataset(ds).frames() {
        engine.ingest_frame(frame);
    }
    engine.shutdown()
}

/// One device's decision, flattened for comparison:
/// (source, verdict, decided module, observations, decided_at).
type DecisionRow = (String, String, Option<usize>, u64, Option<u64>);

/// Everything decision-shaped in a report, in comparable form.
fn decision_vector(report: &EngineReport) -> Vec<DecisionRow> {
    report
        .decisions
        .iter()
        .map(|d| {
            (
                d.source.to_string(),
                format!("{:?}", d.verdict),
                d.decision.as_ref().map(|w| w.module),
                d.decision.as_ref().map_or(0, |w| w.observations),
                d.decided_at,
            )
        })
        .collect()
}

#[test]
fn observability_does_not_change_verdicts_at_either_precision() {
    let ds = dataset(3, 20);
    let auth = authenticator(&ds, 3);
    for precision in [Precision::F32, Precision::Int8] {
        let model = frozen(&auth, &ds, precision);
        // Fully dark (no timestamps at all) vs everything on (every
        // batch traced, every layer profiled).
        let dark = serve(&model, &ds, precision, false, TraceConfig::default(), false);
        let lit = serve(&model, &ds, precision, true, TraceConfig::always(), true);
        assert_eq!(
            decision_vector(&dark),
            decision_vector(&lit),
            "{precision} verdicts changed when observability was enabled"
        );
        assert_eq!(dark.stats.classified, lit.stats.classified);
        // The dark run really was dark, and the lit run really did
        // observe: spans on one side only.
        assert!(dark.spans.is_empty() && dark.layer_profile.is_none());
        assert!(!lit.spans.is_empty() && lit.layer_profile.is_some());
    }
}

#[test]
fn spans_cover_every_stage_and_round_trip_through_chrome_json() {
    let ds = dataset(2, 15);
    let auth = authenticator(&ds, 2);
    let model = frozen(&auth, &ds, Precision::F32);
    let report = serve(
        &model,
        &ds,
        Precision::F32,
        true,
        TraceConfig::always(),
        false,
    );

    // With sample_every = 1 every pipeline stage must have fired.
    for stage in Stage::ALL {
        assert!(
            report.spans.iter().any(|s| s.name == stage.name()),
            "no {:?} span in {} spans",
            stage.name(),
            report.spans.len()
        );
    }
    // Spans arrive sorted and with sane extents.
    for pair in report.spans.windows(2) {
        assert!(pair[0].start_ns <= pair[1].start_ns, "spans not sorted");
    }

    // Chrome trace_event JSON round trip through the obs parser.
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, &report.spans).expect("write trace");
    let text = String::from_utf8(buf).expect("utf8 trace");
    let parsed = parse_chrome_trace(&text).expect("parse trace");
    assert_eq!(parsed.len(), report.spans.len());
    for (p, e) in parsed.iter().zip(&report.spans) {
        assert!(p.matches(e), "span {:?} did not round-trip", e.name);
    }
}

#[test]
fn metrics_artifacts_parse_cleanly_after_a_run() {
    let ds = dataset(2, 15);
    let auth = authenticator(&ds, 2);
    let model = frozen(&auth, &ds, Precision::F32);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        Arc::clone(&model),
        ReplaySource::registry(&ds),
    );
    let telemetry = engine.telemetry_handle();
    for frame in ReplaySource::from_dataset(&ds).frames() {
        engine.ingest_frame(frame);
    }
    engine.drain();

    let reg = telemetry.metrics();
    let text = reg.to_prometheus();
    let samples = parse_prometheus(&text).expect("prometheus text parses");
    assert!(!samples.is_empty());
    assert!(!text.contains("NaN"), "non-finite value leaked:\n{text}");
    let classified = samples
        .iter()
        .find(|s| s.name == "deepcsi_classified_total")
        .expect("classified counter exported");
    assert_eq!(classified.value as u64, telemetry.snapshot().classified);

    let line = reg.to_json_line();
    let json = JsonValue::parse(&line).expect("JSON line parses");
    assert_eq!(
        json.get("deepcsi_classified_total")
            .and_then(|v| v.as_f64()),
        Some(classified.value)
    );

    let report = engine.shutdown();
    assert_eq!(report.stats.classified, classified.value as u64);
}

#[test]
fn layer_profile_merges_every_worker_and_accounts_every_sample() {
    let ds = dataset(2, 15);
    let auth = authenticator(&ds, 2);
    let model = frozen(&auth, &ds, Precision::F32);
    let report = serve(
        &model,
        &ds,
        Precision::F32,
        true,
        TraceConfig::default(),
        true,
    );
    let ops = report.layer_profile.as_ref().expect("profile requested");
    assert!(!ops.is_empty());
    // Every op saw every classified sample exactly once, on every row.
    for op in ops {
        assert_eq!(
            op.samples, report.stats.classified,
            "op {} sample count diverges from classified",
            op.name
        );
        assert!(op.calls > 0 && op.bytes > 0);
    }
    assert_eq!(model.model().len(), ops.len());
}

#[test]
fn live_plane_is_a_pure_observer_at_both_precisions() {
    let ds = dataset(3, 20);
    let auth = authenticator(&ds, 3);
    for precision in [Precision::F32, Precision::Int8] {
        let model = frozen(&auth, &ds, precision);
        let dark = serve(&model, &ds, precision, false, TraceConfig::default(), false);

        // Everything on: audit trail, per-layer profiling, the scrape
        // plane — and live HTTP reads interleaved with ingest.
        let engine = Engine::start_frozen(
            EngineConfig {
                workers: 2,
                precision,
                backpressure: Backpressure::Block,
                profile: true,
                audit: Some(AuditConfig::default()),
                ..EngineConfig::default()
            },
            Arc::clone(&model),
            ReplaySource::registry(&ds),
        );
        let plane =
            ObsPlane::start(test_plane_config(SloConfig::default()), &engine).expect("bind plane");
        plane.set_ready(true);
        let addr = plane.local_addr().to_string();
        const ENDPOINTS: [&str; 6] = [
            "/metrics",
            "/stats.json",
            "/healthz",
            "/readyz",
            "/profile",
            "/audit/tail?n=10",
        ];
        for (i, frame) in ReplaySource::from_dataset(&ds).frames().enumerate() {
            engine.ingest_frame(frame);
            if i % 61 == 0 {
                // Rotate through every endpoint mid-flight; under load a
                // shed (503) is acceptable, an error or hang is not.
                let path = ENDPOINTS[(i / 61) % ENDPOINTS.len()];
                let (status, _) = http_get(&addr, path, SCRAPE_TIMEOUT).expect("mid-flight scrape");
                assert!(status == 200 || status == 503, "{path} answered {status}");
            }
        }
        engine.drain();
        plane.tick_now();

        // Settled: every endpoint answers 200 with a payload its own
        // parser accepts.
        for path in ENDPOINTS {
            let (status, body) = http_get(&addr, path, SCRAPE_TIMEOUT).expect("settled scrape");
            assert_eq!(status, 200, "{path} after drain:\n{body}");
            if path == "/metrics" {
                assert!(!parse_prometheus(&body)
                    .expect("prometheus parses")
                    .is_empty());
            } else if path.starts_with("/profile") || path.starts_with("/audit") {
                let v = JsonValue::parse(&body).unwrap_or_else(|e| panic!("{path}: {e}\n{body}"));
                assert!(
                    !v.as_array().expect("array payload").is_empty(),
                    "{path} empty"
                );
            } else {
                JsonValue::parse(&body).unwrap_or_else(|e| panic!("{path}: {e}\n{body}"));
            }
        }

        let report = engine.shutdown();
        plane.shutdown();
        assert_eq!(
            decision_vector(&dark),
            decision_vector(&report),
            "{precision} verdicts changed with the live plane attached"
        );
    }
}

#[test]
fn scraping_under_load_keeps_counters_consistent() {
    let ds = dataset(3, 20);
    let auth = authenticator(&ds, 3);
    let model = frozen(&auth, &ds, Precision::F32);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            audit: Some(AuditConfig::default()),
            ..EngineConfig::default()
        },
        Arc::clone(&model),
        ReplaySource::registry(&ds),
    );
    let plane =
        ObsPlane::start(test_plane_config(SloConfig::default()), &engine).expect("bind plane");
    plane.set_ready(true);
    let addr = plane.local_addr().to_string();

    // Two scraper threads hammer the plane for the whole replay.
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = ["/metrics", "/audit/tail?n=50"]
        .into_iter()
        .map(|path| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut last_classified = 0.0f64;
                while !stop.load(Ordering::Relaxed) {
                    match http_get(&addr, path, SCRAPE_TIMEOUT) {
                        Ok((200, body)) => {
                            served += 1;
                            if path == "/metrics" {
                                let samples =
                                    parse_prometheus(&body).expect("mid-load scrape parses");
                                let c = samples
                                    .iter()
                                    .find(|s| s.name == "deepcsi_classified_total")
                                    .expect("classified counter in every scrape")
                                    .value;
                                assert!(c >= last_classified, "classified went backwards");
                                last_classified = c;
                            } else {
                                JsonValue::parse(&body).expect("audit tail parses under load");
                            }
                        }
                        // Bounded server: shedding under load is in-contract.
                        Ok((503, _)) => {}
                        Ok((status, body)) => panic!("{path} answered {status}:\n{body}"),
                        Err(e) => panic!("{path} scrape failed: {e}"),
                    }
                }
                served
            })
        })
        .collect();

    for _ in 0..3 {
        for frame in ReplaySource::from_dataset(&ds).frames() {
            engine.ingest_frame(frame);
        }
    }
    engine.drain();
    stop.store(true, Ordering::Relaxed);
    for s in scrapers {
        let served = s.join().expect("scraper thread");
        assert!(served > 0, "a scraper never landed a 200");
    }

    // Settled scrape: the conservation laws hold exactly, and the scrape
    // is self-describing.
    let (status, body) = http_get(&addr, "/metrics", SCRAPE_TIMEOUT).expect("final scrape");
    assert_eq!(status, 200);
    let samples = parse_prometheus(&body).expect("final scrape parses");
    let get = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from scrape"))
            .value
    };
    assert_eq!(
        get("deepcsi_enqueued_total"),
        get("deepcsi_classified_total") + get("deepcsi_rejected_total"),
        "enqueued != classified + rejected at quiescence"
    );
    assert_eq!(
        get("deepcsi_ingested_total"),
        get("deepcsi_enqueued_total")
            + get("deepcsi_dropped_total")
            + get("deepcsi_decode_errors_total"),
        "ingest conservation broke"
    );
    assert!(get("deepcsi_uptime_seconds") > 0.0);
    assert_eq!(get("deepcsi_build_info"), 1.0);
    assert!(samples.iter().any(|s| s.name == "deepcsi_health_state"));

    let report = engine.shutdown();
    plane.shutdown();
    assert_eq!(
        get("deepcsi_audit_events_total") as u64,
        report.stats.verdicts_decided,
        "audit events != decided verdicts"
    );
    assert_eq!(
        get("deepcsi_classified_total") as u64,
        report.stats.classified
    );
}

#[test]
fn slo_breach_walks_ok_degraded_failing_and_healthz_follows() {
    let ds = dataset(2, 30);
    let auth = authenticator(&ds, 2);
    let model = frozen(&auth, &ds, Precision::F32);
    // A 1-slot DropNewest queue on a single worker: flooding it sheds
    // most of the replay, deterministically breaching the 5% drop SLO.
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 1,
            queue_capacity: 1,
            max_batch: 1,
            backpressure: Backpressure::DropNewest,
            ..EngineConfig::default()
        },
        Arc::clone(&model),
        ReplaySource::registry(&ds),
    );
    let plane = ObsPlane::start(
        test_plane_config(SloConfig {
            window: 4,
            failing_after: 2,
            ..SloConfig::default()
        }),
        &engine,
    )
    .expect("bind plane");
    plane.set_ready(true);
    let addr = plane.local_addr().to_string();

    // Quiet engine: healthy.
    assert_eq!(plane.tick_now().state, HealthState::Ok);

    for _ in 0..4 {
        for frame in ReplaySource::from_dataset(&ds).frames() {
            engine.ingest_frame(frame);
        }
    }
    engine.drain();
    let stats = engine.stats();
    assert!(
        stats.dropped as f64 > 0.05 * stats.ingested as f64,
        "flood did not shed enough to breach ({} of {})",
        stats.dropped,
        stats.ingested
    );

    // First breaching evaluation: ok → degraded, with a structured
    // breach event on the clean→breaching edge.
    let degraded = plane.tick_now();
    assert_eq!(degraded.state, HealthState::Degraded);
    assert!(degraded
        .rules
        .iter()
        .any(|r| r.rule == "drop_rate" && r.breaching));
    let breaches = plane.breaches();
    let breach = breaches
        .iter()
        .find(|b| b.rule == "drop_rate")
        .expect("drop_rate breach event");
    assert!(breach.value > breach.threshold);
    JsonValue::parse(&breach.to_json()).expect("breach event JSON parses");
    // Degraded still answers 200 — probes only fail the pod at failing.
    let (status, body) = http_get(&addr, "/healthz", SCRAPE_TIMEOUT).expect("healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"state\":\"degraded\""), "{body}");

    // Second consecutive breaching evaluation escalates to failing, and
    // /healthz flips to 503; /metrics mirrors the state as a gauge.
    assert_eq!(plane.tick_now().state, HealthState::Failing);
    let (status, body) = http_get(&addr, "/healthz", SCRAPE_TIMEOUT).expect("healthz");
    assert_eq!(status, 503);
    assert!(body.contains("\"state\":\"failing\""), "{body}");
    let (_, text) = http_get(&addr, "/metrics", SCRAPE_TIMEOUT).expect("metrics");
    assert!(parse_prometheus(&text)
        .expect("metrics parse")
        .iter()
        .any(|s| s.name == "deepcsi_health_state" && s.value == 2.0));

    // The sliding window forgets the burst: health recovers.
    let mut state = HealthState::Failing;
    for _ in 0..8 {
        state = plane.tick_now().state;
    }
    assert_eq!(state, HealthState::Ok);
    let (status, _) = http_get(&addr, "/healthz", SCRAPE_TIMEOUT).expect("healthz");
    assert_eq!(status, 200);

    plane.shutdown();
    engine.shutdown();
}

#[test]
fn audit_trail_records_exactly_one_event_per_decided_verdict() {
    let dir = std::env::temp_dir().join("deepcsi-obs-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("audit-{}.jsonl", std::process::id()));

    let ds = dataset(3, 20);
    let auth = authenticator(&ds, 3);
    let model = frozen(&auth, &ds, Precision::F32);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            audit: Some(AuditConfig {
                capacity: 64,
                file: Some(path.clone()),
            }),
            ..EngineConfig::default()
        },
        Arc::clone(&model),
        ReplaySource::registry(&ds),
    );
    let audit = engine.audit_handle().expect("audit enabled");
    for frame in ReplaySource::from_dataset(&ds).frames() {
        engine.ingest_frame(frame);
    }
    let report = engine.shutdown(); // flushes the audit writer

    let decided = report
        .decisions
        .iter()
        .filter(|d| d.decided_at.is_some())
        .count() as u64;
    assert!(decided > 0, "replay must decide at least one stream");
    assert_eq!(report.stats.verdicts_decided, decided);
    assert_eq!(
        audit.appended(),
        decided,
        "exactly one audit event per decided verdict"
    );
    assert_eq!(audit.write_errors(), 0);

    // Ring tail: sequential, complete, and parseable.
    let tail = audit.tail(1_000);
    assert_eq!(tail.len(), decided as usize);
    for (i, ev) in tail.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "audit sequence has gaps");
        let v = JsonValue::parse(&ev.to_json()).expect("event JSON parses");
        let verdict = v.get("verdict").and_then(|x| x.as_str()).unwrap();
        assert!(
            verdict == "accept" || verdict == "reject",
            "decisive verdict expected, got {verdict}"
        );
        assert_eq!(v.get("policy").and_then(|x| x.as_str()), Some("fixed"));
        assert_eq!(v.get("precision").and_then(|x| x.as_str()), Some("f32"));
        assert!(v.get("reports_to_verdict").unwrap().as_f64().unwrap() >= 1.0);
    }

    // The JSONL file mirrors the ring line-for-line.
    let text = std::fs::read_to_string(&path).expect("audit file written");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), decided as usize);
    for line in &lines {
        JsonValue::parse(line).expect("audit file line parses");
    }
    std::fs::remove_file(&path).ok();
}
