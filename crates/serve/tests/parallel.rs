//! Thread-parallel inference integration tests: `infer_threads` may
//! change throughput, never a verdict.
//!
//! The frozen model's lane split is bit-exact (pinned at the nn layer by
//! proptests), so an engine run at any `infer_threads` must produce
//! *identical* per-device decisions — same verdicts, same windowed
//! evidence, same reports-to-verdict latency. These tests pin that end
//! to end through the engine, including the crafted policy scenarios
//! from the decision-policy test suite re-run at `infer_threads > 1`.

use std::sync::Arc;

use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, generate_d1, D1Set, Dataset, GenConfig, InputSpec};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_impair::DeviceId;
use deepcsi_nn::{Dense, Flatten, Network, Tensor, TrainConfig};
use deepcsi_phy::{Codebook, MimoConfig};
use deepcsi_serve::{
    Backpressure, BatchFormer, DecisionPolicyConfig, DeviceRegistry, Engine, EngineConfig,
    EngineReport, PolicyKind, Precision, ReplaySource, Verdict,
};

fn spec() -> InputSpec {
    InputSpec {
        stride: 4,
        ..InputSpec::default()
    }
}

fn trained_authenticator(ds: &Dataset, modules: usize) -> Authenticator {
    let spec = spec();
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let cfg = ExperimentConfig {
        model: ModelConfig::demo(modules),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let result = run_experiment(&cfg, &split);
    assert!(result.accuracy > 0.8, "model too weak for verdict tests");
    Authenticator::new(result.network, spec)
}

fn config(kind: PolicyKind, infer_threads: usize) -> EngineConfig {
    EngineConfig {
        workers: 2,
        infer_threads,
        backpressure: Backpressure::Block,
        decision: DecisionPolicyConfig {
            kind,
            ..DecisionPolicyConfig::default()
        },
        ..EngineConfig::default()
    }
}

/// Replays `frames` through one engine sharing `frozen`, returning the
/// final report.
fn serve_frozen(
    kind: PolicyKind,
    infer_threads: usize,
    frozen: &Arc<deepcsi_core::FrozenAuthenticator>,
    registry: DeviceRegistry,
    frames: &[Vec<u8>],
) -> EngineReport {
    let engine = Engine::start_frozen(config(kind, infer_threads), Arc::clone(frozen), registry);
    for frame in frames {
        engine.ingest_frame(frame);
    }
    engine.shutdown()
}

/// The core invariance: one frozen snapshot served at
/// `infer_threads ∈ {1, 2, 4}` yields byte-for-byte identical decisions
/// — verdicts, windowed evidence and decision latency all match the
/// single-threaded run, while every report still classifies.
#[test]
fn infer_threads_never_change_a_decision() {
    let ds = generate_d1(&GenConfig {
        num_modules: 3,
        snapshots_per_trace: 40,
        ..GenConfig::default()
    });
    let auth = trained_authenticator(&ds, 3);
    // One Arc shared by all three engines — no weight copy anywhere.
    let frozen = Arc::new(auth.freeze());
    let frames: Vec<Vec<u8>> = ReplaySource::from_dataset(&ds)
        .frames()
        .map(<[u8]>::to_vec)
        .collect();
    let registry = ReplaySource::registry(&ds);

    let baseline = serve_frozen(
        PolicyKind::FixedMajority,
        1,
        &frozen,
        registry.clone(),
        &frames,
    );
    assert_eq!(baseline.stats.classified as usize, frames.len());
    assert!(
        baseline
            .decisions
            .iter()
            .all(|d| d.verdict == Verdict::Accept),
        "clean capture must accept every registered stream"
    );

    for threads in [2usize, 4] {
        let report = serve_frozen(
            PolicyKind::FixedMajority,
            threads,
            &frozen,
            registry.clone(),
            &frames,
        );
        assert_eq!(report.stats.classified as usize, frames.len());
        assert_eq!(report.stats.rejected, 0);
        assert_eq!(
            baseline.decisions, report.decisions,
            "decisions diverged at infer_threads={threads}"
        );
    }
}

/// A hand-built 3×2 feedback whose six quantized angles are set per
/// "device", over 16 subcarriers (mirrors the decision-policy suite).
fn crafted_feedback(q_phi: [u16; 3], q_psi: [u16; 3]) -> BeamformingFeedback {
    let subcarriers: Vec<i32> = (0..16).collect();
    BeamformingFeedback {
        mimo: MimoConfig::new(3, 2, 2).expect("valid"),
        codebook: Codebook::MU_HIGH,
        angles: vec![
            QuantizedAngles {
                m: 3,
                n_ss: 2,
                q_phi: q_phi.to_vec(),
                q_psi: q_psi.to_vec(),
            };
            subcarriers.len()
        ],
        subcarriers,
    }
}

fn frame_for(source: MacAddr, seq: u16, fb: BeamformingFeedback) -> Vec<u8> {
    let monitor = MacAddr::station(0xAC_CE55);
    BeamformingReportFrame::new(monitor, source, monitor, seq, fb).encode()
}

/// A Flatten+Dense classifier with hand-set weights giving exact logits
/// per stream phase (same construction as the decision-policy suite):
/// class 0 hits `logit_genuine` on the genuine tensor and
/// `logit_impostor` on the impostor tensor, classes 1–2 stay at 0.
fn crafted_authenticator(
    spec: &InputSpec,
    genuine: &BeamformingFeedback,
    impostor: &BeamformingFeedback,
    logit_genuine: f64,
    logit_impostor: f64,
) -> Authenticator {
    let t_a: Tensor = spec.tensor(genuine);
    let t_b: Tensor = spec.tensor(impostor);
    let (a, b) = (t_a.as_slice(), t_b.as_slice());
    assert_eq!(a.len(), b.len());
    let dot = |x: &[f32], y: &[f32]| -> f64 {
        x.iter()
            .zip(y)
            .map(|(&p, &q)| f64::from(p) * f64::from(q))
            .sum()
    };
    let (gaa, gab, gbb) = (dot(a, a), dot(a, b), dot(b, b));
    let det = gaa * gbb - gab * gab;
    assert!(det.abs() > 1e-9, "crafted tensors are linearly dependent");
    let alpha = (logit_genuine * gbb - logit_impostor * gab) / det;
    let beta = (logit_impostor * gaa - logit_genuine * gab) / det;

    let mut net = Network::new();
    net.push(Flatten::new());
    net.push(Dense::new(a.len(), 3, 1));
    for view in net.params() {
        for w in view.w.iter_mut() {
            *w = 0.0;
        }
        if view.w.len() == a.len() * 3 {
            for (j, w) in view.w[..a.len()].iter_mut().enumerate() {
                *w = (alpha * f64::from(a[j]) + beta * f64::from(b[j])) as f32;
            }
        }
    }
    Authenticator::new(net, spec.clone())
}

/// The decision-policy suite's takeover scenario, re-run with
/// `infer_threads = 2`: an impostor presents the *right* module at
/// collapsed confidence. The verdicts must match the policy tests
/// exactly — `FixedMajority` accepts, `AdaptiveThreshold` flags — no
/// matter how the micro-batches were split across inference threads.
#[test]
fn policy_verdicts_are_identical_at_two_infer_threads() {
    let spec = InputSpec::default();
    let genuine_fb = crafted_feedback([100, 200, 300], [40, 60, 80]);
    let impostor_fb = crafted_feedback([350, 50, 120], [20, 90, 35]);
    // softmax(6, 0, 0) ≈ 0.995 confidence genuine, softmax(1.5, 0, 0)
    // ≈ 0.69 impostor — same winning class.
    let auth = crafted_authenticator(&spec, &genuine_fb, &impostor_fb, 6.0, 1.5);
    let frozen = Arc::new(auth.freeze());

    let victim = MacAddr::station(0x715);
    let mut registry = DeviceRegistry::new();
    registry.register(victim, DeviceId(0));

    let mut frames: Vec<Vec<u8>> = Vec::new();
    for k in 0..40u16 {
        frames.push(frame_for(victim, k, genuine_fb.clone()));
    }
    for k in 40..80u16 {
        frames.push(frame_for(victim, k, impostor_fb.clone()));
    }

    for threads in [2usize, 4] {
        let fixed = serve_frozen(
            PolicyKind::FixedMajority,
            threads,
            &frozen,
            registry.clone(),
            &frames,
        );
        let adaptive = serve_frozen(
            PolicyKind::AdaptiveThreshold,
            threads,
            &frozen,
            registry.clone(),
            &frames,
        );
        for r in [&fixed, &adaptive] {
            assert_eq!(r.stats.classified, frames.len() as u64);
            assert_eq!(r.decisions.len(), 1);
            let d = r.decisions[0].decision.expect("stream has evidence");
            assert_eq!(d.module, 0, "impostor must present the right module");
            assert_eq!(d.observations, frames.len() as u64);
        }
        // Same outcome the single-threaded policy tests pin: the fixed
        // majority passes the impostor, the adaptive floor flags it.
        assert_eq!(fixed.decisions[0].verdict, Verdict::Accept);
        assert_eq!(adaptive.decisions[0].verdict, Verdict::Reject);
        let decided_at = adaptive.decisions[0].decided_at.expect("decided");
        assert!(decided_at <= 40, "decided during the genuine phase");
    }
}

/// `Engine::start` (by-value) and `Engine::start_frozen` over the same
/// weights agree completely — the compatibility wrapper is the same
/// engine, minus the caller-held `Arc`.
#[test]
fn start_and_start_frozen_agree() {
    let ds = generate_d1(&GenConfig {
        num_modules: 2,
        snapshots_per_trace: 12,
        ..GenConfig::default()
    });
    let auth = trained_authenticator(&ds, 2);
    let frames: Vec<Vec<u8>> = ReplaySource::from_dataset(&ds)
        .frames()
        .map(<[u8]>::to_vec)
        .collect();
    let registry = ReplaySource::registry(&ds);

    let by_value = {
        let engine = Engine::start(
            config(PolicyKind::FixedMajority, 1),
            auth.clone(),
            registry.clone(),
        );
        for frame in &frames {
            engine.ingest_frame(frame);
        }
        engine.shutdown()
    };
    let frozen = Arc::new(auth.freeze());
    let shared = serve_frozen(PolicyKind::FixedMajority, 2, &frozen, registry, &frames);
    assert_eq!(by_value.decisions, shared.decisions);
}

/// Replays `frames` with an explicit batch-former mode and precision.
fn serve_formed(
    former: BatchFormer,
    precision: Precision,
    frozen: &Arc<deepcsi_core::FrozenAuthenticator>,
    registry: DeviceRegistry,
    frames: &[Vec<u8>],
) -> EngineReport {
    let engine = Engine::start_frozen(
        EngineConfig {
            former,
            precision,
            ..config(PolicyKind::FixedMajority, 2)
        },
        Arc::clone(frozen),
        registry,
    );
    for frame in frames {
        engine.ingest_frame(frame);
    }
    engine.shutdown()
}

/// Batch formation changes departure timing, never a decision: the same
/// capture served with the fixed former and with the adaptive former
/// (which moves its target across the whole 1..=max_batch range)
/// produces identical decision vectors — at f32 AND int8, through the
/// pooled multi-lane path.
#[test]
fn former_mode_never_changes_a_decision() {
    let ds = generate_d1(&GenConfig {
        num_modules: 2,
        snapshots_per_trace: 24,
        ..GenConfig::default()
    });
    let auth = trained_authenticator(&ds, 2);
    let calib: Vec<Tensor> = ds
        .traces
        .iter()
        .flat_map(|t| t.snapshots.iter())
        .map(|fb| auth.tensorize(fb))
        .collect();
    let snapshots = [
        (Precision::F32, Arc::new(auth.freeze())),
        (
            Precision::Int8,
            Arc::new(
                deepcsi_core::FrozenAuthenticator::quantized(&auth, &calib)
                    .expect("int8 quantization"),
            ),
        ),
    ];
    let frames: Vec<Vec<u8>> = ReplaySource::from_dataset(&ds)
        .frames()
        .map(<[u8]>::to_vec)
        .collect();
    let registry = ReplaySource::registry(&ds);

    for (precision, frozen) in &snapshots {
        let fixed = serve_formed(
            BatchFormer::Fixed,
            *precision,
            frozen,
            registry.clone(),
            &frames,
        );
        assert_eq!(fixed.stats.classified as usize, frames.len());
        let adaptive = serve_formed(
            BatchFormer::adaptive(),
            *precision,
            frozen,
            registry.clone(),
            &frames,
        );
        assert_eq!(adaptive.stats.classified as usize, frames.len());
        assert_eq!(
            fixed.decisions, adaptive.decisions,
            "decisions diverged between formers at {precision:?}"
        );
    }
}
