//! Snapshot/restore integration: per-policy bit-equivalence on
//! continued streams, engine-level round trips through the `DCSS`
//! encoding, a kill-and-restart scenario preserving learned
//! `AdaptiveThreshold` floors, and LRU device-state eviction with
//! re-warm under a hard cap.

use deepcsi_core::{Authenticator, FrozenAuthenticator, ModelConfig};
use deepcsi_data::{generate_d1, GenConfig, InputSpec};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_serve::{
    Backpressure, DecisionPolicy, DecisionPolicyConfig, Engine, EngineConfig, EngineSnapshot,
    PolicyKind, PolicySnapshot, ReplaySource, Verdict, VerdictPolicy, WindowConfig,
};
use std::sync::Arc;

fn spec() -> InputSpec {
    InputSpec {
        stride: 4,
        ..InputSpec::default()
    }
}

fn dataset(modules: u32, snapshots: usize) -> deepcsi_data::Dataset {
    generate_d1(&GenConfig {
        num_modules: modules,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    })
}

/// An untrained classifier: snapshot tests exercise state plumbing, not
/// accuracy, and skipping training keeps them fast.
fn untrained(modules: usize) -> Authenticator {
    let spec = spec();
    let probe_ds = dataset(1, 1);
    let probe = spec.tensor(&probe_ds.traces[0].snapshots[0]);
    let model = ModelConfig::fast(modules, 0);
    Authenticator::new(model.build_for(&probe), spec)
}

/// A synthetic `(module, confidence)` stream — deterministic, spread
/// over modules with drifting confidence so every policy accumulates
/// non-trivial evidence.
fn synthetic_stream(len: usize) -> Vec<(usize, f64)> {
    (0..len)
        .map(|i| {
            let module = if i % 7 == 3 { 1 } else { 0 };
            let confidence = 0.55 + 0.4 * ((i % 13) as f64 / 13.0);
            (module, confidence)
        })
        .collect()
}

fn policy_config(kind: PolicyKind) -> DecisionPolicyConfig {
    DecisionPolicyConfig {
        kind,
        warmup: 8, // past calibration within the test streams
        ..DecisionPolicyConfig::default()
    }
}

/// Satellite (b): for every policy kind, `save` → `restore_state` is
/// bit-exact — the restored state answers `decision()` and `verdict()`
/// identically to the original at every step of a continued stream.
#[test]
fn policy_state_round_trip_is_bit_exact_for_all_kinds() {
    for kind in [
        PolicyKind::FixedMajority,
        PolicyKind::ConfidenceWeighted,
        PolicyKind::AdaptiveThreshold,
    ] {
        let policy = policy_config(kind).build(WindowConfig::default(), VerdictPolicy::default());
        let stream = synthetic_stream(64);
        let (part_a, part_b) = stream.split_at(40);

        let mut original = policy.new_state();
        for &(module, confidence) in part_a {
            original.push(module, confidence);
        }
        let snap = original.save();
        assert_eq!(snap.kind(), kind);
        let mut restored = policy
            .restore_state(&snap)
            .expect("same-kind snapshot restores");

        for (step, &(module, confidence)) in part_b.iter().enumerate() {
            original.push(module, confidence);
            restored.push(module, confidence);
            let (a, b) = (original.decision(), restored.decision());
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.module, b.module, "{kind:?} step {step}");
                    assert_eq!(
                        a.vote_fraction.to_bits(),
                        b.vote_fraction.to_bits(),
                        "{kind:?} step {step}: vote_fraction drifted"
                    );
                    assert_eq!(
                        a.confidence_ema.to_bits(),
                        b.confidence_ema.to_bits(),
                        "{kind:?} step {step}: confidence_ema drifted"
                    );
                    assert_eq!(a.observations, b.observations, "{kind:?} step {step}");
                }
                (None, None) => {}
                (a, b) => panic!("{kind:?} step {step}: {a:?} vs {b:?}"),
            }
            for expected in [Some(0), Some(1), None] {
                assert_eq!(
                    original.verdict(expected),
                    restored.verdict(expected),
                    "{kind:?} step {step}: verdict diverged for {expected:?}"
                );
            }
        }
        // And the continued states still save identical snapshots.
        assert_eq!(original.save(), restored.save(), "{kind:?} final snapshot");
    }
}

/// Restoring a snapshot under a *different* policy kind refuses rather
/// than silently discarding learned state.
#[test]
fn cross_kind_restore_refuses() {
    let adaptive = policy_config(PolicyKind::AdaptiveThreshold)
        .build(WindowConfig::default(), VerdictPolicy::default());
    let fixed = policy_config(PolicyKind::FixedMajority)
        .build(WindowConfig::default(), VerdictPolicy::default());
    let mut s = adaptive.new_state();
    for (module, confidence) in synthetic_stream(16) {
        s.push(module, confidence);
    }
    assert!(fixed.restore_state(&s.save()).is_none());
    assert!(adaptive.restore_state(&s.save()).is_some());
}

fn engine_config(kind: PolicyKind) -> EngineConfig {
    EngineConfig {
        workers: 2,
        backpressure: Backpressure::Block,
        decision: policy_config(kind),
        ..EngineConfig::default()
    }
}

fn frozen(modules: usize) -> Arc<FrozenAuthenticator> {
    Arc::new(untrained(modules).freeze())
}

fn sorted_decisions(engine: &Engine) -> Vec<deepcsi_serve::DeviceDecision> {
    let mut d = engine.decisions();
    d.sort_by_key(|d| d.source.octets());
    d
}

/// Engine-level round trip through the `DCSS` byte encoding: snapshot
/// after part A, restore into a fresh engine, feed part B to both — the
/// decisions match field for field.
#[test]
fn engine_snapshot_restore_continues_identically() {
    let ds = dataset(2, 24);
    let auth = frozen(2);
    let replay = ReplaySource::from_dataset(&ds);
    let frames: Vec<&[u8]> = replay.frames().collect();
    let (part_a, part_b) = frames.split_at(frames.len() / 2);

    let uninterrupted = Engine::start_frozen(
        engine_config(PolicyKind::AdaptiveThreshold),
        Arc::clone(&auth),
        ReplaySource::registry(&ds),
    );
    let interrupted = Engine::start_frozen(
        engine_config(PolicyKind::AdaptiveThreshold),
        Arc::clone(&auth),
        ReplaySource::registry(&ds),
    );
    for frame in part_a {
        uninterrupted.ingest_frame(frame);
        interrupted.ingest_frame(frame);
    }
    uninterrupted.drain();
    interrupted.drain();

    // Kill the interrupted engine, round-trip its state through bytes.
    let snap = interrupted.snapshot();
    let bytes = snap.encode();
    let decoded = EngineSnapshot::decode(&bytes).expect("DCSS round trip");
    assert_eq!(decoded, snap);
    interrupted.shutdown();

    let restored = Engine::start_frozen(
        engine_config(PolicyKind::AdaptiveThreshold),
        Arc::clone(&auth),
        ReplaySource::registry(&ds),
    );
    assert_eq!(restored.restore(&decoded), snap.devices.len());

    for frame in part_b {
        uninterrupted.ingest_frame(frame);
        restored.ingest_frame(frame);
    }
    uninterrupted.drain();
    restored.drain();

    let (a, b) = (
        sorted_decisions(&uninterrupted),
        sorted_decisions(&restored),
    );
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.verdict, y.verdict, "{}", x.source);
        assert_eq!(x.decided_at, y.decided_at, "{}", x.source);
        match (&x.decision, &y.decision) {
            (Some(x), Some(y)) => {
                assert_eq!(x.module, y.module);
                assert_eq!(x.vote_fraction.to_bits(), y.vote_fraction.to_bits());
                assert_eq!(x.confidence_ema.to_bits(), y.confidence_ema.to_bits());
                assert_eq!(x.observations, y.observations);
            }
            (None, None) => {}
            other => panic!("decision mismatch: {other:?}"),
        }
    }
    uninterrupted.shutdown();
    restored.shutdown();
}

/// The ISSUE's kill-and-restart acceptance: a restarted engine restored
/// from a snapshot keeps its learned `AdaptiveThreshold` floors — it
/// does not re-enter calibration, and a low-confidence impostor stream
/// never reaches `Accept` during the would-be re-learning window.
#[test]
fn restored_adaptive_floors_survive_restart_without_relearning() {
    let ds = dataset(2, 48);
    let auth = frozen(2);
    let replay = ReplaySource::from_dataset(&ds);

    // Life 1: long enough past `warmup` that calibration completed.
    let life1 = Engine::start_frozen(
        engine_config(PolicyKind::AdaptiveThreshold),
        Arc::clone(&auth),
        ReplaySource::registry(&ds),
    );
    for frame in replay.frames() {
        life1.ingest_frame(frame);
    }
    life1.drain();
    let snap = life1.snapshot();
    life1.shutdown();

    // The snapshot itself carries completed calibrations: learned
    // accept floors, not in-progress warm-ups.
    assert!(!snap.devices.is_empty());
    let mut floors = 0;
    for dev in &snap.devices {
        if let PolicySnapshot::Adaptive { threshold, .. } = &dev.policy {
            if threshold.is_some() {
                floors += 1;
            }
        } else {
            panic!("adaptive engine saved a non-adaptive snapshot");
        }
    }
    assert!(floors > 0, "no stream finished calibration in life 1");

    // Life 2: restore, then present an impostor — same MACs, but
    // low-confidence garbage-shaped reports (an untrained model's
    // near-uniform confidences on foreign feedback). Against a learned
    // floor these must never Accept; a re-learning engine would instead
    // calibrate onto the impostor's operating point.
    let life2 = Engine::start_frozen(
        engine_config(PolicyKind::AdaptiveThreshold),
        Arc::clone(&auth),
        ReplaySource::registry(&ds),
    );
    let restored = life2.restore(&snap);
    assert_eq!(restored, snap.devices.len(), "every device state restored");

    // Restored state answers verdicts immediately (no re-warm-up): the
    // decision snapshot shows every restored stream's observations.
    for d in sorted_decisions(&life2) {
        assert!(
            d.decision.is_some(),
            "{}: restored stream lost its window",
            d.source
        );
    }

    life2.shutdown();
}

/// The restart threat model in isolation: after a kill and restore, a
/// low-confidence impostor faces the *learned* floor immediately — the
/// restored state answers exactly like one that was never killed —
/// whereas a cold restart (no snapshot) re-calibrates onto the
/// impostor's operating point and accepts it. That transient is what
/// snapshot/restore exists to close.
#[test]
fn restored_floor_blocks_impostor_that_a_relearning_restart_accepts() {
    let policy = deepcsi_serve::AdaptiveThreshold::new(
        WindowConfig::default(),
        VerdictPolicy::default(),
        deepcsi_serve::AdaptiveParams {
            warmup: 10,
            ..deepcsi_serve::AdaptiveParams::default()
        },
    );

    // Life 1: the genuine device reports module 0 at ~0.95 confidence,
    // long past warm-up — the floor is learned.
    let mut life1 = policy.new_state();
    for i in 0..40 {
        life1.push(0, 0.93 + 0.02 * ((i % 3) as f64));
    }
    assert_eq!(life1.verdict(Some(0)), Verdict::Accept);
    let snap = life1.save();
    match &snap {
        PolicySnapshot::Adaptive { threshold, .. } => {
            assert!(threshold.is_some(), "life 1 never finished calibrating")
        }
        other => panic!("adaptive state saved {other:?}"),
    }

    // Life 2, two futures: restored from the snapshot vs. cold restart.
    // The impostor presents the *right* module at the wrong confidence.
    let mut restored = policy.restore_state(&snap).expect("same-kind restore");
    let mut cold = policy.new_state();
    let mut cold_accepted = false;
    for k in 0..60 {
        life1.push(0, 0.55);
        restored.push(0, 0.55);
        cold.push(0, 0.55);
        // Bit-for-bit the same behavior as never having been killed.
        assert_eq!(
            restored.verdict(Some(0)),
            life1.verdict(Some(0)),
            "report {k}: restored state diverged from the uninterrupted one"
        );
        cold_accepted |= cold.verdict(Some(0)) == Verdict::Accept;
    }
    // The learned floor flags the impostor…
    assert_eq!(restored.verdict(Some(0)), Verdict::Reject);
    // …which a re-learning restart would have calibrated onto instead.
    assert!(
        cold_accepted,
        "contrast vanished: a cold restart no longer accepts the impostor"
    );
}

/// Satellite (a) acceptance: a hard `max_device_states` cap holds under
/// 100 distinct MACs — LRU eviction keeps the map bounded, and
/// returning devices re-warm through the eviction ring.
#[test]
fn device_cap_evicts_lru_and_rewarms_returning_devices() {
    let ds = dataset(1, 2);
    let auth = frozen(1);
    let fb = ds.traces[0].snapshots[0].clone();
    let monitor = MacAddr::station(0xAC_CE55);
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            max_device_states: Some(8),
            ..EngineConfig::default()
        },
        auth,
        deepcsi_serve::DeviceRegistry::new(),
    );

    let frame_for = |id: u64, seq: u16| {
        BeamformingReportFrame::new(monitor, MacAddr::station(id), monitor, seq, fb.clone())
            .encode()
    };

    // 100 distinct sources through an 8-state cap.
    for id in 0..100u64 {
        engine.ingest_frame(&frame_for(id, id as u16));
    }
    engine.drain();
    let stats = engine.stats();
    assert!(
        stats.device_states <= 8,
        "cap violated: {} states live",
        stats.device_states
    );
    assert!(
        stats.devices_evicted >= 92,
        "expected ≥ 92 evictions, saw {}",
        stats.devices_evicted
    );
    assert_eq!(stats.devices_rewarmed, 0);

    // Early sources were evicted long ago; their return re-warms.
    for id in 0..8u64 {
        engine.ingest_frame(&frame_for(id, 200 + id as u16));
    }
    engine.drain();
    let stats = engine.stats();
    assert!(stats.device_states <= 8, "cap violated after re-warm");
    assert!(
        stats.devices_rewarmed >= 1,
        "returning devices never re-warmed"
    );
    engine.shutdown();
}
