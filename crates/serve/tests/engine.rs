//! End-to-end tests of the streaming authentication engine: synthetic
//! multi-device captures replayed through sharded ingest, micro-batched
//! inference and windowed verdicts.

use deepcsi_core::{run_experiment, Authenticator, ExperimentConfig, ModelConfig};
use deepcsi_data::{d1_split, generate_d1, D1Set, GenConfig, InputSpec};
use deepcsi_frame::MacAddr;
use deepcsi_nn::TrainConfig;
use deepcsi_serve::{
    Backpressure, Engine, EngineConfig, IngestOutcome, ReplaySource, Verdict, VerdictPolicy,
    WindowConfig,
};

fn spec() -> InputSpec {
    InputSpec {
        stride: 4, // narrow inputs keep the tests fast
        ..InputSpec::default()
    }
}

fn dataset(modules: u32, snapshots: usize) -> deepcsi_data::Dataset {
    generate_d1(&GenConfig {
        num_modules: modules,
        snapshots_per_trace: snapshots,
        ..GenConfig::default()
    })
}

/// Trains a small-but-accurate classifier the way
/// `tests/pipeline_integration.rs` does.
fn trained_authenticator(ds: &deepcsi_data::Dataset, modules: usize) -> Authenticator {
    let spec = spec();
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let model = ModelConfig::demo(modules);
    let cfg = ExperimentConfig {
        model: model.clone(),
        train: TrainConfig {
            epochs: 6,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let result = run_experiment(&cfg, &split);
    assert!(
        result.accuracy > 0.8,
        "per-sample accuracy only {:.2}% — windowed test needs a usable model",
        result.accuracy * 100.0
    );
    Authenticator::new(result.network, spec)
}

/// An untrained classifier (for plumbing tests that don't need accuracy).
fn untrained_authenticator(modules: usize) -> Authenticator {
    let spec = spec();
    let probe_ds = dataset(1, 1);
    let probe = spec.tensor(&probe_ds.traces[0].snapshots[0]);
    let model = ModelConfig::fast(modules, 0);
    Authenticator::new(model.build_for(&probe), spec)
}

/// The acceptance-criterion scenario: replaying a synthetic multi-device
/// capture yields a correct (Accept, right module) verdict for every
/// registered beamformee stream.
#[test]
fn replay_yields_correct_verdict_per_registered_device() {
    let ds = dataset(3, 40);
    let auth = trained_authenticator(&ds, 3);
    let replay = ReplaySource::from_dataset(&ds);
    let registry = ReplaySource::registry(&ds);
    // One stream per (module, beamformee) pair.
    assert_eq!(registry.len(), 6);

    let engine = Engine::start(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block, // lossless replay
            window: WindowConfig {
                len: 25,
                ema_alpha: 0.2,
            },
            policy: VerdictPolicy {
                min_observations: 10,
                min_vote_fraction: 0.6,
            },
            ..EngineConfig::default()
        },
        auth,
        registry.clone(),
    );
    for frame in replay.frames() {
        assert_eq!(engine.ingest_frame(frame), IngestOutcome::Enqueued);
    }
    let report = engine.shutdown();

    assert_eq!(report.stats.ingested as usize, replay.len());
    assert_eq!(report.stats.classified as usize, replay.len());
    assert_eq!(report.stats.decode_errors, 0);
    assert_eq!(report.stats.dropped, 0);
    assert!(report.stats.batches > 0);
    assert!(
        report.stats.mean_batch > 1.0,
        "micro-batching never batched (mean {:.2})",
        report.stats.mean_batch
    );
    assert!(report.stats.batch_latency_p50.is_some());
    assert!(report.stats.batch_latency_p99 >= report.stats.batch_latency_p50);

    assert_eq!(report.decisions.len(), registry.len());
    for d in &report.decisions {
        let expected = registry.expected(d.source).expect("registered");
        let decision = d.decision.expect("every stream produced reports");
        assert_eq!(
            d.verdict,
            Verdict::Accept,
            "{}: expected module {} but windowed decision was {:?}",
            d.source,
            expected,
            decision
        );
        assert_eq!(decision.module, expected.0 as usize);
        assert!(decision.vote_fraction >= 0.6);
        assert!(decision.confidence_ema > 0.0 && decision.confidence_ema <= 1.0);
    }
}

/// Garbage bytes are counted as decode errors, never classified, and an
/// unregistered-but-valid stream reports `Unknown`.
#[test]
fn decode_errors_and_unknown_sources_are_accounted() {
    let ds = dataset(2, 6);
    let engine = Engine::start(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        untrained_authenticator(2),
        deepcsi_serve::DeviceRegistry::new(), // nothing registered
    );
    assert_eq!(engine.ingest_frame(&[0u8; 7]), IngestOutcome::DecodeError);
    assert_eq!(
        engine.ingest_frame(b"not a frame"),
        IngestOutcome::DecodeError
    );
    let replay = ReplaySource::from_dataset(&ds);
    for frame in replay.frames() {
        engine.ingest_frame(frame);
    }
    let report = engine.shutdown();
    assert_eq!(report.stats.decode_errors, 2);
    assert_eq!(report.stats.classified as usize, replay.len());
    assert!(!report.decisions.is_empty());
    for d in &report.decisions {
        assert_eq!(d.verdict, Verdict::Unknown, "{}", d.source);
        assert!(d.decision.is_some());
    }
}

/// With a tiny bounded queue and drop-newest backpressure, flooding the
/// engine must shed load and account every dropped report.
#[test]
fn backpressure_drops_are_accounted() {
    let ds = dataset(1, 200);
    let replay = ReplaySource::from_dataset(&ds);
    let engine = Engine::start(
        EngineConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 2,
            backpressure: Backpressure::DropNewest,
            ..EngineConfig::default()
        },
        untrained_authenticator(2),
        ReplaySource::registry(&ds),
    );
    let mut dropped = 0usize;
    for frame in replay.frames() {
        if engine.ingest_frame(frame) == IngestOutcome::Dropped {
            dropped += 1;
        }
    }
    let report = engine.shutdown();
    assert!(dropped > 0, "flooding a 2-deep queue should shed load");
    assert_eq!(report.stats.dropped as usize, dropped);
    assert_eq!(
        report.stats.enqueued + report.stats.dropped,
        report.stats.ingested
    );
    assert_eq!(report.stats.classified, report.stats.enqueued);
}

/// Registered devices that never reported still appear, as `Unknown`.
#[test]
fn silent_registered_devices_report_unknown() {
    let mut registry = deepcsi_serve::DeviceRegistry::new();
    registry.register(MacAddr::station(0xBEEF), deepcsi_impair::DeviceId(0));
    let engine = Engine::start(
        EngineConfig::default(),
        untrained_authenticator(2),
        registry,
    );
    let report = engine.shutdown();
    assert_eq!(report.decisions.len(), 1);
    assert_eq!(report.decisions[0].source, MacAddr::station(0xBEEF));
    assert_eq!(report.decisions[0].verdict, Verdict::Unknown);
    assert!(report.decisions[0].decision.is_none());
}

/// A frame that *decodes* fine but carries MIMO dimensions the model was
/// never trained on must be rejected and accounted — not allowed to
/// panic a worker and wedge `drain()`/`shutdown()`.
#[test]
fn incompatible_mimo_dimensions_are_rejected_not_fatal() {
    use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
    use deepcsi_frame::BeamformingReportFrame;
    use deepcsi_phy::{Codebook, MimoConfig};

    let ds = dataset(2, 6);
    let engine = Engine::start(
        EngineConfig {
            workers: 2,
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        untrained_authenticator(2),
        ReplaySource::registry(&ds),
    );

    // A 2×1 feedback while the model expects 3×2 inputs.
    let foreign = BeamformingFeedback {
        mimo: MimoConfig::new(2, 1, 1).expect("valid"),
        codebook: Codebook::MU_HIGH,
        subcarriers: vec![0, 1],
        angles: vec![
            QuantizedAngles {
                m: 2,
                n_ss: 1,
                q_phi: vec![1],
                q_psi: vec![2],
            };
            2
        ],
    };
    let frame = BeamformingReportFrame::new(
        MacAddr::station(7),
        MacAddr::station(0xF0E),
        MacAddr::station(7),
        1,
        foreign,
    )
    .encode();
    assert_eq!(engine.ingest_frame(&frame), IngestOutcome::Enqueued);

    // Healthy traffic keeps flowing around the foreign frame.
    let replay = ReplaySource::from_dataset(&ds);
    for frame in replay.frames() {
        engine.ingest_frame(frame);
    }
    // The engine must drain and shut down (this hung before reports were
    // gated on `InputSpec::compatible`).
    let report = engine.shutdown();
    assert_eq!(report.stats.rejected, 1);
    assert_eq!(report.stats.classified as usize, replay.len());
    assert_eq!(report.stats.decode_errors, 0);
}

/// A *shape*-foreign frame (right MIMO dims, wrong subcarrier count)
/// arriving first must neither wedge the engine nor hijack the accepted
/// tensor shape for the legitimate traffic behind it.
#[test]
fn foreign_shape_first_cannot_wedge_or_hijack_the_engine() {
    use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
    use deepcsi_frame::BeamformingReportFrame;
    use deepcsi_phy::{Codebook, MimoConfig};

    let ds = dataset(2, 8);
    let engine = Engine::start(
        EngineConfig {
            workers: 1, // one queue so the foreign frame is truly first
            backpressure: Backpressure::Block,
            ..EngineConfig::default()
        },
        untrained_authenticator(2), // no recorded input shape
        ReplaySource::registry(&ds),
    );

    // 3×2 like the model, but only 8 subcarriers → different tensor width.
    let foreign = BeamformingFeedback {
        mimo: MimoConfig::new(3, 2, 2).expect("valid"),
        codebook: Codebook::MU_HIGH,
        subcarriers: (0..8).collect(),
        angles: vec![
            QuantizedAngles {
                m: 3,
                n_ss: 2,
                q_phi: vec![1, 2, 3],
                q_psi: vec![4, 5, 6],
            };
            8
        ],
    };
    let frame = BeamformingReportFrame::new(
        MacAddr::station(7),
        MacAddr::station(0xF00),
        MacAddr::station(7),
        1,
        foreign,
    )
    .encode();
    assert_eq!(engine.ingest_frame(&frame), IngestOutcome::Enqueued);
    // Give the worker time to classify (and panic-reject) the foreign
    // batch before the healthy traffic arrives.
    engine.drain();

    let replay = ReplaySource::from_dataset(&ds);
    for frame in replay.frames() {
        engine.ingest_frame(frame);
    }
    let report = engine.shutdown();
    assert!(report.stats.rejected >= 1, "foreign frame not rejected");
    assert_eq!(
        report.stats.classified as usize,
        replay.len(),
        "legitimate traffic was rejected after the foreign frame"
    );
}
