//! Engine-wide counters and batch-latency tracking.
//!
//! All counters are lock-free atomics updated from the ingest thread and
//! every worker; [`Telemetry::snapshot`] renders a plain-data
//! [`EngineStats`] for reporting. Batch latency goes into a small
//! power-of-two histogram from which p50/p99 are read without storing
//! individual observations.

use deepcsi_capture::CaptureCounters;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

const BUCKETS: usize = 48;

/// Lock-free log₂ histogram of nanosecond durations.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().max(1) as u64;
        let bucket = (63 - nanos.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a duration, resolved to the
    /// geometric midpoint of the containing bucket; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                // Bucket i spans [2^i, 2^(i+1)) ns; use its geometric mid.
                let nanos = (1u64 << i) as f64 * std::f64::consts::SQRT_2;
                return Some(Duration::from_nanos(nanos as u64));
            }
        }
        None
    }
}

/// Exact counts above this saturate into the last bucket; decision
/// policies answer in tens of reports, so the interesting range is far
/// below it.
const MAX_TRACKED_REPORTS: usize = 1024;

/// Lock-free exact histogram of small report counts — the
/// reports-to-verdict ("decision latency in reports") distribution.
///
/// Counts `1 ..= 1024` are exact; anything larger saturates into the top
/// bucket, so the p99 of a pathologically slow policy reads as
/// "≥ 1024".
#[derive(Debug)]
pub struct ReportCountHistogram {
    counts: Box<[AtomicU64]>,
}

impl Default for ReportCountHistogram {
    fn default() -> Self {
        ReportCountHistogram {
            counts: (0..=MAX_TRACKED_REPORTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

impl ReportCountHistogram {
    /// Records one reports-to-verdict observation.
    pub fn record(&self, reports: u64) {
        let idx = (reports as usize).min(MAX_TRACKED_REPORTS);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in reports, exact up to the
    /// saturation bound; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (reports, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return Some(reports as u64);
            }
        }
        None
    }
}

/// Shared atomic telemetry for one engine.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Frames handed to ingest (parsed or not).
    pub ingested: AtomicU64,
    /// Frames that failed to decode.
    pub decode_errors: AtomicU64,
    /// Reports dropped by backpressure (full worker queue).
    pub dropped: AtomicU64,
    /// Reports accepted onto a worker queue.
    pub enqueued: AtomicU64,
    /// Reports rejected before inference (feedback dimensions
    /// incompatible with the trained model).
    pub rejected: AtomicU64,
    /// Reports classified by workers.
    pub classified: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Batch latency distribution (decode → decisions applied).
    pub batch_latency: LatencyHistogram,
    /// Device streams whose verdict first left [`Verdict::Unknown`]
    /// (per stream, once — re-registration aside).
    ///
    /// [`Verdict::Unknown`]: crate::Verdict::Unknown
    pub verdicts_decided: AtomicU64,
    /// Reports each stream needed before its first decisive verdict —
    /// the decision-latency distribution of the active policy.
    pub reports_to_verdict: ReportCountHistogram,
    /// The active decision policy's name (set once at engine start).
    pub policy: OnceLock<&'static str>,
    /// The serving snapshot's numeric backend (`"f32"` / `"int8"`, set
    /// once at engine start).
    pub precision: OnceLock<&'static str>,
    /// Capture-layer: container bytes read by the frame source.
    pub capture_bytes: AtomicU64,
    /// Capture-layer: packets decoded out of the container.
    pub capture_packets: AtomicU64,
    /// Capture-layer: packets dropped by the 802.11 pre-filter.
    pub capture_skipped: AtomicU64,
    /// Capture-layer: radiotap/pcap per-packet decode errors.
    pub capture_errors: AtomicU64,
}

impl Telemetry {
    /// Publishes the frame source's cumulative capture-layer counters.
    ///
    /// Counters are cumulative on the source side, so this *stores*
    /// rather than adds — the telemetry mirrors the engine's (single)
    /// attached source.
    pub fn set_capture(&self, c: &CaptureCounters) {
        self.capture_bytes.store(c.bytes_read, Ordering::Relaxed);
        self.capture_packets
            .store(c.packets_seen, Ordering::Relaxed);
        self.capture_skipped
            .store(c.prefilter_skipped, Ordering::Relaxed);
        self.capture_errors
            .store(c.decode_errors, Ordering::Relaxed);
    }
    /// Records one finished micro-batch.
    pub fn record_batch(&self, size: usize, latency: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.classified.fetch_add(size as u64, Ordering::Relaxed);
        self.batch_latency.record(latency);
    }

    /// Records a stream's first decisive verdict after `reports`
    /// classified reports.
    pub fn record_verdict(&self, reports: u64) {
        self.verdicts_decided.fetch_add(1, Ordering::Relaxed);
        self.reports_to_verdict.record(reports);
    }

    /// A plain-data snapshot of every counter.
    pub fn snapshot(&self) -> EngineStats {
        let batches = self.batches.load(Ordering::Relaxed);
        let classified = self.classified.load(Ordering::Relaxed);
        EngineStats {
            ingested: self.ingested.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            classified,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                classified as f64 / batches as f64
            },
            batch_latency_p50: self.batch_latency.quantile(0.50),
            batch_latency_p99: self.batch_latency.quantile(0.99),
            policy: self.policy.get().copied().unwrap_or(""),
            precision: self.precision.get().copied().unwrap_or(""),
            verdicts_decided: self.verdicts_decided.load(Ordering::Relaxed),
            reports_to_verdict_p50: self.reports_to_verdict.quantile(0.50),
            reports_to_verdict_p99: self.reports_to_verdict.quantile(0.99),
            capture_bytes: self.capture_bytes.load(Ordering::Relaxed),
            capture_packets: self.capture_packets.load(Ordering::Relaxed),
            capture_skipped: self.capture_skipped.load(Ordering::Relaxed),
            capture_errors: self.capture_errors.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Frames handed to ingest.
    pub ingested: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Reports dropped by backpressure.
    pub dropped: u64,
    /// Reports accepted onto worker queues.
    pub enqueued: u64,
    /// Reports rejected before inference (incompatible dimensions).
    pub rejected: u64,
    /// Reports classified.
    pub classified: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean micro-batch size.
    pub mean_batch: f64,
    /// Median micro-batch latency.
    pub batch_latency_p50: Option<Duration>,
    /// 99th-percentile micro-batch latency.
    pub batch_latency_p99: Option<Duration>,
    /// The active decision policy's name (empty when snapshotted from a
    /// bare [`Telemetry`] outside an engine).
    pub policy: &'static str,
    /// The serving snapshot's numeric backend (`"f32"` / `"int8"`;
    /// empty outside an engine).
    pub precision: &'static str,
    /// Device streams that reached a decisive verdict.
    pub verdicts_decided: u64,
    /// Median reports a stream needed before its first decisive verdict.
    pub reports_to_verdict_p50: Option<u64>,
    /// 99th-percentile reports before the first decisive verdict.
    pub reports_to_verdict_p99: Option<u64>,
    /// Capture-layer container bytes read (0 without a frame source).
    pub capture_bytes: u64,
    /// Capture-layer packets seen.
    pub capture_packets: u64,
    /// Capture-layer pre-filter skips.
    pub capture_skipped: u64,
    /// Capture-layer radiotap/pcap decode errors.
    pub capture_errors: u64,
}

impl EngineStats {
    /// Checks the end-to-end conservation law when a frame source fed
    /// the engine: every packet the capture layer saw is either skipped,
    /// errored (capture- or MAC-level), dropped by backpressure, or
    /// enqueued.
    pub fn capture_reconciles(&self) -> bool {
        self.capture_packets
            == self.capture_skipped
                + self.capture_errors
                + self.decode_errors
                + self.dropped
                + self.enqueued
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.capture_packets > 0 {
            writeln!(
                f,
                "capture: {} bytes  {} packets  {} pre-filtered  {} decode errors  ({})",
                self.capture_bytes,
                self.capture_packets,
                self.capture_skipped,
                self.capture_errors,
                if self.capture_reconciles() {
                    "reconciled"
                } else {
                    "NOT RECONCILED"
                },
            )?;
        }
        writeln!(
            f,
            "ingested {}  decode errors {}  enqueued {}  dropped {}  rejected {}",
            self.ingested, self.decode_errors, self.enqueued, self.dropped, self.rejected
        )?;
        writeln!(
            f,
            "classified {}  batches {} (mean size {:.1})  batch latency p50 {} p99 {}",
            self.classified,
            self.batches,
            self.mean_batch,
            fmt_latency(self.batch_latency_p50),
            fmt_latency(self.batch_latency_p99),
        )?;
        write!(
            f,
            "policy {}  precision {}  verdicts decided {}  reports-to-verdict p50 {} p99 {}",
            if self.policy.is_empty() {
                "-"
            } else {
                self.policy
            },
            if self.precision.is_empty() {
                "-"
            } else {
                self.precision
            },
            self.verdicts_decided,
            fmt_reports(self.reports_to_verdict_p50),
            fmt_reports(self.reports_to_verdict_p99),
        )
    }
}

fn fmt_latency(d: Option<Duration>) -> String {
    match d {
        None => "n/a".to_string(),
        Some(d) if d < Duration::from_millis(1) => format!("{:.0}µs", d.as_secs_f64() * 1e6),
        Some(d) => format!("{:.2}ms", d.as_secs_f64() * 1e3),
    }
}

fn fmt_reports(n: Option<u64>) -> String {
    match n {
        None => "n/a".to_string(),
        Some(n) => n.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for micros in [10u64, 20, 30, 40, 50, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(8) && p50 <= Duration::from_micros(64));
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= Duration::from_micros(512), "p99 {p99:?}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn report_count_histogram_is_exact_in_range() {
        let h = ReportCountHistogram::default();
        for n in [4u64, 4, 4, 10, 10, 40] {
            h.record(n);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(0.99), Some(40));
        assert_eq!(h.quantile(1.0), Some(40));
    }

    #[test]
    fn report_count_histogram_saturates_above_bound() {
        let h = ReportCountHistogram::default();
        h.record(5_000_000);
        assert_eq!(h.quantile(0.5), Some(1024));
    }

    #[test]
    fn empty_report_histogram_has_no_quantiles() {
        assert_eq!(ReportCountHistogram::default().quantile(0.5), None);
    }

    #[test]
    fn verdict_recording_feeds_the_snapshot() {
        let t = Telemetry::default();
        t.policy.set("fixed").unwrap();
        t.record_verdict(10);
        t.record_verdict(4);
        let s = t.snapshot();
        assert_eq!(s.policy, "fixed");
        assert_eq!(s.verdicts_decided, 2);
        assert_eq!(s.reports_to_verdict_p50, Some(4));
        assert_eq!(s.reports_to_verdict_p99, Some(10));
        assert!(format!("{s}").contains("reports-to-verdict"));
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let t = Telemetry::default();
        t.record_batch(8, Duration::from_micros(100));
        t.record_batch(4, Duration::from_micros(200));
        let s = t.snapshot();
        assert_eq!(s.classified, 12);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch - 6.0).abs() < 1e-9);
        assert!(s.batch_latency_p50.is_some());
        assert!(!format!("{s}").is_empty());
    }
}
