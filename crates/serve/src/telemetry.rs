//! Engine-wide counters, stage/batch latency tracking, and metrics
//! export.
//!
//! All counters are lock-free atomics updated from the ingest thread and
//! every worker; [`Telemetry::snapshot`] renders a plain-data
//! [`EngineStats`] for reporting, and [`Telemetry::metrics`] renders the
//! same numbers as a `deepcsi_obs::MetricsRegistry` for the Prometheus /
//! JSONL exporters. Latencies go into log-linear histograms from which
//! p50/p99 are read without storing individual observations.

use deepcsi_capture::CaptureCounters;
use deepcsi_obs::{HistogramSnapshot, MetricsRegistry};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Sub-buckets per octave: each power-of-two range is split in 4, so a
/// bucket's width is at most 1/4 of its lower bound and the midpoint
/// estimate is within ±12.5% of any observation it holds.
const SUBS: usize = 4;

/// 63 octaves × 4 sub-buckets + the 4 exact small buckets ≈ 256 — the
/// whole u64 nanosecond range with no saturation cliff in practice.
const BUCKETS: usize = 256;

/// Bucket index for a (non-zero) nanosecond value.
fn bucket_of(nanos: u64) -> usize {
    if nanos < SUBS as u64 {
        return nanos as usize; // 0..4 ns: exact
    }
    let exp = 63 - nanos.leading_zeros() as usize;
    let sub = ((nanos >> (exp - 2)) & 0b11) as usize;
    (((exp - 1) << 2) + sub).min(BUCKETS - 1)
}

/// `[lo, hi)` nanosecond bounds of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUBS {
        return (idx as u64, idx as u64 + 1);
    }
    let exp = (idx >> 2) + 1;
    let sub = (idx & 0b11) as u64;
    let step = 1u64 << (exp - 2);
    let lo = (1u64 << exp) + sub * step;
    (lo, lo.saturating_add(step))
}

/// Lock-free log-linear histogram of nanosecond durations.
///
/// Buckets follow the HdrHistogram shape: each power-of-two octave is
/// split into 4 equal sub-buckets, so quantiles resolve to a
/// bucket midpoint that is within ±12.5% of the true value (a pure log₂
/// histogram is only within ±41%). Values 1–3 ns get exact unit
/// buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    /// Total nanoseconds across all observations (the Prometheus
    /// `_sum`).
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let nanos = d.as_nanos().max(1) as u64;
        self.counts[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded durations.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a duration, resolved to the
    /// midpoint of the containing log-linear bucket (within ±12.5% of
    /// the true value); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                let (lo, hi) = bucket_bounds(i);
                // Small buckets are exact; log-linear buckets resolve to
                // their midpoint.
                let nanos = if i < SUBS { lo } else { lo + (hi - lo) / 2 };
                return Some(Duration::from_nanos(nanos));
            }
        }
        None
    }

    /// A snapshot for the metrics exporters: cumulative counts at each
    /// non-empty bucket's upper bound, in **seconds** (the Prometheus
    /// base unit), plus sum, count and p50/p99.
    pub fn export(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cum += n;
            let (_, hi) = bucket_bounds(i);
            buckets.push((hi as f64 / 1e9, cum));
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum().as_secs_f64(),
            count: cum,
            quantiles: [0.5, 0.99]
                .iter()
                .filter_map(|&q| self.quantile(q).map(|d| (q, d.as_secs_f64())))
                .collect(),
        }
    }
}

/// Exact counts above this saturate into the last bucket; decision
/// policies answer in tens of reports, so the interesting range is far
/// below it.
const MAX_TRACKED_REPORTS: usize = 1024;

/// Lock-free exact histogram of small report counts — the
/// reports-to-verdict ("decision latency in reports") distribution.
///
/// Counts `1 ..= 1024` are exact; anything larger saturates into the top
/// bucket, so the p99 of a pathologically slow policy reads as
/// "≥ 1024".
#[derive(Debug)]
pub struct ReportCountHistogram {
    counts: Box<[AtomicU64]>,
}

impl Default for ReportCountHistogram {
    fn default() -> Self {
        ReportCountHistogram {
            counts: (0..=MAX_TRACKED_REPORTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }
}

impl ReportCountHistogram {
    /// Records one reports-to-verdict observation.
    pub fn record(&self, reports: u64) {
        let idx = (reports as usize).min(MAX_TRACKED_REPORTS);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in reports, exact up to the
    /// saturation bound; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (reports, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return Some(reports as u64);
            }
        }
        None
    }

    /// A snapshot for the metrics exporters: cumulative counts at
    /// power-of-two report-count bounds (1, 2, 4, … 1024), plus sum,
    /// count and p50/p99 — coarser than the exact store, but a scrape
    /// does not need 1025 buckets.
    pub fn export(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        let mut sum = 0u64;
        let mut next_bound = 1usize;
        for (reports, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            cum += n;
            sum += n * reports as u64;
            if reports == next_bound {
                buckets.push((reports as f64, cum));
                next_bound *= 2;
            }
        }
        HistogramSnapshot {
            buckets,
            sum: sum as f64,
            count: cum,
            quantiles: [0.5, 0.99]
                .iter()
                .filter_map(|&q| self.quantile(q).map(|v| (q, v as f64)))
                .collect(),
        }
    }
}

/// A pipeline stage with its own latency histogram in
/// [`Telemetry::stage`].
///
/// The taxonomy mirrors a report's life: `decode` (frame bytes →
/// parsed report, on the ingest thread), `queue_wait` (enqueue → batch
/// assembly, the backpressure signal), then per micro-batch on a worker:
/// `tensorize` (feedback → input tensors), `infer` (the batched forward
/// pass) and `policy_apply` (window pushes + verdict checks under the
/// shard lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Frame bytes → parsed report (ingest thread).
    Decode = 0,
    /// Enqueue → micro-batch assembly (per report).
    QueueWait = 1,
    /// Feedback → input tensors (per micro-batch).
    Tensorize = 2,
    /// The batched forward pass (per inference call).
    Infer = 3,
    /// Window pushes + verdict checks (per inference call).
    PolicyApply = 4,
}

impl Stage {
    /// Every stage, histogram-index order.
    pub const ALL: [Stage; 5] = [
        Stage::Decode,
        Stage::QueueWait,
        Stage::Tensorize,
        Stage::Infer,
        Stage::PolicyApply,
    ];

    /// The stage's span/metric name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::QueueWait => "queue_wait",
            Stage::Tensorize => "tensorize",
            Stage::Infer => "infer",
            Stage::PolicyApply => "policy_apply",
        }
    }
}

/// Shared atomic telemetry for one engine.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Frames handed to ingest (parsed or not).
    pub ingested: AtomicU64,
    /// Frames that failed to decode.
    pub decode_errors: AtomicU64,
    /// Reports dropped by backpressure (full worker queue).
    pub dropped: AtomicU64,
    /// Reports accepted onto a worker queue.
    pub enqueued: AtomicU64,
    /// Reports rejected before inference (feedback dimensions
    /// incompatible with the trained model).
    pub rejected: AtomicU64,
    /// Reports classified by workers.
    pub classified: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Batch latency distribution (decode → decisions applied).
    pub batch_latency: LatencyHistogram,
    /// The batch former's current per-worker target (gauge). Equals
    /// `max_batch` under the fixed former; under the adaptive former it
    /// is the last target any worker published — workers converge under
    /// steady load, so last-write-wins is fine for a gauge.
    pub batch_target: AtomicU64,
    /// Inference-pool lanes per worker (gauge; `infer_threads`).
    pub pool_lanes: AtomicU64,
    /// Sum of lanes engaged across pool inference calls — divided by
    /// [`Telemetry::pool_infer_calls`] this is the pool's mean
    /// occupancy (1.0 = every batch ran single-lane, `pool_lanes` =
    /// every batch split across the whole pool).
    pub pool_lanes_engaged: AtomicU64,
    /// Pool inference calls (one per shape group per micro-batch).
    pub pool_infer_calls: AtomicU64,
    /// System-clock faults absorbed while stamping audit events (the
    /// wall clock fell back to last-known-good + monotonic offset).
    /// A non-zero value means the host clock misbehaved mid-serve.
    pub clock_faults: AtomicU64,
    /// Device streams whose verdict first left [`Verdict::Unknown`]
    /// (per stream, once — re-registration aside).
    ///
    /// [`Verdict::Unknown`]: crate::Verdict::Unknown
    pub verdicts_decided: AtomicU64,
    /// Reports each stream needed before its first decisive verdict —
    /// the decision-latency distribution of the active policy.
    pub reports_to_verdict: ReportCountHistogram,
    /// Per-device policy states currently held across all shards.
    /// Bounded by `EngineConfig::max_device_states` when a cap is set
    /// (each eviction decrements it); otherwise one per distinct source
    /// MAC ever seen, and long soaks watch this gauge for growth after
    /// warm-up.
    pub device_states: AtomicU64,
    /// Device states evicted by the per-shard LRU cap.
    pub devices_evicted: AtomicU64,
    /// Evicted streams that returned and rebuilt their state from
    /// scratch (re-warms) — a high rate means the cap is below the
    /// working set.
    pub devices_rewarmed: AtomicU64,
    /// When the engine started serving (set once at engine start); the
    /// source of `deepcsi_uptime_seconds`. Unset on a bare
    /// [`Telemetry`], in which case uptime exports as 0.
    pub started: OnceLock<Instant>,
    /// The active decision policy's name (set once at engine start).
    pub policy: OnceLock<&'static str>,
    /// The serving snapshot's numeric backend (`"f32"` / `"int8"`, set
    /// once at engine start).
    pub precision: OnceLock<&'static str>,
    /// Capture-layer: container bytes read by the frame source.
    pub capture_bytes: AtomicU64,
    /// Capture-layer: packets decoded out of the container.
    pub capture_packets: AtomicU64,
    /// Capture-layer: packets dropped by the 802.11 pre-filter.
    pub capture_skipped: AtomicU64,
    /// Capture-layer: radiotap/pcap per-packet decode errors.
    pub capture_errors: AtomicU64,
    /// Per-stage latency distributions, indexed by [`Stage`]. Empty
    /// histograms (stage timing off, or a stage that never ran) simply
    /// export nothing.
    pub stages: [LatencyHistogram; 5],
}

impl Telemetry {
    /// Publishes the frame source's cumulative capture-layer counters.
    ///
    /// Counters are cumulative on the source side, so this *stores*
    /// rather than adds — the telemetry mirrors the engine's (single)
    /// attached source.
    pub fn set_capture(&self, c: &CaptureCounters) {
        self.capture_bytes.store(c.bytes_read, Ordering::Relaxed);
        self.capture_packets
            .store(c.packets_seen, Ordering::Relaxed);
        self.capture_skipped
            .store(c.prefilter_skipped, Ordering::Relaxed);
        self.capture_errors
            .store(c.decode_errors, Ordering::Relaxed);
    }
    /// Time since the engine started serving (zero when
    /// [`Telemetry::started`] was never set).
    pub fn uptime(&self) -> Duration {
        self.started.get().map_or(Duration::ZERO, Instant::elapsed)
    }

    /// Records one finished micro-batch.
    pub fn record_batch(&self, size: usize, latency: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.classified.fetch_add(size as u64, Ordering::Relaxed);
        self.batch_latency.record(latency);
    }

    /// Records one inference-pool call that engaged `engaged` lanes.
    pub fn record_pool_call(&self, engaged: usize) {
        self.pool_infer_calls.fetch_add(1, Ordering::Relaxed);
        self.pool_lanes_engaged
            .fetch_add(engaged as u64, Ordering::Relaxed);
    }

    /// Records a stream's first decisive verdict after `reports`
    /// classified reports.
    pub fn record_verdict(&self, reports: u64) {
        self.verdicts_decided.fetch_add(1, Ordering::Relaxed);
        self.reports_to_verdict.record(reports);
    }

    /// Records one observation of a pipeline stage's latency.
    pub fn record_stage(&self, stage: Stage, d: Duration) {
        self.stages[stage as usize].record(d);
    }

    /// The latency histogram of one pipeline stage.
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage as usize]
    }

    /// A plain-data snapshot of every counter.
    pub fn snapshot(&self) -> EngineStats {
        let batches = self.batches.load(Ordering::Relaxed);
        let classified = self.classified.load(Ordering::Relaxed);
        let pool_calls = self.pool_infer_calls.load(Ordering::Relaxed);
        let pool_engaged = self.pool_lanes_engaged.load(Ordering::Relaxed);
        EngineStats {
            captured_at: Instant::now(),
            stages: Stage::ALL
                .iter()
                .map(|&s| {
                    let h = self.stage(s);
                    StageSnapshot {
                        stage: s.name(),
                        count: h.count(),
                        p50: h.quantile(0.50),
                        p99: h.quantile(0.99),
                    }
                })
                .collect(),
            ingested: self.ingested.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            classified,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                classified as f64 / batches as f64
            },
            batch_latency_p50: self.batch_latency.quantile(0.50),
            batch_latency_p99: self.batch_latency.quantile(0.99),
            batch_target: self.batch_target.load(Ordering::Relaxed),
            pool_lanes: self.pool_lanes.load(Ordering::Relaxed),
            pool_occupancy: if pool_calls == 0 {
                0.0
            } else {
                pool_engaged as f64 / pool_calls as f64
            },
            clock_faults: self.clock_faults.load(Ordering::Relaxed),
            policy: self.policy.get().copied().unwrap_or(""),
            precision: self.precision.get().copied().unwrap_or(""),
            verdicts_decided: self.verdicts_decided.load(Ordering::Relaxed),
            device_states: self.device_states.load(Ordering::Relaxed),
            devices_evicted: self.devices_evicted.load(Ordering::Relaxed),
            devices_rewarmed: self.devices_rewarmed.load(Ordering::Relaxed),
            reports_to_verdict_p50: self.reports_to_verdict.quantile(0.50),
            reports_to_verdict_p99: self.reports_to_verdict.quantile(0.99),
            capture_bytes: self.capture_bytes.load(Ordering::Relaxed),
            capture_packets: self.capture_packets.load(Ordering::Relaxed),
            capture_skipped: self.capture_skipped.load(Ordering::Relaxed),
            capture_errors: self.capture_errors.load(Ordering::Relaxed),
        }
    }

    /// Renders every counter and histogram as a
    /// [`deepcsi_obs::MetricsRegistry`] — the one source both exporters
    /// (Prometheus text and JSONL) draw from. Counter names follow the
    /// Prometheus conventions (`deepcsi_` prefix, `_total` suffix,
    /// seconds as the time unit).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        reg.labeled_gauge(
            "deepcsi_engine_info",
            "Engine configuration (dimensions as labels, value always 1).",
            &[
                ("policy", self.policy.get().copied().unwrap_or("")),
                ("precision", self.precision.get().copied().unwrap_or("")),
            ],
            1.0,
        );
        // Self-describing scrapes: a collector that knows nothing about
        // this process can still tell what build/config produced the
        // numbers and how long it has been up.
        reg.labeled_gauge(
            "deepcsi_build_info",
            "Build and serving configuration (dimensions as labels, value always 1).",
            &[
                ("version", env!("CARGO_PKG_VERSION")),
                ("policy", self.policy.get().copied().unwrap_or("")),
                ("precision", self.precision.get().copied().unwrap_or("")),
            ],
            1.0,
        );
        reg.gauge(
            "deepcsi_uptime_seconds",
            "Seconds since the engine started serving.",
            self.uptime().as_secs_f64(),
        );
        reg.counter(
            "deepcsi_ingested_total",
            "Frames handed to ingest.",
            c(&self.ingested),
        );
        reg.counter(
            "deepcsi_decode_errors_total",
            "Frames that failed to decode.",
            c(&self.decode_errors),
        );
        reg.counter(
            "deepcsi_dropped_total",
            "Reports dropped by backpressure.",
            c(&self.dropped),
        );
        reg.counter(
            "deepcsi_enqueued_total",
            "Reports accepted onto worker queues.",
            c(&self.enqueued),
        );
        reg.counter(
            "deepcsi_rejected_total",
            "Reports rejected before inference.",
            c(&self.rejected),
        );
        reg.counter(
            "deepcsi_classified_total",
            "Reports classified by workers.",
            c(&self.classified),
        );
        reg.counter(
            "deepcsi_batches_total",
            "Micro-batches executed.",
            c(&self.batches),
        );
        reg.counter(
            "deepcsi_verdicts_decided_total",
            "Device streams whose verdict first left Unknown.",
            c(&self.verdicts_decided),
        );
        reg.gauge(
            "deepcsi_device_states",
            "Per-device policy states held across all shards.",
            c(&self.device_states) as f64,
        );
        reg.counter(
            "deepcsi_devices_evicted_total",
            "Device states evicted by the per-shard LRU cap.",
            c(&self.devices_evicted),
        );
        reg.counter(
            "deepcsi_devices_rewarmed_total",
            "Evicted streams that returned and rebuilt their state.",
            c(&self.devices_rewarmed),
        );
        let batches = c(&self.batches);
        reg.gauge(
            "deepcsi_mean_batch",
            "Mean micro-batch size.",
            if batches == 0 {
                0.0
            } else {
                c(&self.classified) as f64 / batches as f64
            },
        );
        reg.gauge(
            "deepcsi_batch_target",
            "The batch former's current per-worker target.",
            c(&self.batch_target) as f64,
        );
        reg.gauge(
            "deepcsi_pool_lanes",
            "Inference-pool lanes per worker (infer_threads).",
            c(&self.pool_lanes) as f64,
        );
        reg.counter(
            "deepcsi_pool_infer_calls_total",
            "Inference-pool calls (one per shape group per batch).",
            c(&self.pool_infer_calls),
        );
        reg.counter(
            "deepcsi_pool_lanes_engaged_total",
            "Lanes engaged summed across inference-pool calls.",
            c(&self.pool_lanes_engaged),
        );
        let pool_calls = c(&self.pool_infer_calls);
        reg.gauge(
            "deepcsi_pool_occupancy",
            "Mean lanes engaged per inference-pool call.",
            if pool_calls == 0 {
                0.0
            } else {
                c(&self.pool_lanes_engaged) as f64 / pool_calls as f64
            },
        );
        reg.counter(
            "deepcsi_clock_faults_total",
            "System-clock faults absorbed while stamping audit events.",
            c(&self.clock_faults),
        );
        reg.counter(
            "deepcsi_capture_bytes_total",
            "Capture-layer container bytes read.",
            c(&self.capture_bytes),
        );
        reg.counter(
            "deepcsi_capture_packets_total",
            "Capture-layer packets decoded.",
            c(&self.capture_packets),
        );
        reg.counter(
            "deepcsi_capture_skipped_total",
            "Capture-layer pre-filter skips.",
            c(&self.capture_skipped),
        );
        reg.counter(
            "deepcsi_capture_errors_total",
            "Capture-layer per-packet decode errors.",
            c(&self.capture_errors),
        );
        reg.histogram(
            "deepcsi_batch_latency_seconds",
            "Micro-batch latency (batch assembled to decisions applied).",
            self.batch_latency.export(),
        );
        reg.histogram(
            "deepcsi_reports_to_verdict",
            "Reports a stream needed before its first decisive verdict.",
            self.reports_to_verdict.export(),
        );
        for s in Stage::ALL {
            let h = self.stage(s);
            if h.count() == 0 {
                continue; // stage timing off, or the stage never ran
            }
            reg.histogram(
                &format!("deepcsi_stage_{}_seconds", s.name()),
                "Per-stage pipeline latency.",
                h.export(),
            );
        }
        reg
    }
}

/// One pipeline stage's latency summary inside an [`EngineStats`]
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// The stage's name (see [`Stage::name`]).
    pub stage: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Median stage latency.
    pub p50: Option<Duration>,
    /// 99th-percentile stage latency.
    pub p99: Option<Duration>,
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// When this snapshot was taken (the denominator of
    /// [`EngineStats::delta`]'s rates).
    pub captured_at: Instant,
    /// Per-stage latency summaries (all five stages, zero-count when a
    /// stage never ran or stage timing is off).
    pub stages: Vec<StageSnapshot>,
    /// Frames handed to ingest.
    pub ingested: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// Reports dropped by backpressure.
    pub dropped: u64,
    /// Reports accepted onto worker queues.
    pub enqueued: u64,
    /// Reports rejected before inference (incompatible dimensions).
    pub rejected: u64,
    /// Reports classified.
    pub classified: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean micro-batch size.
    pub mean_batch: f64,
    /// Median micro-batch latency.
    pub batch_latency_p50: Option<Duration>,
    /// 99th-percentile micro-batch latency.
    pub batch_latency_p99: Option<Duration>,
    /// The batch former's current target size (fixed formers report
    /// `EngineConfig::batch`; adaptive formers move between their
    /// configured bounds).
    pub batch_target: u64,
    /// Inference lanes owned by each worker's persistent pool.
    pub pool_lanes: u64,
    /// Mean lanes engaged per pool inference call (0.0 before the
    /// first call) — how much of the pool the observed batch sizes
    /// actually exercised.
    pub pool_occupancy: f64,
    /// Wall-clock reads that failed and fell back to the
    /// monotonic-offset timestamp.
    pub clock_faults: u64,
    /// The active decision policy's name (empty when snapshotted from a
    /// bare [`Telemetry`] outside an engine).
    pub policy: &'static str,
    /// The serving snapshot's numeric backend (`"f32"` / `"int8"`;
    /// empty outside an engine).
    pub precision: &'static str,
    /// Device streams that reached a decisive verdict.
    pub verdicts_decided: u64,
    /// Per-device policy states currently held across all shards
    /// (bounded when `EngineConfig::max_device_states` is set).
    pub device_states: u64,
    /// Device states evicted by the per-shard LRU cap.
    pub devices_evicted: u64,
    /// Evicted streams that returned and rebuilt their state (re-warms).
    pub devices_rewarmed: u64,
    /// Median reports a stream needed before its first decisive verdict.
    pub reports_to_verdict_p50: Option<u64>,
    /// 99th-percentile reports before the first decisive verdict.
    pub reports_to_verdict_p99: Option<u64>,
    /// Capture-layer container bytes read (0 without a frame source).
    pub capture_bytes: u64,
    /// Capture-layer packets seen.
    pub capture_packets: u64,
    /// Capture-layer pre-filter skips.
    pub capture_skipped: u64,
    /// Capture-layer radiotap/pcap decode errors.
    pub capture_errors: u64,
}

impl EngineStats {
    /// Checks the end-to-end conservation law when a frame source fed
    /// the engine: every packet the capture layer saw is either skipped,
    /// errored (capture- or MAC-level), dropped by backpressure, or
    /// enqueued.
    pub fn capture_reconciles(&self) -> bool {
        self.capture_packets
            == self.capture_skipped
                + self.capture_errors
                + self.decode_errors
                + self.dropped
                + self.enqueued
    }

    /// The change between an `earlier` snapshot and this one — the
    /// interval view a periodic reporter needs (reports/s, drops/s over
    /// the last tick, not since engine start).
    ///
    /// Counter differences saturate at zero, so a snapshot pair taken
    /// across an engine restart degrades to zeros instead of underflow.
    pub fn delta(&self, earlier: &EngineStats) -> StatsDelta {
        StatsDelta {
            wall: self
                .captured_at
                .checked_duration_since(earlier.captured_at)
                .unwrap_or(Duration::ZERO),
            ingested: self.ingested.saturating_sub(earlier.ingested),
            decode_errors: self.decode_errors.saturating_sub(earlier.decode_errors),
            dropped: self.dropped.saturating_sub(earlier.dropped),
            enqueued: self.enqueued.saturating_sub(earlier.enqueued),
            rejected: self.rejected.saturating_sub(earlier.rejected),
            classified: self.classified.saturating_sub(earlier.classified),
            batches: self.batches.saturating_sub(earlier.batches),
            verdicts_decided: self
                .verdicts_decided
                .saturating_sub(earlier.verdicts_decided),
        }
    }
}

/// Counter changes between two [`EngineStats`] snapshots (see
/// [`EngineStats::delta`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsDelta {
    /// Wall time between the two snapshots (zero when the pair is
    /// reversed).
    pub wall: Duration,
    /// Frames ingested in the interval.
    pub ingested: u64,
    /// Decode errors in the interval.
    pub decode_errors: u64,
    /// Backpressure drops in the interval.
    pub dropped: u64,
    /// Reports enqueued in the interval.
    pub enqueued: u64,
    /// Reports rejected in the interval.
    pub rejected: u64,
    /// Reports classified in the interval.
    pub classified: u64,
    /// Micro-batches executed in the interval.
    pub batches: u64,
    /// Streams newly decided in the interval.
    pub verdicts_decided: u64,
}

impl StatsDelta {
    /// Converts an interval count to a per-second rate (0 when the
    /// interval has no measurable width).
    pub fn rate(&self, count: u64) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            count as f64 / secs
        }
    }

    /// Reports classified per second over the interval.
    pub fn classified_per_sec(&self) -> f64 {
        self.rate(self.classified)
    }

    /// Frames ingested per second over the interval.
    pub fn ingested_per_sec(&self) -> f64 {
        self.rate(self.ingested)
    }

    /// Reports dropped per second over the interval.
    pub fn dropped_per_sec(&self) -> f64 {
        self.rate(self.dropped)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.capture_packets > 0 {
            writeln!(
                f,
                "capture: {} bytes  {} packets  {} pre-filtered  {} decode errors  ({})",
                self.capture_bytes,
                self.capture_packets,
                self.capture_skipped,
                self.capture_errors,
                if self.capture_reconciles() {
                    "reconciled"
                } else {
                    "NOT RECONCILED"
                },
            )?;
        }
        writeln!(
            f,
            "ingested {}  decode errors {}  enqueued {}  dropped {}  rejected {}",
            self.ingested, self.decode_errors, self.enqueued, self.dropped, self.rejected
        )?;
        writeln!(
            f,
            "classified {}  batches {} (mean size {:.1})  batch latency p50 {} p99 {}",
            self.classified,
            self.batches,
            self.mean_batch,
            fmt_latency(self.batch_latency_p50),
            fmt_latency(self.batch_latency_p99),
        )?;
        writeln!(
            f,
            "batch target {}  pool lanes {} (occupancy {:.2})  clock faults {}",
            self.batch_target, self.pool_lanes, self.pool_occupancy, self.clock_faults
        )?;
        let timed: Vec<&StageSnapshot> = self.stages.iter().filter(|s| s.count > 0).collect();
        if !timed.is_empty() {
            write!(f, "stages:")?;
            for s in timed {
                write!(
                    f,
                    "  {} p50 {} p99 {}",
                    s.stage,
                    fmt_latency(s.p50),
                    fmt_latency(s.p99)
                )?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "policy {}  precision {}  device states {}  verdicts decided {}  reports-to-verdict p50 {} p99 {}",
            if self.policy.is_empty() {
                "-"
            } else {
                self.policy
            },
            if self.precision.is_empty() {
                "-"
            } else {
                self.precision
            },
            self.device_states,
            self.verdicts_decided,
            fmt_reports(self.reports_to_verdict_p50),
            fmt_reports(self.reports_to_verdict_p99),
        )?;
        if self.devices_evicted > 0 {
            write!(
                f,
                "  evicted {}  re-warmed {}",
                self.devices_evicted, self.devices_rewarmed
            )?;
        }
        Ok(())
    }
}

fn fmt_latency(d: Option<Duration>) -> String {
    match d {
        None => "n/a".to_string(),
        Some(d) if d < Duration::from_millis(1) => format!("{:.0}µs", d.as_secs_f64() * 1e6),
        Some(d) => format!("{:.2}ms", d.as_secs_f64() * 1e3),
    }
}

fn fmt_reports(n: Option<u64>) -> String {
    match n {
        None => "n/a".to_string(),
        Some(n) => n.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for micros in [10u64, 20, 30, 40, 50, 1000] {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 6);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= Duration::from_micros(8) && p50 <= Duration::from_micros(64));
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= Duration::from_micros(512), "p99 {p99:?}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn report_count_histogram_is_exact_in_range() {
        let h = ReportCountHistogram::default();
        for n in [4u64, 4, 4, 10, 10, 40] {
            h.record(n);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(0.99), Some(40));
        assert_eq!(h.quantile(1.0), Some(40));
    }

    #[test]
    fn report_count_histogram_saturates_above_bound() {
        let h = ReportCountHistogram::default();
        h.record(5_000_000);
        assert_eq!(h.quantile(0.5), Some(1024));
    }

    #[test]
    fn empty_report_histogram_has_no_quantiles() {
        assert_eq!(ReportCountHistogram::default().quantile(0.5), None);
    }

    #[test]
    fn verdict_recording_feeds_the_snapshot() {
        let t = Telemetry::default();
        t.policy.set("fixed").unwrap();
        t.record_verdict(10);
        t.record_verdict(4);
        let s = t.snapshot();
        assert_eq!(s.policy, "fixed");
        assert_eq!(s.verdicts_decided, 2);
        assert_eq!(s.reports_to_verdict_p50, Some(4));
        assert_eq!(s.reports_to_verdict_p99, Some(10));
        assert!(format!("{s}").contains("reports-to-verdict"));
    }

    #[test]
    fn log_linear_buckets_pin_quantile_resolution() {
        // The whole point of the log-linear layout: a quantile read
        // resolves to within ±12.5% of the true value, where the old
        // pure-log₂ buckets allowed ±41%.
        for &nanos in &[
            5u64,
            77,
            1_000,
            12_345,
            1_000_000,
            7_777_777,
            123_456_789,
            5_000_000_000,
        ] {
            let h = LatencyHistogram::default();
            h.record(Duration::from_nanos(nanos));
            let got = h.quantile(0.5).unwrap().as_nanos() as f64;
            let err = (got - nanos as f64).abs() / nanos as f64;
            assert!(err <= 0.125, "{nanos} ns read back as {got} ({err:.3})");
        }
        // Tiny durations are exact.
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(3));
        assert_eq!(h.quantile(0.5), Some(Duration::from_nanos(3)));
    }

    #[test]
    fn bucket_layout_is_contiguous_and_monotonic() {
        // Every nanosecond value must land in a bucket whose bounds
        // contain it, and bucket indexes must be monotonic in the value.
        let mut prev = 0usize;
        let mut check = |n: u64| {
            let idx = bucket_of(n);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= n && n < hi, "{n} not in [{lo},{hi}) (bucket {idx})");
            assert!(idx >= prev, "bucket index regressed at {n}");
            prev = idx;
        };
        // Exhaustive through several octaves, then spot checks up high.
        for n in 1..=4096u64 {
            check(n);
        }
        for exp in 13..40 {
            for off in [0u64, 1, (1 << exp) / 3, (1 << exp) - 1] {
                check((1u64 << exp) + off);
            }
        }
    }

    #[test]
    fn histogram_sum_accumulates() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(250));
        assert_eq!(h.sum(), Duration::from_nanos(350));
        let snap = h.export();
        assert_eq!(snap.count, 2);
        assert!((snap.sum - 350e-9).abs() < 1e-12);
        // Cumulative buckets end at the total count.
        assert_eq!(snap.buckets.last().unwrap().1, 2);
    }

    #[test]
    fn delta_reports_interval_rates() {
        let t = Telemetry::default();
        t.ingested.store(100, Ordering::Relaxed);
        t.record_batch(50, Duration::from_micros(10));
        let a = t.snapshot();
        t.ingested.store(300, Ordering::Relaxed);
        t.record_batch(150, Duration::from_micros(10));
        std::thread::sleep(Duration::from_millis(5));
        let b = t.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.ingested, 200);
        assert_eq!(d.classified, 150);
        assert_eq!(d.batches, 1);
        assert!(d.wall >= Duration::from_millis(5));
        let rate = d.classified_per_sec();
        assert!(rate > 0.0 && rate.is_finite());
        // Reversed pair saturates to zeros rather than underflowing.
        let rev = a.delta(&b);
        assert_eq!(rev.ingested, 0);
        assert_eq!(rev.wall, Duration::ZERO);
        assert_eq!(rev.classified_per_sec(), 0.0);
    }

    #[test]
    fn stage_histograms_feed_snapshot_and_metrics() {
        let t = Telemetry::default();
        t.record_stage(Stage::Decode, Duration::from_micros(2));
        t.record_stage(Stage::Infer, Duration::from_micros(500));
        t.record_stage(Stage::Infer, Duration::from_micros(600));
        let s = t.snapshot();
        let infer = s.stages.iter().find(|x| x.stage == "infer").unwrap();
        assert_eq!(infer.count, 2);
        assert!(infer.p50.is_some());
        assert!(format!("{s}").contains("stages:"));
        let text = t.metrics().to_prometheus();
        assert!(text.contains("deepcsi_stage_infer_seconds_bucket"));
        assert!(text.contains("deepcsi_stage_decode_seconds_count 1"));
        // Stages that never ran export nothing.
        assert!(!text.contains("deepcsi_stage_tensorize_seconds"));
        assert!(deepcsi_obs::parse_prometheus(&text).is_ok());
    }

    #[test]
    fn metrics_render_both_formats() {
        let t = Telemetry::default();
        t.policy.set("fixed").unwrap();
        t.precision.set("int8").unwrap();
        t.ingested.store(10, Ordering::Relaxed);
        t.record_batch(8, Duration::from_micros(120));
        t.record_verdict(6);
        let reg = t.metrics();
        let text = reg.to_prometheus();
        let samples = deepcsi_obs::parse_prometheus(&text).expect("prometheus parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "deepcsi_ingested_total" && s.value == 10.0));
        assert!(samples.iter().any(|s| {
            s.name == "deepcsi_engine_info"
                && s.labels
                    .iter()
                    .any(|(k, v)| k == "precision" && v == "int8")
        }));
        assert!(samples
            .iter()
            .any(|s| s.name == "deepcsi_reports_to_verdict_count" && s.value == 1.0));
        let line = reg.to_json_line();
        let v = deepcsi_obs::JsonValue::parse(&line).expect("json line parses");
        assert_eq!(
            v.get("deepcsi_classified_total").unwrap().as_f64(),
            Some(8.0)
        );
    }

    #[test]
    fn scrapes_are_self_describing() {
        let t = Telemetry::default();
        t.policy.set("adaptive").unwrap();
        t.precision.set("int8").unwrap();
        // Bare telemetry (no engine): uptime exports as 0.
        let text = t.metrics().to_prometheus();
        assert!(text.contains("deepcsi_uptime_seconds 0"));
        t.started.set(Instant::now()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.uptime() >= Duration::from_millis(5));
        let samples = deepcsi_obs::parse_prometheus(&t.metrics().to_prometheus()).unwrap();
        let uptime = samples
            .iter()
            .find(|s| s.name == "deepcsi_uptime_seconds")
            .expect("uptime gauge");
        assert!(uptime.value > 0.0);
        let build = samples
            .iter()
            .find(|s| s.name == "deepcsi_build_info")
            .expect("build_info gauge");
        assert_eq!(build.value, 1.0);
        for (key, want) in [
            ("version", env!("CARGO_PKG_VERSION")),
            ("policy", "adaptive"),
            ("precision", "int8"),
        ] {
            assert!(
                build.labels.iter().any(|(k, v)| k == key && v == want),
                "missing {key}={want} in {:?}",
                build.labels
            );
        }
    }

    #[test]
    fn concurrent_recording_preserves_counter_sums() {
        // 4 writer threads hammer record_batch/record_verdict while the
        // snapshot path reads concurrently; afterwards the aggregate
        // counters must equal exactly what was written.
        let t = std::sync::Arc::new(Telemetry::default());
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 2_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        t.record_batch(3, Duration::from_nanos(50 + i));
                        t.record_stage(Stage::Infer, Duration::from_nanos(40 + i));
                        if i % 10 == 0 {
                            t.record_verdict(i % 64);
                        }
                    }
                });
            }
            // Concurrent reader: snapshots must never tear into
            // impossible states (classified always a multiple of the
            // fixed batch size only at quiescence, but monotonic here).
            let t2 = std::sync::Arc::clone(&t);
            s.spawn(move || {
                let mut last = 0u64;
                for _ in 0..50 {
                    let s = t2.snapshot();
                    assert!(s.classified >= last);
                    last = s.classified;
                }
            });
        });
        let s = t.snapshot();
        assert_eq!(s.batches, THREADS * PER_THREAD);
        assert_eq!(s.classified, 3 * THREADS * PER_THREAD);
        assert_eq!(s.verdicts_decided, THREADS * PER_THREAD / 10);
        assert_eq!(t.batch_latency.count(), THREADS * PER_THREAD);
        assert_eq!(t.stage(Stage::Infer).count(), THREADS * PER_THREAD);
        assert_eq!(t.reports_to_verdict.count(), s.verdicts_decided);
    }

    #[test]
    fn snapshot_aggregates_batches() {
        let t = Telemetry::default();
        t.record_batch(8, Duration::from_micros(100));
        t.record_batch(4, Duration::from_micros(200));
        let s = t.snapshot();
        assert_eq!(s.classified, 12);
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch - 6.0).abs() < 1e-9);
        assert!(s.batch_latency_p50.is_some());
        assert!(!format!("{s}").is_empty());
    }
}
