//! The device registry: which module identity each beamformee stream is
//! expected to present, and the accept/reject/unknown policy.

use crate::window::WindowedDecision;
use deepcsi_frame::MacAddr;
use deepcsi_impair::DeviceId;
use std::collections::HashMap;

/// Expected module identity per registered source address.
///
/// ```
/// use deepcsi_frame::MacAddr;
/// use deepcsi_impair::DeviceId;
/// use deepcsi_serve::DeviceRegistry;
///
/// let mut reg = DeviceRegistry::new();
/// reg.register(MacAddr::station(1), DeviceId(3));
/// assert_eq!(reg.expected(MacAddr::station(1)), Some(DeviceId(3)));
/// assert_eq!(reg.expected(MacAddr::station(2)), None);
///
/// // Re-registering overwrites: the stream keeps its evidence, but the
/// // policy now evaluates it against the new identity.
/// reg.register(MacAddr::station(1), DeviceId(7));
/// assert_eq!(reg.expected(MacAddr::station(1)), Some(DeviceId(7)));
/// assert_eq!(reg.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceRegistry {
    expected: HashMap<MacAddr, DeviceId>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or overwrites) the expected module for a source
    /// address.
    pub fn register(&mut self, mac: MacAddr, module: DeviceId) {
        self.expected.insert(mac, module);
    }

    /// The expected module for a source, if registered.
    pub fn expected(&self, mac: MacAddr) -> Option<DeviceId> {
        self.expected.get(&mac).copied()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.expected.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty()
    }

    /// Iterates over `(source, expected module)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, DeviceId)> + '_ {
        self.expected.iter().map(|(m, d)| (*m, *d))
    }
}

/// The evidence gates every decision policy shares: how much windowed
/// evidence authentication needs before issuing anything but
/// [`Verdict::Unknown`].
///
/// Under the default [`FixedMajority`](crate::FixedMajority) policy
/// these are the *only* gates; [`ConfidenceWeighted`](crate::ConfidenceWeighted)
/// keeps `min_vote_fraction` as a posterior floor and replaces the
/// observation count with a confidence-weight gate, and
/// [`AdaptiveThreshold`](crate::AdaptiveThreshold) layers a learned
/// per-device confidence floor on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictPolicy {
    /// Minimum reports observed before any verdict is issued.
    pub min_observations: u64,
    /// Minimum majority fraction for an [`Verdict::Accept`] (and for a
    /// confident [`Verdict::Reject`] of a mismatching majority).
    pub min_vote_fraction: f64,
}

impl Default for VerdictPolicy {
    fn default() -> Self {
        VerdictPolicy {
            min_observations: 10,
            min_vote_fraction: 0.6,
        }
    }
}

/// The authentication outcome for one device stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The stream's windowed identity matches the registration.
    Accept,
    /// The stream confidently presents a different identity — a likely
    /// impersonation.
    Reject,
    /// Not enough evidence, an unregistered source, or an unstable
    /// majority.
    Unknown,
}

impl Verdict {
    /// The lowercase wire name (`"accept"` / `"reject"` / `"unknown"`)
    /// used by the audit trail and the observability endpoints.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Accept => "accept",
            Verdict::Reject => "reject",
            Verdict::Unknown => "unknown",
        }
    }

    /// Applies `policy` to a windowed decision for `mac`.
    ///
    /// This is the legacy fixed-majority evaluation — the behavior the
    /// [`FixedMajority`](crate::FixedMajority) policy preserves exactly.
    ///
    /// ```
    /// use deepcsi_frame::MacAddr;
    /// use deepcsi_impair::DeviceId;
    /// use deepcsi_serve::{DeviceRegistry, Verdict, VerdictPolicy};
    ///
    /// let mut reg = DeviceRegistry::new();
    /// reg.register(MacAddr::station(1), DeviceId(0));
    /// // No decision yet → Unknown.
    /// let v = Verdict::evaluate(&reg, VerdictPolicy::default(), MacAddr::station(1), None);
    /// assert_eq!(v, Verdict::Unknown);
    /// ```
    pub fn evaluate(
        registry: &DeviceRegistry,
        policy: VerdictPolicy,
        mac: MacAddr,
        decision: Option<&WindowedDecision>,
    ) -> Verdict {
        let Some(expected) = registry.expected(mac) else {
            return Verdict::Unknown;
        };
        let Some(d) = decision else {
            return Verdict::Unknown;
        };
        Verdict::from_decision(policy, expected.0 as usize, d)
    }

    /// Applies `policy` to a decision whose expected module is already
    /// resolved (the registry-free core of
    /// [`evaluate`](Verdict::evaluate)).
    pub fn from_decision(policy: VerdictPolicy, expected: usize, d: &WindowedDecision) -> Verdict {
        if d.observations < policy.min_observations || d.vote_fraction < policy.min_vote_fraction {
            return Verdict::Unknown;
        }
        if d.module == expected {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(module: usize, vote_fraction: f64, observations: u64) -> WindowedDecision {
        WindowedDecision {
            module,
            vote_fraction,
            confidence_ema: 0.9,
            observations,
        }
    }

    #[test]
    fn unregistered_is_unknown() {
        let reg = DeviceRegistry::new();
        let v = Verdict::evaluate(
            &reg,
            VerdictPolicy::default(),
            MacAddr::station(1),
            Some(&decision(0, 1.0, 100)),
        );
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn matching_majority_accepts() {
        let mut reg = DeviceRegistry::new();
        reg.register(MacAddr::station(1), DeviceId(3));
        let v = Verdict::evaluate(
            &reg,
            VerdictPolicy::default(),
            MacAddr::station(1),
            Some(&decision(3, 0.8, 50)),
        );
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn mismatching_majority_rejects() {
        let mut reg = DeviceRegistry::new();
        reg.register(MacAddr::station(1), DeviceId(3));
        let v = Verdict::evaluate(
            &reg,
            VerdictPolicy::default(),
            MacAddr::station(1),
            Some(&decision(5, 0.9, 50)),
        );
        assert_eq!(v, Verdict::Reject);
    }

    #[test]
    fn thin_evidence_is_unknown() {
        let mut reg = DeviceRegistry::new();
        reg.register(MacAddr::station(1), DeviceId(3));
        let policy = VerdictPolicy::default();
        // Too few observations.
        assert_eq!(
            Verdict::evaluate(
                &reg,
                policy,
                MacAddr::station(1),
                Some(&decision(3, 0.9, 2))
            ),
            Verdict::Unknown
        );
        // Unstable majority.
        assert_eq!(
            Verdict::evaluate(
                &reg,
                policy,
                MacAddr::station(1),
                Some(&decision(3, 0.4, 50))
            ),
            Verdict::Unknown
        );
        // No decision yet.
        assert_eq!(
            Verdict::evaluate(&reg, policy, MacAddr::station(1), None),
            Verdict::Unknown
        );
    }
}
