//! The device registry: which module identity each beamformee stream is
//! expected to present, and the accept/reject/unknown policy.

use crate::window::WindowedDecision;
use deepcsi_frame::MacAddr;
use deepcsi_impair::DeviceId;
use std::collections::HashMap;

/// Expected module identity per registered source address.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceRegistry {
    expected: HashMap<MacAddr, DeviceId>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or overwrites) the expected module for a source
    /// address.
    pub fn register(&mut self, mac: MacAddr, module: DeviceId) {
        self.expected.insert(mac, module);
    }

    /// The expected module for a source, if registered.
    pub fn expected(&self, mac: MacAddr) -> Option<DeviceId> {
        self.expected.get(&mac).copied()
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.expected.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.expected.is_empty()
    }

    /// Iterates over `(source, expected module)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, DeviceId)> + '_ {
        self.expected.iter().map(|(m, d)| (*m, *d))
    }
}

/// The verdict policy: how much windowed evidence authentication needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictPolicy {
    /// Minimum reports observed before any verdict is issued.
    pub min_observations: u64,
    /// Minimum majority fraction for an [`Verdict::Accept`] (and for a
    /// confident [`Verdict::Reject`] of a mismatching majority).
    pub min_vote_fraction: f64,
}

impl Default for VerdictPolicy {
    fn default() -> Self {
        VerdictPolicy {
            min_observations: 10,
            min_vote_fraction: 0.6,
        }
    }
}

/// The authentication outcome for one device stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The stream's windowed identity matches the registration.
    Accept,
    /// The stream confidently presents a different identity — a likely
    /// impersonation.
    Reject,
    /// Not enough evidence, an unregistered source, or an unstable
    /// majority.
    Unknown,
}

impl Verdict {
    /// Applies `policy` to a windowed decision for `mac`.
    pub fn evaluate(
        registry: &DeviceRegistry,
        policy: VerdictPolicy,
        mac: MacAddr,
        decision: Option<&WindowedDecision>,
    ) -> Verdict {
        let Some(expected) = registry.expected(mac) else {
            return Verdict::Unknown;
        };
        let Some(d) = decision else {
            return Verdict::Unknown;
        };
        if d.observations < policy.min_observations || d.vote_fraction < policy.min_vote_fraction {
            return Verdict::Unknown;
        }
        if d.module == expected.0 as usize {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(module: usize, vote_fraction: f64, observations: u64) -> WindowedDecision {
        WindowedDecision {
            module,
            vote_fraction,
            confidence_ema: 0.9,
            observations,
        }
    }

    #[test]
    fn unregistered_is_unknown() {
        let reg = DeviceRegistry::new();
        let v = Verdict::evaluate(
            &reg,
            VerdictPolicy::default(),
            MacAddr::station(1),
            Some(&decision(0, 1.0, 100)),
        );
        assert_eq!(v, Verdict::Unknown);
    }

    #[test]
    fn matching_majority_accepts() {
        let mut reg = DeviceRegistry::new();
        reg.register(MacAddr::station(1), DeviceId(3));
        let v = Verdict::evaluate(
            &reg,
            VerdictPolicy::default(),
            MacAddr::station(1),
            Some(&decision(3, 0.8, 50)),
        );
        assert_eq!(v, Verdict::Accept);
    }

    #[test]
    fn mismatching_majority_rejects() {
        let mut reg = DeviceRegistry::new();
        reg.register(MacAddr::station(1), DeviceId(3));
        let v = Verdict::evaluate(
            &reg,
            VerdictPolicy::default(),
            MacAddr::station(1),
            Some(&decision(5, 0.9, 50)),
        );
        assert_eq!(v, Verdict::Reject);
    }

    #[test]
    fn thin_evidence_is_unknown() {
        let mut reg = DeviceRegistry::new();
        reg.register(MacAddr::station(1), DeviceId(3));
        let policy = VerdictPolicy::default();
        // Too few observations.
        assert_eq!(
            Verdict::evaluate(
                &reg,
                policy,
                MacAddr::station(1),
                Some(&decision(3, 0.9, 2))
            ),
            Verdict::Unknown
        );
        // Unstable majority.
        assert_eq!(
            Verdict::evaluate(
                &reg,
                policy,
                MacAddr::station(1),
                Some(&decision(3, 0.4, 50))
            ),
            Verdict::Unknown
        );
        // No decision yet.
        assert_eq!(
            Verdict::evaluate(&reg, policy, MacAddr::station(1), None),
            Verdict::Unknown
        );
    }
}
