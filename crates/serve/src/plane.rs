//! The live observability plane: an embedded HTTP scrape surface plus
//! an online SLO monitor, bolted onto a running [`Engine`] purely as an
//! observer.
//!
//! [`ObsPlane::start`] borrows the engine's shared handles (telemetry,
//! audit log, live layer profile), binds a
//! [`deepcsi_obs::ObsServer`], and spawns one ticker thread that
//! periodically feeds a [`SloMonitor`] from telemetry snapshots. The
//! engine never learns the plane exists: every endpoint reads
//! lock-free counters or observer-side locks, so decision outputs are
//! bit-identical with the plane on or dark.
//!
//! Endpoints (all `GET`, `Connection: close`):
//!
//! | path | payload |
//! |---|---|
//! | `/metrics` | Prometheus text: every engine metric + plane gauges |
//! | `/stats.json` | the same registry as one JSON object |
//! | `/healthz` | latest [`HealthReport`] JSON; `503` when failing |
//! | `/readyz` | readiness JSON; `503` until serving / after drain |
//! | `/profile` | per-layer inference profile as a JSON array |
//! | `/audit/tail?n=N` | last `N` audit events, oldest first |

use crate::engine::{Engine, LayerProfile};
use crate::telemetry::Telemetry;
use deepcsi_obs::{
    AuditLog, HealthReport, HealthState, HttpRequest, HttpResponse, ObsServer, ObsServerConfig,
    SloConfig, SloMonitor, SloSample,
};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Extra metric source attached to a plane: called on every
/// `/metrics` / `/stats.json` render so a host (e.g. the cluster tier)
/// can publish its own gauges next to the engine's.
pub type ExtraMetrics = Arc<dyn Fn(&mut deepcsi_obs::MetricsRegistry) + Send + Sync>;

/// Configuration for [`ObsPlane::start`].
#[derive(Clone)]
pub struct ObsPlaneConfig {
    /// Listen address (`"127.0.0.1:9644"`; port `0` picks a free port —
    /// read it back with [`ObsPlane::local_addr`]).
    pub listen: String,
    /// HTTP server limits (connections, timeouts, request-size cap).
    pub http: ObsServerConfig,
    /// SLO thresholds for the online health monitor.
    pub slo: SloConfig,
    /// How often the SLO monitor samples telemetry (and the audit log is
    /// flushed). Tests use an effectively-infinite interval and drive
    /// ticks by hand via [`ObsPlane::tick_now`].
    pub slo_interval: Duration,
    /// Optional host metric source, rendered into every `/metrics` and
    /// `/stats.json` response after the engine's own registry (the
    /// cluster tier publishes its per-connection/per-shard gauges
    /// here).
    pub extra: Option<ExtraMetrics>,
}

impl std::fmt::Debug for ObsPlaneConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsPlaneConfig")
            .field("listen", &self.listen)
            .field("http", &self.http)
            .field("slo", &self.slo)
            .field("slo_interval", &self.slo_interval)
            .field("extra", &self.extra.as_ref().map(|_| "Fn"))
            .finish()
    }
}

impl Default for ObsPlaneConfig {
    fn default() -> Self {
        ObsPlaneConfig {
            listen: "127.0.0.1:9644".to_string(),
            http: ObsServerConfig::default(),
            slo: SloConfig::default(),
            slo_interval: Duration::from_secs(1),
            extra: None,
        }
    }
}

/// Everything the request handler and the ticker share.
struct PlaneShared {
    telemetry: Arc<Telemetry>,
    audit: Option<Arc<AuditLog>>,
    profile: Option<LayerProfile>,
    monitor: Mutex<SloMonitor>,
    /// Flipped by the host around the serving window; `/readyz` follows.
    ready: AtomicBool,
    /// The latest SLO evaluation (`None` before the first tick).
    health: Mutex<Option<HealthReport>>,
    /// Host metric source (see [`ObsPlaneConfig::extra`]).
    extra: Option<ExtraMetrics>,
}

impl PlaneShared {
    /// One SLO evaluation: sample cumulative telemetry, feed the
    /// monitor, publish the report, and flush the audit log so tailing
    /// the `--audit-file` stays near-real-time.
    fn tick(&self) -> HealthReport {
        let stats = self.telemetry.snapshot();
        let sample = SloSample {
            latency: self.telemetry.batch_latency.export(),
            ingested: stats.ingested,
            dropped: stats.dropped,
            rejected: stats.rejected,
            classified: stats.classified,
            // No frame source attached means there is nothing to
            // reconcile — treat as healthy rather than permanently
            // breaching.
            capture_reconciled: stats.capture_packets == 0 || stats.capture_reconciles(),
        };
        let report = self.monitor.lock().unwrap().observe(sample);
        *self.health.lock().unwrap() = Some(report.clone());
        if let Some(audit) = &self.audit {
            audit.flush();
        }
        report
    }

    fn route(&self, req: &HttpRequest) -> HttpResponse {
        match req.path.as_str() {
            "/metrics" => HttpResponse::text(self.render_metrics()),
            "/stats.json" => HttpResponse::json(self.render_registry_json()),
            "/healthz" => {
                let (body, state) = match self.health.lock().unwrap().as_ref() {
                    Some(report) => (report.to_json(), report.state),
                    // Before the first tick nothing has been evaluated;
                    // report a neutral ok so probes don't flap at boot.
                    None => (
                        "{\"state\":\"ok\",\"tick\":0,\"consecutive_breaching\":0,\"rules\":[]}"
                            .to_string(),
                        HealthState::Ok,
                    ),
                };
                let resp = HttpResponse::json(body);
                if state == HealthState::Failing {
                    resp.with_status(503)
                } else {
                    resp
                }
            }
            "/readyz" => {
                let ready = self.ready.load(Ordering::Relaxed);
                let resp = HttpResponse::json(format!("{{\"ready\":{ready}}}"));
                if ready {
                    resp
                } else {
                    resp.with_status(503)
                }
            }
            "/profile" => match &self.profile {
                None => HttpResponse::json("{\"error\":\"profiling off (run with --profile)\"}")
                    .with_status(404),
                Some(profile) => HttpResponse::json(render_profile(profile)),
            },
            "/audit/tail" => match &self.audit {
                None => HttpResponse::json("{\"error\":\"audit trail off\"}").with_status(404),
                Some(audit) => {
                    let n = req.query_u64("n").unwrap_or(100).min(100_000) as usize;
                    let mut out = String::from("[");
                    for (i, ev) in audit.tail(n).iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&ev.to_json());
                    }
                    out.push(']');
                    HttpResponse::json(out)
                }
            },
            _ => HttpResponse::not_found(),
        }
    }

    /// The engine registry plus the plane's own gauges, as Prometheus
    /// text.
    fn render_metrics(&self) -> String {
        self.registry().to_prometheus()
    }

    /// The same registry as one JSON object (`/stats.json`).
    fn render_registry_json(&self) -> String {
        self.registry().to_json_line()
    }

    fn registry(&self) -> deepcsi_obs::MetricsRegistry {
        let mut reg = self.telemetry.metrics();
        let state = match self.health.lock().unwrap().as_ref() {
            Some(report) => report.state,
            None => HealthState::Ok,
        };
        reg.gauge(
            "deepcsi_health_state",
            "SLO health state (0 ok, 1 degraded, 2 failing).",
            match state {
                HealthState::Ok => 0.0,
                HealthState::Degraded => 1.0,
                HealthState::Failing => 2.0,
            },
        );
        if let Some(audit) = &self.audit {
            reg.counter(
                "deepcsi_audit_events_total",
                "Verdict audit events appended.",
                audit.appended(),
            );
            reg.counter(
                "deepcsi_audit_write_errors_total",
                "Audit JSONL write failures (events kept in the ring).",
                audit.write_errors(),
            );
        }
        if let Some(extra) = &self.extra {
            extra(&mut reg);
        }
        reg
    }
}

/// JSON array rendering of the merged per-layer profile (op names are
/// compile-time identifiers, so no escaping is needed).
fn render_profile(profile: &LayerProfile) -> String {
    let mut out = String::from("[");
    for (i, op) in profile.merged().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"calls\":{},\"ns\":{},\"bytes\":{},\"samples\":{},\"ns_per_sample\":{:.1}}}",
            op.name,
            op.calls,
            op.ns,
            op.bytes,
            op.samples,
            op.ns_per_sample(),
        ));
    }
    out.push(']');
    out
}

/// A running observability plane: HTTP server + SLO ticker attached to
/// one engine. Dropping it (or calling [`ObsPlane::shutdown`]) stops
/// both threadsets; the engine is unaffected.
pub struct ObsPlane {
    server: ObsServer,
    shared: Arc<PlaneShared>,
    ticker_stop: mpsc::Sender<()>,
    ticker: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsPlane")
            .field("addr", &self.server.local_addr())
            .finish_non_exhaustive()
    }
}

impl ObsPlane {
    /// Binds the scrape server and starts the SLO ticker, observing
    /// `engine`. Fails only if the listen address cannot be bound.
    ///
    /// The plane starts *not ready* — call [`ObsPlane::set_ready`] once
    /// the host begins serving traffic.
    pub fn start(cfg: ObsPlaneConfig, engine: &Engine) -> io::Result<ObsPlane> {
        let shared = Arc::new(PlaneShared {
            telemetry: engine.telemetry_handle(),
            audit: engine.audit_handle(),
            profile: engine.profile_handle(),
            monitor: Mutex::new(SloMonitor::new(cfg.slo)),
            ready: AtomicBool::new(false),
            health: Mutex::new(None),
            extra: cfg.extra.clone(),
        });
        let handler = {
            let shared = Arc::clone(&shared);
            Arc::new(move |req: &HttpRequest| shared.route(req))
        };
        let server = ObsServer::bind(&cfg.listen, cfg.http, handler)?;
        let (ticker_stop, rx) = mpsc::channel::<()>();
        let ticker = {
            let shared = Arc::clone(&shared);
            let interval = cfg.slo_interval.max(Duration::from_millis(1));
            std::thread::Builder::new()
                .name("deepcsi-slo-ticker".to_string())
                .spawn(move || loop {
                    match rx.recv_timeout(interval) {
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            shared.tick();
                        }
                        // Stop signal, or the plane was dropped.
                        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
                    }
                })
                .expect("spawn SLO ticker")
        };
        Ok(ObsPlane {
            server,
            shared,
            ticker_stop,
            ticker: Some(ticker),
        })
    }

    /// The bound scrape address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Flips `/readyz` between `200` and `503`.
    pub fn set_ready(&self, ready: bool) {
        self.shared.ready.store(ready, Ordering::Relaxed);
    }

    /// Runs one SLO evaluation immediately (in addition to the timer)
    /// and returns the report. Deterministic tests pair this with a
    /// very long `slo_interval`.
    pub fn tick_now(&self) -> HealthReport {
        self.shared.tick()
    }

    /// The latest health report (`None` before the first tick).
    pub fn health(&self) -> Option<HealthReport> {
        self.shared.health.lock().unwrap().clone()
    }

    /// Structured breach events recorded so far, oldest first.
    pub fn breaches(&self) -> Vec<deepcsi_obs::SloBreach> {
        self.shared
            .monitor
            .lock()
            .unwrap()
            .events()
            .cloned()
            .collect()
    }

    /// Stops the ticker and the HTTP server. The engine keeps running.
    pub fn shutdown(mut self) {
        let _ = self.ticker_stop.send(());
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        self.server.shutdown();
    }
}
