//! # deepcsi-serve — the streaming authentication engine
//!
//! DeepCSI's deployment story (§III-C, §IV-A) is a passive monitor that
//! continuously sniffs VHT compressed beamforming frames and fingerprints
//! the transmitter. This crate turns the one-shot
//! [`deepcsi_core::Authenticator`] into that online system: a byte
//! stream of captured frames goes in, per-device identity verdicts come
//! out, at line rate.
//!
//! The engine ([`Engine`]) is built from four pieces:
//!
//! * **Sharded ingest** — frames are parsed and routed to a worker ring
//!   by a hash of the source MAC (the paper's "filter on the packets
//!   source address"), over bounded queues with explicit
//!   backpressure/drop accounting ([`Backpressure`]).
//! * **Micro-batched inference over one shared frozen model** — every
//!   worker holds the same `Arc<deepcsi_core::FrozenAuthenticator>`
//!   (immutable weights, no per-worker clone) plus its own persistent
//!   [`deepcsi_nn::InferPool`]; batches are formed by a fixed or
//!   latency-adaptive former ([`BatchFormer`]) and classified with one
//!   pool call, so one pass of every weight matrix serves the whole
//!   batch — [`EngineConfig::infer_threads`] sizes the pool, which
//!   splits each batch's lane blocks across its parked lanes
//!   bit-exactly, with no spawn/join on the hot path.
//! * **Decision policies** — per-report predictions feed one
//!   [`PolicyState`] per device, built by a pluggable
//!   [`DecisionPolicy`]: [`FixedMajority`] (sliding-window majority +
//!   confidence EMA, the default), [`ConfidenceWeighted`]
//!   (confidence-weighted votes with posterior-mass early exit) or
//!   [`AdaptiveThreshold`] (per-device accept floors learned from each
//!   stream's own confidence distribution).
//! * **Registry + telemetry** — [`DeviceRegistry`] holds each stream's
//!   expected identity and the policy yields [`Verdict::Accept`] /
//!   [`Verdict::Reject`] / [`Verdict::Unknown`]; [`Telemetry`] tracks
//!   ingest/decode/drop counts, micro-batch latency (p50/p99) and the
//!   policy's reports-to-verdict distribution.
//!
//! Frames can come from memory ([`ReplaySource`]) or from capture files
//! via `deepcsi_capture`: [`Engine::ingest_available`] pulls from any
//! [`deepcsi_capture::FrameSource`] (finite pcap/pcapng files, or a
//! `tail -f` follow source), mirroring the capture layer's
//! bytes/packets/skips/errors counters into the engine telemetry so
//! `enqueued` reconciles against what the monitor actually saw.
//! [`ReplaySource::write_pcap`] closes the loop by exporting any
//! synthetic dataset as a valid radiotap capture.
//!
//! An optional **live observability plane** ([`ObsPlane`]) attaches to
//! a running engine as a pure observer: an embedded HTTP scrape surface
//! (`/metrics`, `/stats.json`, `/healthz`, `/readyz`, `/profile`,
//! `/audit/tail`), an online SLO monitor driving
//! ok → degraded → failing health transitions, and — when
//! [`EngineConfig::audit`] is set — a structured per-verdict audit
//! trail. [`MetricsEmitter`] covers periodic file-based export and
//! flushes the final partial interval on stop. Verdicts are
//! bit-identical with the plane on or dark.
//!
//! ## Quickstart
//!
//! ```no_run
//! use deepcsi_serve::{Engine, EngineConfig, ReplaySource};
//! # fn auth() -> deepcsi_core::Authenticator { unimplemented!() }
//! # let dataset = deepcsi_data::Dataset::default();
//! let replay = ReplaySource::from_dataset(&dataset);
//! let engine = Engine::start(
//!     EngineConfig::default(),
//!     auth(),
//!     ReplaySource::registry(&dataset),
//! );
//! for frame in replay.frames() {
//!     engine.ingest_frame(frame);
//! }
//! let report = engine.shutdown();
//! println!("{}", report.stats);
//! for d in &report.decisions {
//!     println!("{}: {:?}", d.source, d.verdict);
//! }
//! ```
//!
//! The `deepcsi-served` binary wraps exactly this loop around a stored
//! or synthesized [`deepcsi_data::Dataset`]; `examples/streaming_auth.rs`
//! in the workspace root is the narrated version.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod engine;
mod plane;
mod policy;
mod registry;
mod replay;
mod snapshot;
mod telemetry;
mod window;

pub use deepcsi_core::Precision;
pub use emit::{emit_metrics, MetricsEmitter};
pub use engine::{
    shard_of, AuditConfig, Backpressure, BatchFormer, DeviceDecision, Engine, EngineConfig,
    EngineReport, IngestOutcome, LayerProfile, SourceStatus,
};
pub use plane::{ExtraMetrics, ObsPlane, ObsPlaneConfig};
pub use policy::{
    AdaptiveParams, AdaptiveThreshold, AdaptiveThresholdState, ConfidenceWeighted,
    ConfidenceWeightedState, DecisionPolicy, DecisionPolicyConfig, FixedMajority,
    FixedMajorityState, PolicyKind, PolicySnapshot, PolicyState, WelfordSnapshot,
};
pub use registry::{DeviceRegistry, Verdict, VerdictPolicy};
pub use replay::ReplaySource;
pub use snapshot::{crc32, DeviceSnapshot, EngineSnapshot, SnapshotError};
pub use telemetry::{
    EngineStats, LatencyHistogram, ReportCountHistogram, Stage, StageSnapshot, StatsDelta,
    Telemetry,
};
pub use window::{DecisionWindow, WindowConfig, WindowSnapshot, WindowedDecision};
