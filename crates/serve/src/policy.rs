//! Pluggable decision policies: how per-report classifications become
//! per-device verdicts.
//!
//! DeepCSI's Fig. 15 stream-1-only study shows per-stream report quality
//! varies widely, so one fixed smoothing window is the wrong shape for
//! every device at once: clean streams wait longer than they need to,
//! and noisy impostors get the same benefit of the doubt as stable
//! registrants. A [`DecisionPolicy`] makes the verdict logic a seam —
//! the engine instantiates one [`PolicyState`] per device stream and
//! feeds it `(module, confidence)` pairs; the state answers with a
//! [`WindowedDecision`] and a [`Verdict`] whenever asked.
//!
//! Three policies ship:
//!
//! * [`FixedMajority`] — the classic fixed-length majority window.
//!   This is the default and is *verdict-identical* to the pre-policy
//!   engine: same window, same [`VerdictPolicy`] gates, same
//!   tie-breaks.
//! * [`ConfidenceWeighted`] — votes are weighted by per-report
//!   classifier confidence and the policy early-exits the moment one
//!   module holds a configurable share of the posterior mass. Clean
//!   streams decide in a handful of reports instead of a full
//!   `min_observations` wait.
//! * [`AdaptiveThreshold`] — per-device accept thresholds learned
//!   online from each device's own confidence distribution during a
//!   calibration warm-up. A stream whose confidence later falls below
//!   its own learned floor is flagged even when the majority module
//!   still matches — the impersonation case a pure majority vote
//!   cannot see. Thresholds only ratchet *tighter* online (upward
//!   drift re-calibrates; downward drift is treated as suspicion, never
//!   as a reason to loosen) — unless per-position calibration
//!   ([`AdaptiveParams::per_position`]) is enabled, which re-profiles a
//!   stream whose confidence steps down (a device that *moved*) instead
//!   of flagging it forever.
//!
//! ```
//! use deepcsi_serve::{
//!     DecisionPolicy, FixedMajority, Verdict, VerdictPolicy, WindowConfig,
//! };
//!
//! let policy = FixedMajority::new(WindowConfig::default(), VerdictPolicy::default());
//! let mut device = policy.new_state();
//! for _ in 0..12 {
//!     device.push(3, 0.9); // module 3, 90 % classifier confidence
//! }
//! assert_eq!(device.verdict(Some(3)), Verdict::Accept);
//! assert_eq!(device.verdict(Some(7)), Verdict::Reject);
//! assert_eq!(device.verdict(None), Verdict::Unknown); // unregistered
//! ```

use crate::registry::{Verdict, VerdictPolicy};
use crate::window::{DecisionWindow, WindowConfig, WindowSnapshot, WindowedDecision};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Which [`DecisionPolicy`] implementation an engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// Fixed-length majority window (the pre-policy engine behavior).
    #[default]
    FixedMajority,
    /// Confidence-weighted votes with posterior-mass early exit.
    ConfidenceWeighted,
    /// Per-device thresholds learned from the stream's own confidence.
    AdaptiveThreshold,
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fixed" | "fixed-majority" => Ok(PolicyKind::FixedMajority),
            "confidence" | "confidence-weighted" => Ok(PolicyKind::ConfidenceWeighted),
            "adaptive" | "adaptive-threshold" => Ok(PolicyKind::AdaptiveThreshold),
            other => Err(format!(
                "unknown policy {other:?} (expected fixed | confidence | adaptive)"
            )),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PolicyKind::FixedMajority => "fixed",
            PolicyKind::ConfidenceWeighted => "confidence",
            PolicyKind::AdaptiveThreshold => "adaptive",
        })
    }
}

/// Construction knobs for every shipped policy, plus which one to build.
///
/// The engine combines this with its [`WindowConfig`] and
/// [`VerdictPolicy`] (the smoothing and evidence gates every policy
/// shares) in [`DecisionPolicyConfig::build`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionPolicyConfig {
    /// Which implementation to build.
    pub kind: PolicyKind,
    /// [`ConfidenceWeighted`]: posterior mass one module must hold for a
    /// verdict, in `(0.5, 1]`.
    pub posterior_mass: f64,
    /// [`ConfidenceWeighted`]: minimum total confidence weight before
    /// any verdict (the early-exit floor — roughly "this many fully
    /// confident reports").
    pub min_weight: f64,
    /// [`AdaptiveThreshold`]: calibration warm-up length in reports.
    pub warmup: u64,
    /// [`AdaptiveThreshold`]: accept threshold is
    /// `mean − margin_sigmas · σ` of the calibrated confidence.
    pub margin_sigmas: f64,
    /// [`AdaptiveThreshold`]: floor on the calibrated σ, so a perfectly
    /// stable stream still tolerates tiny confidence jitter.
    pub min_sigma: f64,
    /// [`AdaptiveThreshold`]: upward drift beyond
    /// `mean + drift_sigmas · σ` re-enters calibration (thresholds only
    /// ever tighten).
    pub drift_sigmas: f64,
    /// [`AdaptiveThreshold`]: per-position calibration. Confidence
    /// drifting *below* the calibrated band re-calibrates the profile to
    /// the stream's new operating point (a device moved; the channel
    /// changed) instead of being flagged forever, and the calibration
    /// also learns a position-local vote-fraction gate. See
    /// [`AdaptiveParams::per_position`] for the security trade-off.
    pub per_position: bool,
}

impl Default for DecisionPolicyConfig {
    fn default() -> Self {
        DecisionPolicyConfig {
            kind: PolicyKind::default(),
            posterior_mass: 0.9,
            min_weight: 3.0,
            warmup: 20,
            margin_sigmas: 3.0,
            min_sigma: 0.02,
            drift_sigmas: 4.0,
            per_position: false,
        }
    }
}

impl DecisionPolicyConfig {
    /// Builds the configured policy around the engine's shared window
    /// and verdict parameters.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (zero-length window, alpha outside
    /// `(0, 1]`, posterior mass outside `(0.5, 1]`, non-positive
    /// weights/warm-up), so a bad configuration fails on the caller
    /// thread instead of inside a worker.
    pub fn build(&self, window: WindowConfig, verdict: VerdictPolicy) -> Arc<dyn DecisionPolicy> {
        match self.kind {
            PolicyKind::FixedMajority => Arc::new(FixedMajority::new(window, verdict)),
            PolicyKind::ConfidenceWeighted => Arc::new(ConfidenceWeighted::new(
                window,
                verdict,
                self.posterior_mass,
                self.min_weight,
            )),
            PolicyKind::AdaptiveThreshold => Arc::new(AdaptiveThreshold::new(
                window,
                verdict,
                AdaptiveParams {
                    warmup: self.warmup,
                    margin_sigmas: self.margin_sigmas,
                    min_sigma: self.min_sigma,
                    drift_sigmas: self.drift_sigmas,
                    per_position: self.per_position,
                },
            )),
        }
    }
}

/// A verdict strategy: a factory for per-device [`PolicyState`]s.
///
/// The engine holds one policy and creates one state per device stream
/// (states never migrate between shards, so they need [`Send`] but not
/// [`Sync`]).
pub trait DecisionPolicy: Send + Sync + fmt::Debug {
    /// Stable short name (used in telemetry and `BENCH_policy.json`
    /// keys).
    fn name(&self) -> &'static str;

    /// Fresh evidence state for one device stream.
    fn new_state(&self) -> Box<dyn PolicyState>;

    /// Rebuilds a state from a [`PolicySnapshot`] under *this* policy's
    /// configuration. Returns `None` when the snapshot was taken under a
    /// different [`PolicyKind`] — restoring, say, adaptive floors into a
    /// fixed-majority engine would silently discard the learned gates,
    /// so a kind mismatch refuses instead.
    ///
    /// Restoring under the same configuration the snapshot was taken
    /// with is *bit-exact*: the restored state answers
    /// [`decision`](PolicyState::decision) and
    /// [`verdict`](PolicyState::verdict) identically to the original at
    /// every step of any continued stream.
    fn restore_state(&self, snap: &PolicySnapshot) -> Option<Box<dyn PolicyState>>;
}

/// The accumulated evidence of one device stream under one policy.
pub trait PolicyState: Send + fmt::Debug {
    /// Feeds one classified report: predicted module and classifier
    /// confidence in `[0, 1]`.
    fn push(&mut self, module: usize, confidence: f64);

    /// The current smoothed decision; `None` before the first report
    /// (mirroring [`DecisionWindow::decision`]).
    fn decision(&self) -> Option<WindowedDecision>;

    /// The verdict given the registry's expected module for this stream
    /// (`None` when the source is unregistered, which is always
    /// [`Verdict::Unknown`]).
    fn verdict(&self, expected: Option<usize>) -> Verdict;

    /// A plain-data image of this state, restorable via
    /// [`DecisionPolicy::restore_state`].
    fn save(&self) -> PolicySnapshot;
}

/// Plain-data image of a Welford accumulator (part of
/// [`PolicySnapshot::Adaptive`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WelfordSnapshot {
    /// Samples accumulated.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations (Welford's `M2`).
    pub m2: f64,
}

/// A policy-agnostic image of one device stream's evidence, produced by
/// [`PolicyState::save`] and consumed by
/// [`DecisionPolicy::restore_state`].
///
/// Snapshots carry *state*, not configuration: window length, gates,
/// margins, and warm-up come from the restoring policy. Restoring under
/// the same configuration is bit-exact; restoring under a different one
/// applies the new configuration to the saved evidence (e.g. a shorter
/// window drops the oldest votes).
#[derive(Debug, Clone, PartialEq)]
pub enum PolicySnapshot {
    /// [`FixedMajority`] evidence: the decision window.
    Fixed {
        /// The smoothing window.
        window: WindowSnapshot,
    },
    /// [`ConfidenceWeighted`] evidence.
    Confidence {
        /// Live `(module, clamped weight)` votes, oldest first.
        votes: Vec<(usize, f64)>,
        /// Summed weight per module — stored verbatim rather than
        /// recomputed so restore is bit-exact (a rebuilt sum can differ
        /// from the incrementally maintained one in the last ulp).
        weights: Vec<f64>,
        /// The confidence EMA.
        ema: Option<f64>,
        /// Total reports observed.
        observations: u64,
    },
    /// [`AdaptiveThreshold`] evidence: window plus learned calibration.
    Adaptive {
        /// The smoothing window.
        window: WindowSnapshot,
        /// In-progress confidence calibration.
        calib: WelfordSnapshot,
        /// In-progress vote-fraction calibration.
        vote_calib: WelfordSnapshot,
        /// Last completed calibration `(mean, sigma)`.
        profile: Option<(f64, f64)>,
        /// The learned accept floor.
        threshold: Option<f64>,
        /// The learned position-local vote gate.
        vote_gate: Option<f64>,
    },
}

impl PolicySnapshot {
    /// Which policy this snapshot was taken under.
    pub fn kind(&self) -> PolicyKind {
        match self {
            PolicySnapshot::Fixed { .. } => PolicyKind::FixedMajority,
            PolicySnapshot::Confidence { .. } => PolicyKind::ConfidenceWeighted,
            PolicySnapshot::Adaptive { .. } => PolicyKind::AdaptiveThreshold,
        }
    }
}

// ---------------------------------------------------------------------------
// FixedMajority
// ---------------------------------------------------------------------------

/// The fixed-length majority window — the engine's default policy and
/// the exact pre-policy behavior: a [`DecisionWindow`] smoothed stream
/// gated by a [`VerdictPolicy`].
///
/// ```
/// use deepcsi_serve::{DecisionPolicy, FixedMajority, Verdict, VerdictPolicy, WindowConfig};
///
/// let policy = FixedMajority::new(WindowConfig::default(), VerdictPolicy::default());
/// let mut s = policy.new_state();
/// s.push(1, 0.8);
/// // One report is far below `min_observations`.
/// assert_eq!(s.verdict(Some(1)), Verdict::Unknown);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FixedMajority {
    window: WindowConfig,
    verdict: VerdictPolicy,
}

impl FixedMajority {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics on an invalid window configuration.
    pub fn new(window: WindowConfig, verdict: VerdictPolicy) -> Self {
        // Validate eagerly: every state construction would panic anyway,
        // but failing here beats failing inside a worker thread.
        drop(DecisionWindow::new(window));
        FixedMajority { window, verdict }
    }
}

impl FixedMajority {
    /// A fresh concrete state (the trait-object-free form of
    /// [`DecisionPolicy::new_state`]).
    pub fn state(&self) -> FixedMajorityState {
        FixedMajorityState {
            window: DecisionWindow::new(self.window),
            verdict: self.verdict,
        }
    }
}

impl DecisionPolicy for FixedMajority {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn new_state(&self) -> Box<dyn PolicyState> {
        Box::new(self.state())
    }

    fn restore_state(&self, snap: &PolicySnapshot) -> Option<Box<dyn PolicyState>> {
        let PolicySnapshot::Fixed { window } = snap else {
            return None;
        };
        Some(Box::new(FixedMajorityState {
            window: DecisionWindow::restore(self.window, window),
            verdict: self.verdict,
        }))
    }
}

/// Per-device state of [`FixedMajority`].
#[derive(Debug, Clone)]
pub struct FixedMajorityState {
    window: DecisionWindow,
    verdict: VerdictPolicy,
}

impl PolicyState for FixedMajorityState {
    fn push(&mut self, module: usize, confidence: f64) {
        self.window.push(module, confidence);
    }

    fn decision(&self) -> Option<WindowedDecision> {
        self.window.decision()
    }

    fn verdict(&self, expected: Option<usize>) -> Verdict {
        let Some(expected) = expected else {
            return Verdict::Unknown;
        };
        match self.window.decision() {
            Some(d) => Verdict::from_decision(self.verdict, expected, &d),
            None => Verdict::Unknown,
        }
    }

    fn save(&self) -> PolicySnapshot {
        PolicySnapshot::Fixed {
            window: self.window.snapshot(),
        }
    }
}

// ---------------------------------------------------------------------------
// ConfidenceWeighted
// ---------------------------------------------------------------------------

/// Confidence-weighted voting with posterior-mass early exit.
///
/// Each report votes with weight equal to its classifier confidence; the
/// stream decides as soon as one module holds at least `posterior_mass`
/// of the total weight **and** the total weight clears `min_weight` —
/// so a clean stream of ~0.9-confidence reports reaches a verdict in
/// about `min_weight / 0.9` reports instead of waiting out a fixed
/// `min_observations` count. Noisy streams accumulate split weight and
/// simply keep waiting, exactly like an unstable majority.
///
/// ```
/// use deepcsi_serve::{ConfidenceWeighted, DecisionPolicy, Verdict, VerdictPolicy, WindowConfig};
///
/// let policy = ConfidenceWeighted::new(
///     WindowConfig::default(),
///     VerdictPolicy::default(),
///     0.9, // posterior mass required for a verdict
///     3.0, // minimum total confidence weight
/// );
/// let mut s = policy.new_state();
/// for _ in 0..4 {
///     s.push(2, 0.95);
/// }
/// // Four confident agreeing reports: decided, far before a fixed
/// // 10-observation gate would open.
/// assert_eq!(s.verdict(Some(2)), Verdict::Accept);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ConfidenceWeighted {
    window: WindowConfig,
    verdict: VerdictPolicy,
    posterior_mass: f64,
    min_weight: f64,
}

impl ConfidenceWeighted {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics on an invalid window, a posterior mass outside
    /// `(0.5, 1]` (at most one module can hold a majority of the mass)
    /// or a non-positive minimum weight.
    pub fn new(
        window: WindowConfig,
        verdict: VerdictPolicy,
        posterior_mass: f64,
        min_weight: f64,
    ) -> Self {
        drop(DecisionWindow::new(window));
        assert!(
            posterior_mass > 0.5 && posterior_mass <= 1.0,
            "posterior_mass must be in (0.5, 1]"
        );
        assert!(min_weight > 0.0, "min_weight must be positive");
        ConfidenceWeighted {
            window,
            verdict,
            posterior_mass,
            min_weight,
        }
    }
}

impl ConfidenceWeighted {
    /// A fresh concrete state (the trait-object-free form of
    /// [`DecisionPolicy::new_state`]).
    pub fn state(&self) -> ConfidenceWeightedState {
        ConfidenceWeightedState {
            cfg: *self,
            votes: VecDeque::with_capacity(self.window.len),
            weights: Vec::new(),
            ema: None,
            observations: 0,
        }
    }
}

impl DecisionPolicy for ConfidenceWeighted {
    fn name(&self) -> &'static str {
        "confidence"
    }

    fn new_state(&self) -> Box<dyn PolicyState> {
        Box::new(self.state())
    }

    fn restore_state(&self, snap: &PolicySnapshot) -> Option<Box<dyn PolicyState>> {
        let PolicySnapshot::Confidence {
            votes,
            weights,
            ema,
            observations,
        } = snap
        else {
            return None;
        };
        let mut state = ConfidenceWeightedState {
            cfg: *self,
            votes: votes.iter().copied().collect(),
            weights: weights.clone(),
            ema: *ema,
            observations: *observations,
        };
        // A shorter restoring window drops the oldest votes exactly as
        // push() would have expired them (push only evicts at
        // len == cfg.len, so an over-full deque must be trimmed here).
        while state.votes.len() > self.window.len {
            let (expired, w) = state.votes.pop_front().expect("non-empty");
            if let Some(slot) = state.weights.get_mut(expired) {
                *slot = (*slot - w).max(0.0);
            }
        }
        Some(Box::new(state))
    }
}

/// A zero-confidence report still occupies a window slot; this floor
/// keeps the weighted argmax well-defined without letting such a report
/// meaningfully sway the posterior.
const MIN_VOTE_WEIGHT: f64 = 1e-9;

/// Per-device state of [`ConfidenceWeighted`].
#[derive(Debug, Clone)]
pub struct ConfidenceWeightedState {
    cfg: ConfidenceWeighted,
    votes: VecDeque<(usize, f64)>,
    /// Summed confidence weight per module over the live window.
    weights: Vec<f64>,
    ema: Option<f64>,
    observations: u64,
}

impl ConfidenceWeightedState {
    /// `(leading module, its posterior mass, total weight)` over the
    /// window; `None` before the first report. Ties resolve to the
    /// smaller module id, like [`DecisionWindow`].
    fn posterior(&self) -> Option<(usize, f64, f64)> {
        if self.votes.is_empty() {
            return None;
        }
        let (module, &weight) = self
            .weights
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.partial_cmp(b).expect("finite").then(ib.cmp(ia)))
            .expect("weights non-empty");
        let total: f64 = self.weights.iter().sum();
        Some((module, weight / total, total))
    }
}

impl PolicyState for ConfidenceWeightedState {
    fn push(&mut self, module: usize, confidence: f64) {
        let weight = confidence.max(MIN_VOTE_WEIGHT);
        if module >= self.weights.len() {
            self.weights.resize(module + 1, 0.0);
        }
        if self.votes.len() == self.cfg.window.len {
            let (expired, w) = self.votes.pop_front().expect("window non-empty");
            // Clamp at zero: summed floats can drift a hair negative.
            self.weights[expired] = (self.weights[expired] - w).max(0.0);
        }
        self.votes.push_back((module, weight));
        self.weights[module] += weight;
        self.ema = Some(match self.ema {
            None => confidence,
            Some(prev) => prev + self.cfg.window.ema_alpha * (confidence - prev),
        });
        self.observations += 1;
    }

    fn decision(&self) -> Option<WindowedDecision> {
        let (module, mass, _) = self.posterior()?;
        Some(WindowedDecision {
            module,
            // The weighted analogue of the vote fraction: the leading
            // module's share of the window's confidence mass, in (0, 1].
            vote_fraction: mass,
            confidence_ema: self.ema.expect("set with first vote"),
            observations: self.observations,
        })
    }

    fn verdict(&self, expected: Option<usize>) -> Verdict {
        let Some(expected) = expected else {
            return Verdict::Unknown;
        };
        let Some((module, mass, total)) = self.posterior() else {
            return Verdict::Unknown;
        };
        if total < self.cfg.min_weight {
            return Verdict::Unknown;
        }
        // Two ways to a verdict:
        //  * the early exit — one module concentrates `posterior_mass`
        //    of the window's confidence, no matter how young the stream;
        //  * the fallback — the stream has served the same observation
        //    count the fixed policy demands and clears its (weighted)
        //    majority floor, so a stream the fixed window would decide
        //    is never left hanging just because its posterior is spread.
        let early = mass >= self.cfg.posterior_mass;
        let fallback = self.observations >= self.cfg.verdict.min_observations
            && mass >= self.cfg.verdict.min_vote_fraction;
        if !early && !fallback {
            return Verdict::Unknown;
        }
        if module == expected {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }

    fn save(&self) -> PolicySnapshot {
        PolicySnapshot::Confidence {
            votes: self.votes.iter().copied().collect(),
            weights: self.weights.clone(),
            ema: self.ema,
            observations: self.observations,
        }
    }
}

// ---------------------------------------------------------------------------
// AdaptiveThreshold
// ---------------------------------------------------------------------------

/// Internal knobs of [`AdaptiveThreshold`] (see
/// [`DecisionPolicyConfig`] for the user-facing fields).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    /// Calibration warm-up length in reports.
    pub warmup: u64,
    /// Accept threshold is `mean − margin_sigmas · σ`.
    pub margin_sigmas: f64,
    /// Floor on the calibrated σ.
    pub min_sigma: f64,
    /// Upward drift beyond `mean + drift_sigmas · σ` re-calibrates.
    pub drift_sigmas: f64,
    /// Per-position calibration (PR 3 leftover, landed with the scenario
    /// suite). When set, the state treats its calibrated profile as
    /// describing *one serving position*:
    ///
    /// * downward drift beyond `mean − drift_sigmas · σ` re-enters
    ///   calibration instead of rejecting forever — the stream goes
    ///   [`Verdict::Unknown`] while a fresh profile is learned at the
    ///   new operating point, and the threshold is *replaced* (not
    ///   ratcheted) when it completes;
    /// * the calibration also learns a position-local vote-fraction
    ///   gate, `vote_mean − margin_sigmas · σ_vote`, clamped to
    ///   `[0.505, min_vote_fraction]` — a position with honestly noisier
    ///   majorities still reaches verdicts, while a mismatching
    ///   majority (vote share for the *wrong* module) still rejects.
    ///
    /// Trade-off: a confidence collapse is no longer permanent evidence
    /// of impersonation — an impostor who matches the expected module at
    /// a stable (if lower) confidence can be accepted after the
    /// re-calibration window. Enable it for mobile/multi-position
    /// deployments; keep it off when devices are stationary.
    pub per_position: bool,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        let d = DecisionPolicyConfig::default();
        AdaptiveParams {
            warmup: d.warmup,
            margin_sigmas: d.margin_sigmas,
            min_sigma: d.min_sigma,
            drift_sigmas: d.drift_sigmas,
            per_position: d.per_position,
        }
    }
}

/// Hard floor of the learned per-position vote gate: a strict majority.
/// However noisy a position's calibration window was, the leading module
/// must still out-vote all others combined before any verdict.
const MIN_ADAPTIVE_VOTE_GATE: f64 = 0.505;

/// Per-device accept thresholds learned online from each stream's own
/// confidence distribution.
///
/// The first `warmup` reports calibrate a per-device profile of the
/// *smoothed* confidence track (mean and σ of the EMA, via Welford's
/// method); after that the stream must keep its confidence EMA above
/// `mean − margin_sigmas · σ` to stay accepted. A
/// majority-matching stream whose confidence collapses —
/// the low-quality impersonation a fixed majority vote happily accepts —
/// is flagged as [`Verdict::Reject`].
///
/// Drift handling is deliberately asymmetric: confidence drifting
/// *above* the calibrated band re-enters calibration (the channel got
/// cleaner; the threshold may ratchet up), while confidence drifting
/// *below* is exactly the anomaly the policy exists to flag, so it
/// never loosens the threshold. Loosening requires re-registering the
/// device, which resets the state.
///
/// ```
/// use deepcsi_serve::{
///     AdaptiveParams, AdaptiveThreshold, DecisionPolicy, Verdict, VerdictPolicy, WindowConfig,
/// };
///
/// let policy = AdaptiveThreshold::new(
///     WindowConfig::default(),
///     VerdictPolicy::default(),
///     AdaptiveParams {
///         warmup: 10,
///         ..AdaptiveParams::default()
///     },
/// );
/// let mut s = policy.new_state();
/// for _ in 0..10 {
///     s.push(0, 0.95); // calibration: this device reports at ~0.95
/// }
/// assert_eq!(s.verdict(Some(0)), Verdict::Accept);
/// // An impostor presenting the *right* module at the wrong confidence:
/// for _ in 0..25 {
///     s.push(0, 0.55);
/// }
/// assert_eq!(s.verdict(Some(0)), Verdict::Reject); // flagged
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveThreshold {
    window: WindowConfig,
    verdict: VerdictPolicy,
    params: AdaptiveParams,
}

impl AdaptiveThreshold {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics on an invalid window, a zero warm-up, or non-positive
    /// margins.
    pub fn new(window: WindowConfig, verdict: VerdictPolicy, params: AdaptiveParams) -> Self {
        drop(DecisionWindow::new(window));
        assert!(params.warmup > 0, "warmup must be positive");
        assert!(params.margin_sigmas > 0.0, "margin_sigmas must be positive");
        assert!(params.min_sigma > 0.0, "min_sigma must be positive");
        assert!(params.drift_sigmas > 0.0, "drift_sigmas must be positive");
        AdaptiveThreshold {
            window,
            verdict,
            params,
        }
    }
}

impl AdaptiveThreshold {
    /// A fresh concrete state (the trait-object-free form of
    /// [`DecisionPolicy::new_state`]), exposing
    /// [`AdaptiveThresholdState::threshold`] for inspection.
    pub fn state(&self) -> AdaptiveThresholdState {
        AdaptiveThresholdState {
            cfg: *self,
            window: DecisionWindow::new(self.window),
            calib: Welford::default(),
            vote_calib: Welford::default(),
            profile: None,
            threshold: None,
            vote_gate: None,
        }
    }
}

impl DecisionPolicy for AdaptiveThreshold {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn new_state(&self) -> Box<dyn PolicyState> {
        Box::new(self.state())
    }

    fn restore_state(&self, snap: &PolicySnapshot) -> Option<Box<dyn PolicyState>> {
        let PolicySnapshot::Adaptive {
            window,
            calib,
            vote_calib,
            profile,
            threshold,
            vote_gate,
        } = snap
        else {
            return None;
        };
        Some(Box::new(AdaptiveThresholdState {
            cfg: *self,
            window: DecisionWindow::restore(self.window, window),
            calib: Welford::restore(calib),
            vote_calib: Welford::restore(vote_calib),
            profile: *profile,
            threshold: *threshold,
            vote_gate: *vote_gate,
        }))
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn snapshot(&self) -> WelfordSnapshot {
        WelfordSnapshot {
            count: self.count,
            mean: self.mean,
            m2: self.m2,
        }
    }

    fn restore(snap: &WelfordSnapshot) -> Welford {
        Welford {
            count: snap.count,
            mean: snap.mean,
            m2: snap.m2,
        }
    }

    fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    fn sigma(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

/// Per-device state of [`AdaptiveThreshold`].
#[derive(Debug, Clone)]
pub struct AdaptiveThresholdState {
    cfg: AdaptiveThreshold,
    window: DecisionWindow,
    /// The in-progress calibration (initial warm-up or a drift
    /// re-calibration).
    calib: Welford,
    /// Vote-fraction statistics collected alongside `calib`
    /// (per-position mode only).
    vote_calib: Welford,
    /// The last completed calibration: `(mean, sigma)`.
    profile: Option<(f64, f64)>,
    /// The learned accept floor; only ever ratchets upward, unless
    /// per-position mode re-calibrates after a position change.
    threshold: Option<f64>,
    /// The learned position-local vote-fraction gate (per-position mode
    /// only); `None` falls back to the configured `min_vote_fraction`.
    vote_gate: Option<f64>,
}

impl AdaptiveThresholdState {
    /// The learned accept threshold, once calibration has completed.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// The learned position-local vote gate (per-position mode only).
    pub fn vote_gate(&self) -> Option<f64> {
        self.vote_gate
    }

    /// `true` while a (re-)calibration warm-up is collecting reports.
    pub fn calibrating(&self) -> bool {
        self.calib.count < self.cfg.params.warmup
    }

    fn finish_calibration(&mut self) {
        let sigma = self.calib.sigma().max(self.cfg.params.min_sigma);
        let mean = self.calib.mean;
        let candidate = (mean - self.cfg.params.margin_sigmas * sigma).max(0.0);
        if self.cfg.params.per_position {
            // The profile describes *this* position: replace, don't
            // ratchet, so a stream that moved somewhere noisier can
            // settle at its new operating point.
            self.threshold = Some(candidate);
            let vote_sigma = self.vote_calib.sigma().max(self.cfg.params.min_sigma);
            let vote_floor = self.vote_calib.mean - self.cfg.params.margin_sigmas * vote_sigma;
            self.vote_gate = Some(
                vote_floor.clamp(
                    MIN_ADAPTIVE_VOTE_GATE,
                    // Never *looser* than a strict majority, never *tighter*
                    // than the operator's configured gate.
                    self.cfg
                        .verdict
                        .min_vote_fraction
                        .max(MIN_ADAPTIVE_VOTE_GATE),
                ),
            );
        } else {
            // Ratchet: re-calibration may tighten the floor, never
            // loosen it.
            self.threshold = Some(match self.threshold {
                None => candidate,
                Some(old) => old.max(candidate),
            });
        }
        self.profile = Some((mean, sigma));
    }

    /// The majority gates this state currently answers to: the
    /// configured [`VerdictPolicy`], with the vote-fraction floor
    /// replaced by the learned position-local gate when one exists.
    fn effective_gates(&self) -> VerdictPolicy {
        let mut gates = self.cfg.verdict;
        if let Some(gate) = self.vote_gate {
            gates.min_vote_fraction = gate;
        }
        gates
    }
}

impl PolicyState for AdaptiveThresholdState {
    fn push(&mut self, module: usize, confidence: f64) {
        self.window.push(module, confidence);
        // Calibrate on the *smoothed* confidence track — the same EMA
        // the verdict later compares against the threshold, so the
        // learned band has the statistics of the quantity it gates
        // (per-report confidence is far noisier than its EMA).
        let (ema, vote) = match self.window.decision() {
            Some(d) => (d.confidence_ema, d.vote_fraction),
            None => (confidence, 1.0),
        };
        if self.calibrating() {
            self.calib.add(ema);
            self.vote_calib.add(vote);
            if !self.calibrating() {
                self.finish_calibration();
            }
            return;
        }
        // Calibrated: watch for drift out of the calibrated band. A
        // cleaner channel re-calibrates (and can only tighten the
        // floor). Downward drift is the anomaly the verdict below flags
        // — except in per-position mode, where it means "the device
        // moved": the whole profile is discarded and the stream answers
        // Unknown until a fresh position profile is learned.
        if let Some((mean, sigma)) = self.profile {
            if ema > mean + self.cfg.params.drift_sigmas * sigma {
                self.calib = Welford::default();
                self.vote_calib = Welford::default();
                self.calib.add(ema);
                self.vote_calib.add(vote);
            } else if self.cfg.params.per_position
                && ema < mean - self.cfg.params.drift_sigmas * sigma
            {
                // The stream moved. The window's evidence is as stale as
                // the profile: while it drains, its vote fraction decays
                // only gradually from the old position's values, and a
                // gate calibrated against that transient overshoots the
                // new position's steady state. Restart the window along
                // with the calibration so both the threshold and the
                // vote gate are learned from post-move statistics only
                // (the `min_observations` gate keeps verdicts Unknown
                // while the fresh window refills).
                self.window = DecisionWindow::new(self.cfg.window);
                self.window.push(module, confidence);
                self.calib = Welford::default();
                self.vote_calib = Welford::default();
                self.profile = None;
                self.threshold = None;
                self.vote_gate = None;
                let (ema, vote) = match self.window.decision() {
                    Some(d) => (d.confidence_ema, d.vote_fraction),
                    None => (confidence, 1.0),
                };
                self.calib.add(ema);
                self.vote_calib.add(vote);
            }
        }
    }

    fn decision(&self) -> Option<WindowedDecision> {
        self.window.decision()
    }

    fn verdict(&self, expected: Option<usize>) -> Verdict {
        let Some(expected) = expected else {
            return Verdict::Unknown;
        };
        let Some(d) = self.window.decision() else {
            return Verdict::Unknown;
        };
        // The shared majority gates come first: a confidently
        // mismatching majority is an impersonation regardless of
        // calibration progress, and thin evidence stays Unknown. In
        // per-position mode the vote gate is the learned position-local
        // one (never looser than a strict majority).
        let base = Verdict::from_decision(self.effective_gates(), expected, &d);
        if base != Verdict::Accept {
            return base;
        }
        let Some(threshold) = self.threshold else {
            // Matching majority, still calibrating: no verdict yet.
            return Verdict::Unknown;
        };
        if d.confidence_ema >= threshold {
            Verdict::Accept
        } else {
            // The right module at the wrong confidence: flagged.
            Verdict::Reject
        }
    }

    fn save(&self) -> PolicySnapshot {
        PolicySnapshot::Adaptive {
            window: self.window.snapshot(),
            calib: self.calib.snapshot(),
            vote_calib: self.vote_calib.snapshot(),
            profile: self.profile,
            threshold: self.threshold,
            vote_gate: self.vote_gate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> WindowConfig {
        WindowConfig {
            len: 25,
            ema_alpha: 0.2,
        }
    }

    fn gates() -> VerdictPolicy {
        VerdictPolicy {
            min_observations: 10,
            min_vote_fraction: 0.6,
        }
    }

    #[test]
    fn policy_kind_parses_and_displays() {
        for (s, k) in [
            ("fixed", PolicyKind::FixedMajority),
            ("confidence", PolicyKind::ConfidenceWeighted),
            ("adaptive", PolicyKind::AdaptiveThreshold),
        ] {
            assert_eq!(s.parse::<PolicyKind>().unwrap(), k);
            assert_eq!(k.to_string(), s);
        }
        assert!("bogus".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn config_builds_every_kind() {
        for kind in [
            PolicyKind::FixedMajority,
            PolicyKind::ConfidenceWeighted,
            PolicyKind::AdaptiveThreshold,
        ] {
            let cfg = DecisionPolicyConfig {
                kind,
                ..DecisionPolicyConfig::default()
            };
            let policy = cfg.build(window(), gates());
            assert_eq!(policy.name(), kind.to_string());
            let mut s = policy.new_state();
            assert!(s.decision().is_none(), "{kind}: fresh state has decided");
            assert_eq!(s.verdict(Some(0)), Verdict::Unknown);
            s.push(0, 0.9);
            assert!(s.decision().is_some(), "{kind}: one push yields a decision");
        }
    }

    #[test]
    fn unregistered_is_unknown_under_every_policy() {
        for kind in [
            PolicyKind::FixedMajority,
            PolicyKind::ConfidenceWeighted,
            PolicyKind::AdaptiveThreshold,
        ] {
            let policy = DecisionPolicyConfig {
                kind,
                ..DecisionPolicyConfig::default()
            }
            .build(window(), gates());
            let mut s = policy.new_state();
            for _ in 0..50 {
                s.push(1, 0.95);
            }
            assert_eq!(s.verdict(None), Verdict::Unknown, "{kind}");
        }
    }

    #[test]
    fn fixed_majority_replicates_legacy_verdicts() {
        use crate::registry::DeviceRegistry;
        use deepcsi_frame::MacAddr;
        use deepcsi_impair::DeviceId;

        // Pseudo-random (module, confidence) streams: the policy state's
        // verdict must equal the legacy registry evaluation at every
        // step.
        let policy = FixedMajority::new(window(), gates());
        let mut reg = DeviceRegistry::new();
        let mac = MacAddr::station(9);
        reg.register(mac, DeviceId(2));
        for seed in 0..7u64 {
            let mut s = policy.new_state();
            let mut legacy = DecisionWindow::new(window());
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..60 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let module = (x >> 33) as usize % 4;
                let confidence = ((x >> 11) % 1000) as f64 / 1000.0;
                s.push(module, confidence);
                legacy.push(module, confidence);
                let want = Verdict::evaluate(&reg, gates(), mac, legacy.decision().as_ref());
                assert_eq!(s.verdict(Some(2)), want);
                assert_eq!(s.decision(), legacy.decision());
            }
        }
    }

    #[test]
    fn confidence_weighted_early_exits_on_clean_streams() {
        let policy = ConfidenceWeighted::new(window(), gates(), 0.9, 3.0);
        let mut s = policy.new_state();
        let mut decided_at = None;
        for n in 1..=20u64 {
            s.push(3, 0.92);
            if decided_at.is_none() && s.verdict(Some(3)) != Verdict::Unknown {
                decided_at = Some(n);
            }
        }
        let decided_at = decided_at.expect("clean stream must decide");
        assert!(
            decided_at <= gates().min_observations / 2,
            "decided at {decided_at}, not an early exit"
        );
        assert_eq!(s.verdict(Some(3)), Verdict::Accept);
        assert_eq!(s.verdict(Some(1)), Verdict::Reject);
    }

    #[test]
    fn confidence_weighted_waits_on_split_streams() {
        let policy = ConfidenceWeighted::new(window(), gates(), 0.9, 3.0);
        let mut s = policy.new_state();
        for k in 0..40 {
            s.push(k % 2, 0.9); // perfectly split posterior
        }
        assert_eq!(s.verdict(Some(0)), Verdict::Unknown);
    }

    #[test]
    fn confidence_weighted_discounts_low_confidence_votes() {
        let policy = ConfidenceWeighted::new(window(), gates(), 0.8, 1.0);
        let mut s = policy.new_state();
        // Three guesses at module 1 with almost no confidence, one
        // confident report for module 0: weight, not count, wins.
        for _ in 0..3 {
            s.push(1, 0.05);
        }
        s.push(0, 0.95);
        let d = s.decision().unwrap();
        assert_eq!(d.module, 0);
        assert!(d.vote_fraction > 0.8, "posterior {}", d.vote_fraction);
    }

    #[test]
    fn confidence_weighted_survives_zero_confidence() {
        let policy = ConfidenceWeighted::new(window(), gates(), 0.9, 3.0);
        let mut s = policy.new_state();
        for _ in 0..30 {
            s.push(0, 0.0);
        }
        let d = s.decision().unwrap();
        assert_eq!(d.module, 0);
        assert!(d.vote_fraction > 0.0 && d.vote_fraction <= 1.0);
        // Total weight never clears min_weight → no verdict.
        assert_eq!(s.verdict(Some(0)), Verdict::Unknown);
    }

    #[test]
    fn adaptive_flags_confidence_collapse_on_matching_module() {
        let params = AdaptiveParams {
            warmup: 10,
            margin_sigmas: 3.0,
            min_sigma: 0.02,
            drift_sigmas: 4.0,
            per_position: false,
        };
        let policy = AdaptiveThreshold::new(window(), gates(), params);
        let mut s = policy.new_state();
        for _ in 0..15 {
            s.push(0, 0.95);
        }
        assert_eq!(s.verdict(Some(0)), Verdict::Accept);
        // Same module, collapsed confidence: a fixed majority would keep
        // accepting; the adaptive floor flags it.
        for _ in 0..25 {
            s.push(0, 0.55);
        }
        assert_eq!(s.verdict(Some(0)), Verdict::Reject);
    }

    #[test]
    fn adaptive_rejects_mismatching_majority_even_during_warmup() {
        let params = AdaptiveParams {
            warmup: 100, // far beyond the pushes below
            margin_sigmas: 3.0,
            min_sigma: 0.02,
            drift_sigmas: 4.0,
            per_position: false,
        };
        let policy = AdaptiveThreshold::new(window(), gates(), params);
        let mut s = policy.new_state();
        for _ in 0..20 {
            s.push(5, 0.9);
        }
        assert_eq!(s.verdict(Some(0)), Verdict::Reject);
        // …while a *matching* majority mid-warm-up stays Unknown.
        let mut s = policy.new_state();
        for _ in 0..20 {
            s.push(0, 0.9);
        }
        assert_eq!(s.verdict(Some(0)), Verdict::Unknown);
    }

    #[test]
    fn adaptive_threshold_only_ratchets_tighter() {
        let params = AdaptiveParams {
            warmup: 10,
            margin_sigmas: 2.0,
            min_sigma: 0.02,
            drift_sigmas: 2.0,
            per_position: false,
        };
        let mut s = AdaptiveThreshold::new(window(), gates(), params).state();
        for _ in 0..10 {
            s.push(0, 0.7);
        }
        let first = s.threshold().expect("calibrated");
        // The channel gets much cleaner: upward drift re-calibrates…
        for _ in 0..60 {
            s.push(0, 0.97);
        }
        let second = s.threshold().expect("still calibrated");
        assert!(
            second > first,
            "upward drift should tighten the floor ({first} → {second})"
        );
        // …but a later confidence collapse can never loosen it back.
        for _ in 0..60 {
            s.push(0, 0.5);
        }
        assert!(s.threshold().unwrap() >= second);
        assert_eq!(s.verdict(Some(0)), Verdict::Reject);
    }

    #[test]
    fn reregistration_reuses_stream_evidence_against_the_new_identity() {
        // The registry owns the MAC → module mapping; policy state only
        // knows the stream. Re-registering a source to a new module must
        // immediately re-evaluate the same evidence against the new
        // expectation — here flipping Accept to Reject without any new
        // reports.
        let policy = FixedMajority::new(window(), gates());
        let mut s = policy.new_state();
        for _ in 0..15 {
            s.push(4, 0.9);
        }
        assert_eq!(s.verdict(Some(4)), Verdict::Accept);
        assert_eq!(s.verdict(Some(6)), Verdict::Reject);
        // The evidence itself is unchanged.
        assert_eq!(s.decision().unwrap().observations, 15);
    }

    #[test]
    fn per_position_recovers_after_a_position_change() {
        let params = AdaptiveParams {
            warmup: 10,
            margin_sigmas: 2.0,
            drift_sigmas: 2.0,
            ..AdaptiveParams::default()
        };
        let run = |per_position: bool| {
            let policy = AdaptiveThreshold::new(
                window(),
                gates(),
                AdaptiveParams {
                    per_position,
                    ..params
                },
            );
            let mut s = policy.new_state();
            // Position A: clean, high-confidence stream.
            for _ in 0..15 {
                s.push(0, 0.95);
            }
            assert_eq!(s.verdict(Some(0)), Verdict::Accept);
            // The device moves: same true identity, markedly lower but
            // stable confidence at position B.
            for _ in 0..120 {
                s.push(0, 0.62);
            }
            s.verdict(Some(0))
        };
        // The ratchet-only policy flags the move as a collapse forever…
        assert_eq!(run(false), Verdict::Reject);
        // …while per-position calibration re-profiles and recovers.
        assert_eq!(run(true), Verdict::Accept);
    }

    #[test]
    fn per_position_stays_unknown_while_reprofiling() {
        let params = AdaptiveParams {
            warmup: 20,
            margin_sigmas: 2.0,
            drift_sigmas: 2.0,
            per_position: true,
            ..AdaptiveParams::default()
        };
        let policy = AdaptiveThreshold::new(window(), gates(), params);
        let mut s = policy.new_state();
        for _ in 0..25 {
            s.push(0, 0.95);
        }
        assert_eq!(s.verdict(Some(0)), Verdict::Accept);
        // Confidence steps down; push until the drift detector trips
        // (profile discarded), then the stream must answer Unknown —
        // never a stale Accept — while the new profile is learned.
        let mut saw_unknown = false;
        for _ in 0..30 {
            s.push(0, 0.6);
            match s.verdict(Some(0)) {
                Verdict::Unknown => {
                    saw_unknown = true;
                    break;
                }
                // Before the detector trips the old floor still rejects.
                Verdict::Reject | Verdict::Accept => {}
            }
        }
        assert!(saw_unknown, "re-profiling never went through Unknown");
    }

    #[test]
    fn per_position_vote_gate_never_drops_below_strict_majority() {
        let params = AdaptiveParams {
            warmup: 10,
            margin_sigmas: 50.0, // absurd margin → unclamped gate < 0.5
            per_position: true,
            ..AdaptiveParams::default()
        };
        let policy = AdaptiveThreshold::new(window(), gates(), params);
        let mut s = policy.state();
        // A noisy calibration window: votes split 60/40.
        for k in 0..10 {
            s.push(usize::from(k % 5 >= 3), 0.9);
        }
        let gate = s.vote_gate().expect("calibrated");
        assert!(
            (0.505..=gates().min_vote_fraction).contains(&gate),
            "vote gate {gate} escaped its clamp"
        );
        // A wrong-module majority still rejects under the learned gate.
        for _ in 0..30 {
            s.push(3, 0.9);
        }
        assert_eq!(s.verdict(Some(0)), Verdict::Reject);
    }

    #[test]
    #[should_panic(expected = "posterior_mass")]
    fn posterior_mass_below_majority_panics() {
        let _ = ConfidenceWeighted::new(window(), gates(), 0.4, 3.0);
    }

    #[test]
    #[should_panic(expected = "warmup")]
    fn zero_warmup_panics() {
        let _ = AdaptiveThreshold::new(
            window(),
            gates(),
            AdaptiveParams {
                warmup: 0,
                margin_sigmas: 3.0,
                min_sigma: 0.02,
                drift_sigmas: 4.0,
                per_position: false,
            },
        );
    }
}
