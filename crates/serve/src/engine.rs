//! The streaming authentication engine.
//!
//! ```text
//!                  ┌─ bounded queue ─ worker 0 ─┐
//!  ingest ─ parse ─┼─ bounded queue ─ worker 1 ─┼─ shared device state
//!  (shard by MAC)  └─ bounded queue ─ worker N ─┘   (policy states + verdicts)
//! ```
//!
//! * **Sharding** — reports are routed by a hash of their source MAC, so
//!   all evidence for one device lands on one worker and windows never
//!   race.
//! * **Backpressure** — queues are bounded; when a queue is full the
//!   engine either drops the report (accounted in telemetry) or blocks,
//!   per [`EngineConfig::backpressure`].
//! * **Shared frozen model** — every worker holds the same
//!   `Arc<FrozenAuthenticator>` (immutable weights, `Send + Sync`); the
//!   only per-worker inference state is a persistent [`InferPool`] of
//!   scratch contexts. No per-worker weight clone.
//! * **Micro-batching** — each worker drains its queue up to the batch
//!   former's cap (lingering briefly for stragglers; see
//!   [`EngineConfig::former`]) and classifies the batch with one
//!   [`InferPool::infer_batch`] call, optionally splitting its lane
//!   blocks across [`EngineConfig::infer_threads`] persistent lane
//!   threads — no spawn/join on the hot path, bit-exact under any
//!   split, so thread count never changes a verdict.
//! * **Policy decisions** — per-sample predictions feed one
//!   [`PolicyState`] per device (built by the configured
//!   [`DecisionPolicy`]); verdicts come from the policy judged against
//!   the [`DeviceRegistry`]'s expected identities.

use crate::policy::{DecisionPolicy, DecisionPolicyConfig, PolicyState};
use crate::registry::{DeviceRegistry, Verdict, VerdictPolicy};
use crate::snapshot::{DeviceSnapshot, EngineSnapshot};
use crate::telemetry::{EngineStats, Stage, Telemetry};
use crate::window::{WindowConfig, WindowedDecision};
use deepcsi_capture::{CaptureError, FrameSource, SourcePoll};
use deepcsi_core::{Authenticator, FrozenAuthenticator, Precision};
use deepcsi_frame::{BeamformingReportFrame, CapturedReport, MacAddr};
use deepcsi_nn::{InferPool, Tensor};
use deepcsi_obs::{
    merge_op_stats, AuditEvent, AuditLog, OpStat, Profiler, SpanEvent, ThreadTracer, TraceConfig,
    Tracer,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// What to do with a report whose shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Drop the newest report and account it (line-rate monitoring: a
    /// lost sample is cheaper than an unbounded queue).
    #[default]
    DropNewest,
    /// Block the ingest caller until the worker catches up (lossless
    /// replay).
    Block,
}

/// Audit-trail configuration (see [`EngineConfig::audit`]).
///
/// Plain data on purpose: the [`Engine`] builds the actual
/// [`deepcsi_obs::AuditLog`] at startup, so `EngineConfig` stays
/// `Clone + PartialEq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditConfig {
    /// Events retained in the in-memory ring (served at
    /// `/audit/tail`).
    pub capacity: usize,
    /// Optional JSONL file every event is also appended to (created or
    /// truncated at engine start).
    pub file: Option<std::path::PathBuf>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            capacity: 4096,
            file: None,
        }
    }
}

/// Engine construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Worker threads (shards).
    pub workers: usize,
    /// Bounded queue capacity per worker.
    pub queue_capacity: usize,
    /// Micro-batch size cap per inference call.
    pub max_batch: usize,
    /// Inference lanes *per worker*: sizes the worker's persistent
    /// [`deepcsi_nn::InferPool`]. Each micro-batch's lane blocks are
    /// split across the pool's parked lane threads through the one
    /// shared [`FrozenAuthenticator`] — no spawn/join on the hot path;
    /// the lanes live for the life of the worker.
    ///
    /// Defaults to `1` — the caller-inline lane only, no helper threads
    /// and no channel round-trip. Because the pool partitions batches
    /// with the same [`deepcsi_nn::plan_split`] as the spawn-per-call
    /// [`deepcsi_nn::FrozenModel::infer_batch_par`], changing this can
    /// change throughput but **never a verdict** (pinned by the
    /// engine's thread-invariance tests).
    ///
    /// Usable parallelism is additionally bounded by the micro-batch:
    /// each thread gets at least one full [`deepcsi_nn::PAR_MIN_CHUNK`]
    /// (16-sample) SIMD lane block, so a batch of `n` reports engages
    /// at most `max(1, n / 16)` threads — values beyond
    /// `max_batch / 16` buy nothing. Size [`EngineConfig::max_batch`]
    /// accordingly: the default 32 supports up to 2 threads; use
    /// `max_batch: 64` for 4.
    pub infer_threads: usize,
    /// How long a worker lingers for stragglers once a batch is open.
    pub batch_linger: Duration,
    /// Micro-batch formation strategy: [`BatchFormer::Fixed`] (the
    /// historical behavior — always linger toward
    /// [`EngineConfig::max_batch`]) or [`BatchFormer::Adaptive`] (a
    /// latency-aware target that grows under queue pressure and shrinks
    /// to `min_batch` when idle, cutting linger latency entirely at a
    /// target of 1). Batching never affects a per-report output or the
    /// per-shard FIFO order, so the former mode can change latency and
    /// throughput but **never a verdict** (pinned by the engine's
    /// former-invariance tests).
    pub former: BatchFormer,
    /// Full-queue policy.
    pub backpressure: Backpressure,
    /// Cap on live per-device policy states across all shards
    /// (`None` = unbounded, the historical behavior).
    ///
    /// A passive monitor sees the long tail of every MAC that ever
    /// transmits; without a cap the device maps grow without bound. With
    /// a cap, each shard holds at most `⌈max / workers⌉` states and
    /// evicts least-recently-seen streams ([`EngineStats`] counts
    /// evictions and re-warms — a re-warm is an evicted stream returning
    /// and rebuilding its evidence from scratch). Size it well above the
    /// working set: an evicted *registered* device re-enters calibration
    /// on return.
    pub max_device_states: Option<usize>,
    /// Sliding-window smoothing parameters (shared by every decision
    /// policy).
    pub window: WindowConfig,
    /// Accept/reject evidence gates (shared by every decision policy).
    pub policy: VerdictPolicy,
    /// Which decision policy turns smoothed evidence into verdicts, and
    /// its knobs. Defaults to [`PolicyKind::FixedMajority`], which is
    /// verdict-identical to the pre-policy engine.
    ///
    /// [`PolicyKind::FixedMajority`]: crate::PolicyKind::FixedMajority
    pub decision: DecisionPolicyConfig,
    /// The numeric backend the engine expects its frozen snapshot to
    /// serve with. Defaults to [`Precision::F32`] — bit-identical to
    /// the pre-quantization engine.
    ///
    /// This is a declared *expectation*, checked against the snapshot
    /// at [`Engine::start_frozen`]: declaring `int8` while handing the
    /// engine f32 weights (or vice versa) is a configuration bug, and
    /// fails at startup rather than silently serving the wrong backend.
    /// Build int8 snapshots with
    /// [`deepcsi_core::FrozenAuthenticator::quantized`] — the verdict
    /// plumbing (sharding, policies, registry) is identical at either
    /// precision.
    pub precision: Precision,
    /// Span tracing configuration. Disabled by default; when enabled,
    /// 1 in [`TraceConfig::sample_every`] micro-batches records spans
    /// for every pipeline stage it passes through (plus per-frame
    /// `decode` spans at the same rate), collected into
    /// [`EngineReport::spans`] at shutdown.
    pub trace: TraceConfig,
    /// When `true`, every lane of each worker's [`InferPool`] carries a
    /// [`Profiler`]: each frozen op's wall time and activation bytes
    /// are aggregated into the per-layer table returned as
    /// [`EngineReport::layer_profile`]. Observation-only — verdicts are
    /// bit-identical either way.
    pub profile: bool,
    /// When `true` (the default), the engine timestamps each pipeline
    /// stage into [`Telemetry::stages`]. Costs a few `Instant::now`
    /// calls per report/batch; turn off to measure (or serve at) the
    /// bare-engine baseline.
    pub stage_timing: bool,
    /// When `Some`, every decided verdict appends one structured
    /// [`deepcsi_obs::AuditEvent`] to a bounded in-memory ring (read it
    /// via [`Engine::audit_handle`], served live at `/audit/tail`) and,
    /// when [`AuditConfig::file`] is set, to an append-only JSONL file.
    /// Observation-only — verdicts are bit-identical either way.
    pub audit: Option<AuditConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 1024,
            max_batch: 32,
            infer_threads: 1,
            batch_linger: Duration::from_millis(1),
            former: BatchFormer::Fixed,
            backpressure: Backpressure::default(),
            max_device_states: None,
            window: WindowConfig::default(),
            policy: VerdictPolicy::default(),
            decision: DecisionPolicyConfig::default(),
            precision: Precision::default(),
            trace: TraceConfig::default(),
            profile: false,
            stage_timing: true,
            audit: None,
        }
    }
}

/// Micro-batch formation strategy (see [`EngineConfig::former`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchFormer {
    /// Always linger up to [`EngineConfig::batch_linger`] toward
    /// [`EngineConfig::max_batch`] — the historical fixed former. An
    /// idle stream pays the full linger on every report; a loaded one
    /// still caps at `max_batch`.
    Fixed,
    /// Latency-aware adaptive former. Each worker holds a per-batch
    /// target in `[min_batch, max_batch]` and steers it from two
    /// signals observed at every batch departure:
    ///
    /// * **Pressure** — the next opener was already queued when the
    ///   last batch finished *and* the batch filled its whole target:
    ///   double the target (toward `max_batch`) so the backlog drains
    ///   in fewer, larger inference calls.
    /// * **Idle** — the worker waited longer than the linger window for
    ///   an opener: halve the target (toward `min_batch`). At a target
    ///   of 1 the opener departs immediately — zero linger latency.
    /// * **SLO breach** — a batch's service time exceeded `slo`: halve
    ///   the target regardless, trading throughput for the p99
    ///   batch-latency objective.
    Adaptive {
        /// Floor of the adaptive target; also the idle-stream batch
        /// size. `1` gives idle openers zero linger.
        min_batch: usize,
        /// Per-batch service-time budget the controller protects (the
        /// p99 batch-latency SLO).
        slo: Duration,
    },
}

impl BatchFormer {
    /// The adaptive former at its recommended defaults: target floor 1
    /// (idle openers depart with zero linger) and a 250 ms service
    /// budget — the p99 SLO the soak harness asserts.
    pub fn adaptive() -> BatchFormer {
        BatchFormer::Adaptive {
            min_batch: 1,
            slo: Duration::from_millis(250),
        }
    }
}

/// Why [`Engine::ingest_available`] stopped pulling from its source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// The source has nothing more right now (a live follow source may
    /// grow); poll again later.
    Pending,
    /// The source is exhausted.
    End,
}

/// Outcome of handing one frame to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Parsed and queued to its shard.
    Enqueued,
    /// Parsed but dropped by backpressure.
    Dropped,
    /// The bytes did not decode as a beamforming report.
    DecodeError,
}

/// The per-device view reported by [`Engine::decisions`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDecision {
    /// The stream's source address.
    pub source: MacAddr,
    /// The windowed decision (present once ≥ 1 report classified).
    pub decision: Option<WindowedDecision>,
    /// The registry verdict under the engine's policy.
    pub verdict: Verdict,
    /// Classified reports this stream needed before its verdict first
    /// left [`Verdict::Unknown`] — the stream's decision latency in
    /// reports (`None` while undecided).
    pub decided_at: Option<u64>,
}

/// Everything the engine leaves behind at shutdown.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Final telemetry.
    pub stats: EngineStats,
    /// Final per-device decisions, sorted by source address.
    pub decisions: Vec<DeviceDecision>,
    /// Every sampled span, sorted by start time (empty unless
    /// [`EngineConfig::trace`] was enabled). Render with
    /// [`deepcsi_obs::write_chrome_trace`].
    pub spans: Vec<SpanEvent>,
    /// The aggregated per-layer inference profile across all workers
    /// (`Some` iff [`EngineConfig::profile`] was set). Render with
    /// [`deepcsi_obs::format_op_table`].
    pub layer_profile: Option<Vec<OpStat>>,
}

/// A report on a shard queue, stamped with its enqueue instant so the
/// dequeuing worker can attribute queue-wait time (`None` when both
/// stage timing and tracing are off — the fully-dark path takes no
/// timestamps at all).
struct Queued {
    report: CapturedReport,
    enqueued_at: Option<Instant>,
}

struct DeviceState {
    /// The policy's accumulated evidence for this stream.
    state: Box<dyn PolicyState>,
    /// Observations at the stream's first decisive verdict.
    decided_at: Option<u64>,
    /// The shard clock value of this stream's most recent report, for
    /// LRU eviction (see [`Shard`]).
    touch: u64,
}

/// Count of reports enqueued but not yet classified/rejected, with a
/// [`Condvar`] so [`Engine::drain`] wakes the instant the last one
/// lands instead of sleep-polling.
///
/// The count itself stays a lock-free atomic — ingest and workers touch
/// it once per report. The mutex exists only for the condvar protocol
/// and is taken solely on the idle transition and by waiters, so the
/// hot path pays a `fetch_add`, never a lock.
#[derive(Debug, Default)]
struct InFlight {
    count: AtomicI64,
    gate: Mutex<()>,
    idle: Condvar,
}

impl InFlight {
    /// Locks the condvar gate, recovering from poisoning (workers catch
    /// their own panics, but defense in depth is cheap here).
    fn lock(&self) -> MutexGuard<'_, ()> {
        self.gate.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn add(&self, n: i64) {
        self.count.fetch_add(n, Ordering::AcqRel);
    }

    fn sub(&self, n: i64) {
        if self.count.fetch_sub(n, Ordering::AcqRel) - n <= 0 {
            // Take the gate before notifying: a waiter that observed a
            // positive count cannot miss this wake-up, because we can
            // only get the lock once it is inside `wait`.
            drop(self.lock());
            self.idle.notify_all();
        }
    }

    /// Blocks until the count reaches zero.
    fn wait_idle(&self) {
        let mut gate = self.lock();
        while self.count.load(Ordering::Acquire) > 0 {
            gate = self.idle.wait(gate).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Evicted MACs remembered per shard for re-warm accounting. Bounded:
/// the ring only affects a counter, so forgetting ancient evictions
/// merely undercounts `devices_rewarmed` — it can never grow unbounded
/// like the map it guards.
const REWARM_RING: usize = 1024;

/// One shard's device map plus its LRU bookkeeping. Sharding by source
/// MAC means the maps hold disjoint key sets, so each lock is only ever
/// contended between its own worker and an occasional snapshot reader —
/// never between workers.
///
/// LRU is lazy-invalidation: every report pushes `(mac, clock)` onto
/// `queue` and stamps the same clock into the device's `touch`. An
/// entry is live iff its stamp still matches; eviction pops stale
/// entries until it finds a live head. Amortized O(1) per report, no
/// linked list.
#[derive(Default)]
struct Shard {
    devices: HashMap<MacAddr, DeviceState>,
    /// Monotonic per-shard report counter (the LRU clock).
    clock: u64,
    /// Touch history, oldest first; stale entries are skipped on pop
    /// and periodically compacted.
    queue: VecDeque<(MacAddr, u64)>,
    /// Recently evicted MACs, oldest first (bounded by
    /// [`REWARM_RING`]).
    evicted_ring: VecDeque<MacAddr>,
    /// Membership index over `evicted_ring`.
    evicted_set: HashSet<MacAddr>,
}

impl Shard {
    /// Evicts the least-recently-seen device. Returns `false` when the
    /// map was empty (nothing to evict).
    fn evict_one(&mut self, telemetry: &Telemetry) -> bool {
        while let Some((mac, stamp)) = self.queue.pop_front() {
            let live = self.devices.get(&mac).is_some_and(|dev| dev.touch == stamp);
            if !live {
                continue; // stale queue entry: the device was touched again (or already evicted)
            }
            self.devices.remove(&mac);
            if self.evicted_set.insert(mac) {
                self.evicted_ring.push_back(mac);
                while self.evicted_ring.len() > REWARM_RING {
                    let old = self.evicted_ring.pop_front().expect("non-empty");
                    self.evicted_set.remove(&old);
                }
            }
            telemetry.devices_evicted.fetch_add(1, Ordering::Relaxed);
            telemetry.device_states.fetch_sub(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Drops `mac` from the eviction memory, reporting whether it was
    /// there (i.e. whether this arrival is a re-warm).
    fn forget_eviction(&mut self, mac: MacAddr) -> bool {
        if self.evicted_set.remove(&mac) {
            self.evicted_ring.retain(|m| *m != mac);
            true
        } else {
            false
        }
    }

    /// Stamps a fresh touch for `mac` (which must be present in
    /// `devices`) and records it in the LRU queue.
    fn touch(&mut self, mac: MacAddr) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(dev) = self.devices.get_mut(&mac) {
            dev.touch = clock;
        }
        self.queue.push_back((mac, clock));
        self.maybe_compact();
    }

    /// Rebuilds the queue once stale entries dominate, keeping its
    /// memory proportional to the live map.
    fn maybe_compact(&mut self) {
        if self.queue.len() > 8 * self.devices.len().max(16) {
            let devices = &self.devices;
            self.queue
                .retain(|(mac, stamp)| devices.get(mac).is_some_and(|d| d.touch == *stamp));
        }
    }
}

type ShardState = Arc<Mutex<Shard>>;

/// A running streaming authentication engine.
///
/// ```no_run
/// use deepcsi_serve::{Engine, EngineConfig, PolicyKind, ReplaySource};
///
/// # fn auth() -> deepcsi_core::Authenticator { unimplemented!() }
/// # let dataset = deepcsi_data::Dataset::default();
/// // Pick a decision policy; the default is the fixed majority window.
/// let mut cfg = EngineConfig::default();
/// cfg.decision.kind = PolicyKind::ConfidenceWeighted;
///
/// let engine = Engine::start(cfg, auth(), ReplaySource::registry(&dataset));
/// for frame in ReplaySource::from_dataset(&dataset).frames() {
///     engine.ingest_frame(frame);
/// }
/// let report = engine.shutdown();
/// for d in &report.decisions {
///     println!("{}: {:?} (decided after {:?} reports)", d.source, d.verdict, d.decided_at);
/// }
/// ```
pub struct Engine {
    cfg: EngineConfig,
    senders: Vec<SyncSender<Queued>>,
    workers: Vec<JoinHandle<()>>,
    telemetry: Arc<Telemetry>,
    state: Vec<ShardState>,
    registry: Arc<DeviceRegistry>,
    in_flight: Arc<InFlight>,
    tracer: Tracer,
    /// The ingest thread's span recorder. `ingest_frame` takes `&self`,
    /// so the ring sits behind a mutex — uncontended in practice (one
    /// ingest caller), and only ever locked for sampled frames.
    ingest_spans: Mutex<ThreadTracer>,
    /// One per-layer profile slot per worker. Each worker periodically
    /// *replaces* its slot with its cumulative table (and once more on
    /// exit), so a live `/profile` scrape merges the slots at any time
    /// without stopping anything — the tables are cumulative, so
    /// replacement is idempotent and nothing double-counts.
    profile: Arc<Vec<Mutex<Vec<OpStat>>>>,
    /// The per-verdict audit trail (`None` unless
    /// [`EngineConfig::audit`] is set).
    audit: Option<Arc<AuditLog>>,
    /// The decision policy, shared with the workers — kept on the
    /// engine so [`Engine::restore`] can rebuild device states.
    policy: Arc<dyn DecisionPolicy>,
    /// Per-shard device-state cap (`None` = unbounded).
    device_cap: Option<usize>,
}

/// A cloneable live view of the engine's per-layer inference profile
/// (see [`Engine::profile_handle`]): merging the per-worker slots at
/// read time yields the same cumulative table
/// [`EngineReport::layer_profile`] holds at shutdown, but while the
/// engine still runs.
#[derive(Clone)]
pub struct LayerProfile {
    slots: Arc<Vec<Mutex<Vec<OpStat>>>>,
}

impl LayerProfile {
    /// The merged per-op table across all workers, as of each worker's
    /// last publish (workers publish every few batches and on exit).
    pub fn merged(&self) -> Vec<OpStat> {
        let mut table: Vec<OpStat> = Vec::new();
        for slot in self.slots.iter() {
            merge_op_stats(&mut table, &slot.lock().unwrap_or_else(|p| p.into_inner()));
        }
        table
    }
}

impl std::fmt::Debug for LayerProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayerProfile")
            .field("workers", &self.slots.len())
            .finish()
    }
}

impl Engine {
    /// Starts the worker pool around a trained authenticator.
    ///
    /// Convenience wrapper over [`Engine::start_frozen`]: the
    /// authenticator is frozen once ([`Authenticator::freeze`]) and that
    /// single immutable snapshot is shared by every worker. **Earlier
    /// versions of this signature cloned the full weight set into each
    /// worker; that behaviour is gone** — per-worker weight clones cost
    /// `workers × model size` of memory for nothing. Callers that
    /// already hold a frozen model (or want to share one across several
    /// engines) should use [`Engine::start_frozen`] directly; this
    /// by-value signature survives only for source compatibility.
    ///
    /// # Panics
    ///
    /// Panics on a zero worker count, queue capacity, batch size or
    /// inference-thread count, or when `cfg.precision` is not
    /// [`Precision::F32`] — quantization needs calibration data this
    /// signature does not carry; build the snapshot with
    /// [`FrozenAuthenticator::quantized`] and use
    /// [`Engine::start_frozen`].
    pub fn start(cfg: EngineConfig, auth: Authenticator, registry: DeviceRegistry) -> Engine {
        assert_eq!(
            cfg.precision,
            Precision::F32,
            "Engine::start cannot calibrate an int8 snapshot; quantize with \
             FrozenAuthenticator::quantized and use Engine::start_frozen"
        );
        Self::start_frozen(cfg, auth.freeze(), registry)
    }

    /// Starts the worker pool around a frozen (immutable, `Send + Sync`)
    /// authenticator snapshot.
    ///
    /// All workers hold clones of one `Arc<FrozenAuthenticator>` — there
    /// is no per-worker weight copy; the only per-worker inference state
    /// is a persistent [`InferPool`] of `cfg.infer_threads` scratch
    /// lanes. Pass an existing
    /// `Arc` to share the same snapshot across engines (e.g. a serving
    /// engine and an offline evaluator), or a bare
    /// [`FrozenAuthenticator`] to let the engine wrap it.
    ///
    /// ```no_run
    /// use std::sync::Arc;
    /// use deepcsi_serve::{Engine, EngineConfig, ReplaySource};
    ///
    /// # fn auth() -> deepcsi_core::Authenticator { unimplemented!() }
    /// # let dataset = deepcsi_data::Dataset::default();
    /// let frozen = Arc::new(auth().freeze());
    /// let cfg = EngineConfig {
    ///     infer_threads: 4, // split each micro-batch across 4 cores
    ///     ..EngineConfig::default()
    /// };
    /// let engine = Engine::start_frozen(cfg, Arc::clone(&frozen), ReplaySource::registry(&dataset));
    /// # let _ = engine;
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on a zero worker count, queue capacity, batch size or
    /// inference-thread count, and when the snapshot's
    /// [`FrozenAuthenticator::precision`] disagrees with
    /// [`EngineConfig::precision`] (serving the wrong numeric backend
    /// is a configuration bug caught at startup).
    pub fn start_frozen(
        cfg: EngineConfig,
        auth: impl Into<Arc<FrozenAuthenticator>>,
        registry: DeviceRegistry,
    ) -> Engine {
        let auth: Arc<FrozenAuthenticator> = auth.into();
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.max_batch > 0, "batch size must be positive");
        assert!(cfg.infer_threads > 0, "need at least one inference thread");
        if let BatchFormer::Adaptive { min_batch, slo } = cfg.former {
            assert!(min_batch > 0, "adaptive min_batch must be positive");
            assert!(
                min_batch <= cfg.max_batch,
                "adaptive min_batch ({min_batch}) must not exceed max_batch ({})",
                cfg.max_batch
            );
            assert!(!slo.is_zero(), "adaptive SLO must be positive");
        }
        assert_eq!(
            auth.precision(),
            cfg.precision,
            "engine configured for {} but the frozen snapshot serves {}",
            cfg.precision,
            auth.precision()
        );
        // Build (and thereby validate) the decision policy eagerly on
        // the caller thread: failing here beats panicking later inside a
        // worker while it holds a shard lock (which would poison it).
        let policy: Arc<dyn DecisionPolicy> = cfg.decision.build(cfg.window, cfg.policy);
        let telemetry = Arc::new(Telemetry::default());
        let _ = telemetry.started.set(Instant::now());
        let _ = telemetry.policy.set(policy.name());
        let _ = telemetry.precision.set(auth.precision().as_str());
        telemetry
            .pool_lanes
            .store(cfg.infer_threads as u64, Ordering::Relaxed);
        // Seed the batch-target gauge so a scrape before the first batch
        // reads the starting target, not 0.
        let initial_target = match cfg.former {
            BatchFormer::Fixed => cfg.max_batch,
            BatchFormer::Adaptive { min_batch, .. } => min_batch,
        };
        telemetry
            .batch_target
            .store(initial_target as u64, Ordering::Relaxed);
        // One shared wall-clock anchor: every worker stamps audit events
        // against the same last-known-good epoch reference.
        let clock = WallClock::new();
        let state: Vec<ShardState> = (0..cfg.workers)
            .map(|_| Arc::new(Mutex::new(Shard::default())))
            .collect();
        // The global cap splits evenly across shards (rounded up, so a
        // cap of 10 over 4 workers bounds each shard at 3). Zero means
        // "at most one state per shard" — a cap, not a kill switch.
        let device_cap = cfg
            .max_device_states
            .map(|m| m.div_ceil(cfg.workers).max(1));
        let registry = Arc::new(registry);
        let in_flight = Arc::new(InFlight::default());
        let tracer = Tracer::new(cfg.trace.clone());
        let profile: Arc<Vec<Mutex<Vec<OpStat>>>> =
            Arc::new((0..cfg.workers).map(|_| Mutex::new(Vec::new())).collect());
        // An unwritable audit file is a configuration bug on the same
        // footing as a precision mismatch: fail at startup, not at the
        // first verdict.
        let audit: Option<Arc<AuditLog>> = cfg.audit.as_ref().map(|a| {
            let log = match &a.file {
                Some(path) => AuditLog::with_file(a.capacity, path)
                    .unwrap_or_else(|e| panic!("cannot create audit file {}: {e}", path.display())),
                None => AuditLog::new(a.capacity),
            };
            Arc::new(log)
        });
        // Pin the accepted tensor shape when the model recorded one.
        // Without a recorded shape the engine never learns shapes from
        // traffic (each micro-batch group stands on its own), so crafted
        // frames cannot pin a shape that starves legitimate reports.
        let expected_shape: Arc<OnceLock<Vec<usize>>> = Arc::new(OnceLock::new());
        if let Some((c, h, w)) = auth.input_shape() {
            let _ = expected_shape.set(vec![c, h, w]);
        }
        let mut senders = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for (shard, shard_state) in state.iter().enumerate() {
            let (tx, rx) = std::sync::mpsc::sync_channel(cfg.queue_capacity);
            senders.push(tx);
            let worker = WorkerCtx {
                shard,
                rx,
                auth: Arc::clone(&auth),
                telemetry: Arc::clone(&telemetry),
                state: Arc::clone(shard_state),
                in_flight: Arc::clone(&in_flight),
                expected_shape: Arc::clone(&expected_shape),
                policy: Arc::clone(&policy),
                registry: Arc::clone(&registry),
                device_cap,
                max_batch: cfg.max_batch,
                linger: cfg.batch_linger,
                former: cfg.former,
                infer_threads: cfg.infer_threads,
                clock,
                tracer: tracer.clone(),
                stage_timing: cfg.stage_timing,
                profile_enabled: cfg.profile,
                profile: Arc::clone(&profile),
                audit: audit.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("deepcsi-serve-{shard}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker"),
            );
        }
        let ingest_spans = Mutex::new(tracer.thread());
        Engine {
            cfg,
            senders,
            workers,
            telemetry,
            state,
            registry,
            in_flight,
            tracer,
            ingest_spans,
            profile,
            audit,
            policy,
            device_cap,
        }
    }

    /// Parses one captured frame and routes it to its shard.
    pub fn ingest_frame(&self, bytes: &[u8]) -> IngestOutcome {
        self.telemetry.ingested.fetch_add(1, Ordering::Relaxed);
        // Stage timing and span sampling are both resolved before the
        // parse so the decode measurement covers exactly the codec.
        let sampled = self.tracer.enabled() && self.tracer.sample();
        let t0 = if self.cfg.stage_timing || sampled {
            Some(Instant::now())
        } else {
            None
        };
        let parsed = BeamformingReportFrame::parse(bytes);
        if let Some(t0) = t0 {
            let end = Instant::now();
            if self.cfg.stage_timing {
                self.telemetry.record_stage(Stage::Decode, end - t0);
            }
            if sampled {
                self.ingest_spans
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .record(Stage::Decode.name(), t0, end);
            }
        }
        match parsed {
            Ok(frame) => {
                let report = CapturedReport {
                    source: frame.source(),
                    destination: frame.destination(),
                    sequence: frame.sequence(),
                    feedback: frame.into_feedback(),
                };
                self.route(report)
            }
            Err(_) => {
                self.telemetry.decode_errors.fetch_add(1, Ordering::Relaxed);
                IngestOutcome::DecodeError
            }
        }
    }

    /// Pulls every currently available candidate frame out of a capture
    /// source and ingests it, keeping the capture-layer telemetry
    /// (bytes/packets/skips/errors) in sync with the source's counters.
    ///
    /// Returns [`SourceStatus::End`] for an exhausted finite source and
    /// [`SourceStatus::Pending`] when a live source has nothing more
    /// *yet* — the caller owns the retry cadence (and any sleep), so
    /// the engine never blocks on I/O it does not control.
    ///
    /// # Errors
    ///
    /// Forwards the source's fatal [`CaptureError`]s (structurally
    /// broken container, unreadable file). Telemetry is synced before
    /// returning, so everything decoded up to the error is accounted.
    pub fn ingest_available(
        &self,
        source: &mut dyn FrameSource,
    ) -> Result<SourceStatus, CaptureError> {
        let outcome = loop {
            match source.poll_frame() {
                Ok(SourcePoll::Frame(frame)) => {
                    self.ingest_frame(&frame.mpdu);
                }
                Ok(SourcePoll::Pending) => break Ok(SourceStatus::Pending),
                Ok(SourcePoll::End) => break Ok(SourceStatus::End),
                Err(e) => break Err(e),
            }
        };
        self.telemetry.set_capture(&source.counters());
        outcome
    }

    /// Routes an already-parsed report to its shard (bypasses the codec;
    /// `ingested` still counts it).
    pub fn ingest_report(&self, report: CapturedReport) -> IngestOutcome {
        self.telemetry.ingested.fetch_add(1, Ordering::Relaxed);
        self.route(report)
    }

    fn route(&self, report: CapturedReport) -> IngestOutcome {
        let shard = shard_of(report.source, self.senders.len());
        self.in_flight.add(1);
        let queued = Queued {
            report,
            // Tracing also needs the stamp (for queue-wait spans), so
            // only the fully-dark configuration skips the clock read.
            enqueued_at: if self.cfg.stage_timing || self.tracer.enabled() {
                Some(Instant::now())
            } else {
                None
            },
        };
        let outcome = match self.cfg.backpressure {
            Backpressure::Block => match self.senders[shard].send(queued) {
                Ok(()) => IngestOutcome::Enqueued,
                Err(_) => IngestOutcome::Dropped, // worker gone (shutdown race)
            },
            Backpressure::DropNewest => match self.senders[shard].try_send(queued) {
                Ok(()) => IngestOutcome::Enqueued,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    IngestOutcome::Dropped
                }
            },
        };
        match outcome {
            IngestOutcome::Enqueued => {
                self.telemetry.enqueued.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.in_flight.sub(1);
                self.telemetry.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Blocks until every enqueued report has been classified.
    ///
    /// Workers signal a [`Condvar`] when their shard goes idle, so this
    /// returns the moment the last in-flight report lands — latency is
    /// a thread wake-up, not a multiple of a polling interval.
    pub fn drain(&self) {
        self.in_flight.wait_idle();
    }

    /// Current telemetry.
    pub fn stats(&self) -> EngineStats {
        self.telemetry.snapshot()
    }

    /// A shared handle to the engine's live telemetry — the seam a
    /// periodic metrics emitter uses to render
    /// [`Telemetry::metrics`] on its own thread while the engine runs.
    pub fn telemetry_handle(&self) -> Arc<Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// The engine's span tracer (disabled unless
    /// [`EngineConfig::trace`] enabled it).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A shared handle to the per-verdict audit trail (`None` unless
    /// [`EngineConfig::audit`] is set) — the seam the observability
    /// plane's `/audit/tail` endpoint reads from.
    pub fn audit_handle(&self) -> Option<Arc<AuditLog>> {
        self.audit.clone()
    }

    /// A live view of the per-layer inference profile (`None` unless
    /// [`EngineConfig::profile`] is set) — the seam the observability
    /// plane's `/profile` endpoint reads from while the engine runs.
    pub fn profile_handle(&self) -> Option<LayerProfile> {
        self.cfg.profile.then(|| LayerProfile {
            slots: Arc::clone(&self.profile),
        })
    }

    /// Current per-device decisions (sorted by source address).
    pub fn decisions(&self) -> Vec<DeviceDecision> {
        let mut seen: Vec<DeviceDecision> = Vec::new();
        let mut have: std::collections::HashSet<MacAddr> = std::collections::HashSet::new();
        for shard in &self.state {
            let state = shard
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for (mac, dev) in state.devices.iter() {
                let decision = dev.state.decision();
                have.insert(*mac);
                seen.push(DeviceDecision {
                    source: *mac,
                    decision,
                    verdict: dev
                        .state
                        .verdict(self.registry.expected(*mac).map(|d| d.0 as usize)),
                    decided_at: dev.decided_at,
                });
            }
        }
        // Registered devices that never produced a report still deserve a
        // row (verdict: Unknown).
        for (mac, _) in self.registry.iter() {
            if !have.contains(&mac) {
                seen.push(DeviceDecision {
                    source: mac,
                    decision: None,
                    verdict: Verdict::Unknown,
                    decided_at: None,
                });
            }
        }
        seen.sort_by_key(|d| d.source);
        seen
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Captures every device's policy state as an [`EngineSnapshot`]
    /// (sorted by MAC for deterministic bytes).
    ///
    /// Safe to call while the engine runs — each shard is locked briefly
    /// in turn — but for a consistent image call [`Engine::drain`]
    /// first so no reports are mid-flight.
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut devices: Vec<DeviceSnapshot> = Vec::new();
        for shard in &self.state {
            let guard = shard.lock().unwrap_or_else(|p| p.into_inner());
            for (mac, dev) in guard.devices.iter() {
                devices.push(DeviceSnapshot {
                    mac: *mac,
                    decided_at: dev.decided_at,
                    policy: dev.state.save(),
                });
            }
        }
        devices.sort_by_key(|d| d.mac);
        EngineSnapshot {
            policy: self.cfg.decision.kind,
            devices,
        }
    }

    /// Restores device states from a snapshot, returning how many were
    /// restored.
    ///
    /// Each device is routed to its shard with the same
    /// [`shard_of`] hash the workers use and rebuilt via
    /// [`DecisionPolicy::restore_state`] under *this* engine's
    /// configuration — so restoring onto an engine running a different
    /// policy kind restores nothing (the per-device kind check refuses),
    /// and a restored `AdaptiveThreshold` stream keeps its learned floor
    /// instead of re-entering calibration. A configured
    /// [`EngineConfig::max_device_states`] cap is respected: restoring
    /// more devices than the cap evicts in restore order.
    pub fn restore(&self, snap: &EngineSnapshot) -> usize {
        let mut restored = 0;
        for dev in &snap.devices {
            let Some(state) = self.policy.restore_state(&dev.policy) else {
                continue;
            };
            let shard = &self.state[shard_of(dev.mac, self.state.len())];
            let mut guard = shard.lock().unwrap_or_else(|p| p.into_inner());
            if !guard.devices.contains_key(&dev.mac) {
                if let Some(cap) = self.device_cap {
                    while guard.devices.len() >= cap {
                        if !guard.evict_one(&self.telemetry) {
                            break;
                        }
                    }
                }
                if guard.forget_eviction(dev.mac) {
                    self.telemetry
                        .devices_rewarmed
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.telemetry.device_states.fetch_add(1, Ordering::Relaxed);
            }
            guard.devices.insert(
                dev.mac,
                DeviceState {
                    state,
                    decided_at: dev.decided_at,
                    touch: 0,
                },
            );
            guard.touch(dev.mac);
            restored += 1;
        }
        restored
    }

    /// Drains, stops the workers and returns the final report.
    pub fn shutdown(mut self) -> EngineReport {
        self.drain();
        let stats = self.stats();
        let decisions = self.decisions();
        self.senders.clear(); // disconnect queues → workers exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers flushed their span rings and published their final
        // profiler tables on exit; the ingest ring flushes here.
        self.ingest_spans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .flush();
        let spans = self.tracer.drain();
        let layer_profile = if self.cfg.profile {
            let mut table: Vec<OpStat> = Vec::new();
            for slot in self.profile.iter() {
                merge_op_stats(&mut table, &slot.lock().unwrap_or_else(|p| p.into_inner()));
            }
            Some(table)
        } else {
            None
        };
        if let Some(audit) = &self.audit {
            audit.flush();
        }
        EngineReport {
            stats,
            decisions,
            spans,
            layer_profile,
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The shard (worker index) a source MAC maps to under `workers`-way
/// MAC-hash sharding.
///
/// This is the one routing function in the system: the engine's worker
/// ring uses it per report, and the cluster tier's listener uses the
/// *same* function to fan MACs across engine-node processes — so a
/// device's evidence always lands in exactly one place at every level.
/// [`DefaultHasher::new`] is deterministic (fixed keys), so two
/// processes of the same build always agree.
pub fn shard_of(mac: MacAddr, workers: usize) -> usize {
    let mut h = DefaultHasher::new();
    mac.hash(&mut h);
    (h.finish() % workers as u64) as usize
}

struct WorkerCtx {
    shard: usize,
    rx: Receiver<Queued>,
    /// The one weight snapshot every worker shares — cloning this is an
    /// atomic refcount bump, never a weight copy.
    auth: Arc<FrozenAuthenticator>,
    telemetry: Arc<Telemetry>,
    state: ShardState,
    in_flight: Arc<InFlight>,
    /// The model's recorded input shape, when known: reports with any
    /// other shape are rejected instead of poisoning a batch. Never set
    /// from observed traffic.
    expected_shape: Arc<OnceLock<Vec<usize>>>,
    /// Per-device state factory for the engine's decision policy.
    policy: Arc<dyn DecisionPolicy>,
    /// Expected identities, for spotting each stream's first decisive
    /// verdict as reports land (reports-to-verdict telemetry).
    registry: Arc<DeviceRegistry>,
    /// Per-shard device-state cap (`None` = unbounded).
    device_cap: Option<usize>,
    max_batch: usize,
    linger: Duration,
    /// Batch formation strategy (fixed cap vs adaptive target).
    former: BatchFormer,
    /// Lane-split width for each micro-batch inference call.
    infer_threads: usize,
    /// Fault-tolerant wall-clock source for audit timestamps (shared
    /// anchor across workers).
    clock: WallClock,
    /// Shared tracing gate + span-recorder factory.
    tracer: Tracer,
    /// Whether to timestamp pipeline stages into [`Telemetry::stages`].
    stage_timing: bool,
    /// Whether the worker's pool lanes carry per-op profilers.
    profile_enabled: bool,
    /// The per-worker profile slots; this worker publishes its
    /// cumulative table into `profile[self.shard]` after every batch
    /// (before the in-flight count drops, so a scrape racing
    /// [`Engine::drain`] sees every drained batch) and on exit.
    profile: Arc<Vec<Mutex<Vec<OpStat>>>>,
    /// The per-verdict audit trail, shared with the engine (`None`
    /// when auditing is off).
    audit: Option<Arc<AuditLog>>,
}

/// Fault-tolerant wall-clock source for audit timestamps.
///
/// `SystemTime` can report "before the epoch" on a broken or stepped
/// clock; the engine used to map that to `0`, stamping audit events at
/// 1970 and silently corrupting the trail's timeline. Instead, the
/// engine captures one epoch reading and a monotonic anchor at startup
/// and, on any later clock fault, extends that last-known-good reading
/// by the monotonic elapsed time — timestamps stay ordered and roughly
/// correct, and every fault is counted in [`Telemetry::clock_faults`].
#[derive(Debug, Clone, Copy)]
struct WallClock {
    /// Monotonic instant paired with `anchor_ms`.
    anchor: Instant,
    /// Epoch milliseconds read at the anchor (best effort: a clock
    /// already broken at startup anchors at 0 and the offset still
    /// keeps later stamps ordered).
    anchor_ms: u64,
}

impl WallClock {
    fn new() -> WallClock {
        WallClock {
            anchor: Instant::now(),
            anchor_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
        }
    }

    /// Wall-clock milliseconds since the Unix epoch, degrading to
    /// last-known-good + monotonic offset (never 0) on a clock fault.
    fn unix_ms(&self, telemetry: &Telemetry) -> u64 {
        self.resolve(SystemTime::now().duration_since(UNIX_EPOCH).ok(), telemetry)
    }

    /// Split from [`WallClock::unix_ms`] so tests can inject the fault.
    fn resolve(&self, since_epoch: Option<Duration>, telemetry: &Telemetry) -> u64 {
        match since_epoch {
            Some(d) => d.as_millis() as u64,
            None => {
                telemetry.clock_faults.fetch_add(1, Ordering::Relaxed);
                self.anchor_ms + self.anchor.elapsed().as_millis() as u64
            }
        }
    }
}

/// Fills `batch` from `rx` until it reaches `cap` or `deadline` passes:
/// one deadline, one clock read, one blocking wait per loop.
/// `recv_timeout` already returns immediately when a message is queued
/// (and keeps handing out queued messages at a zero timeout), so the
/// old `try_recv`-then-`recv_timeout` round-trip — with its second
/// `Instant::now()` per iteration — bought nothing. An opener-only
/// batch therefore departs within ~`linger` of opening, never
/// overshooting by an extra poll cycle (pinned by
/// `opener_only_batch_departs_at_the_linger_deadline`).
fn fill_batch(rx: &Receiver<Queued>, batch: &mut Vec<Queued>, cap: usize, deadline: Instant) {
    while batch.len() < cap {
        match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
            Ok(q) => batch.push(q),
            // Timeout: the linger window closed. Disconnected: the
            // engine is shutting down — classify what we have; the
            // outer loop's next recv observes the hangup.
            Err(_) => break,
        }
    }
}

/// The adaptive batch former's controller state (one per worker; see
/// [`BatchFormer::Adaptive`] for the control law).
#[derive(Debug)]
struct AdaptiveFormer {
    target: usize,
    min: usize,
    max: usize,
    slo: Duration,
    /// The linger window doubles as the idle threshold: an opener that
    /// took longer than one linger to arrive means the queue ran dry.
    linger: Duration,
}

impl AdaptiveFormer {
    fn new(former: BatchFormer, max_batch: usize, linger: Duration) -> Option<AdaptiveFormer> {
        match former {
            BatchFormer::Fixed => None,
            BatchFormer::Adaptive { min_batch, slo } => Some(AdaptiveFormer {
                target: min_batch,
                min: min_batch,
                max: max_batch,
                slo,
                linger,
            }),
        }
    }

    /// The current per-batch target (the cap handed to [`fill_batch`]).
    fn target(&self) -> usize {
        self.target
    }

    /// Observes one departed batch: `filled` reports formed, `waited`
    /// how long the worker sat idle before the opener arrived,
    /// `service` the time to classify the batch.
    fn observe(&mut self, filled: usize, waited: Duration, service: Duration) {
        if service > self.slo {
            // Over budget: smaller batches bound per-batch service
            // time, protecting the p99 SLO at some throughput cost.
            self.target = (self.target / 2).max(self.min);
        } else if waited > self.linger {
            // The queue ran dry while we waited for this opener: shrink
            // so the next lone report departs sooner (at a target of 1
            // the linger is skipped entirely).
            self.target = (self.target / 2).max(self.min);
        } else if filled >= self.target {
            // The opener was already queued (no idle wait) and the
            // batch filled its whole allowance: backlog — grow so it
            // drains in fewer, larger inference calls.
            self.target = (self.target * 2).min(self.max);
        }
        // Underfilled but prompt traffic holds the target steady.
    }
}

impl WorkerCtx {
    fn run(self) {
        // This worker's only mutable inference state: a persistent pool
        // of `infer_threads` lanes, each owning its scratch context for
        // the worker's lifetime. Buffers reach their high-water mark
        // after the first full batches, then the hot path neither
        // allocates nor spawns — a multi-lane batch costs two channel
        // operations per helper lane.
        let mut pool = InferPool::new(self.infer_threads);
        if self.profile_enabled {
            // With tracing on, the profilers also emit one span per op
            // for sampled batches (their own ring/tid per lane).
            pool.set_profilers(
                (0..self.infer_threads)
                    .map(|_| {
                        if self.tracer.enabled() {
                            Profiler::with_tracer(self.tracer.thread())
                        } else {
                            Profiler::new()
                        }
                    })
                    .collect(),
            );
        }
        let mut spans = self.tracer.thread();
        let mut former = AdaptiveFormer::new(self.former, self.max_batch, self.linger);
        let mut batch: Vec<Queued> = Vec::with_capacity(self.max_batch);
        // Block for each batch opener; exit once all senders are gone.
        loop {
            // The adaptive controller reads how long the worker sat
            // idle; under the fixed former the clock is skipped.
            let wait_started = former.as_ref().map(|_| Instant::now());
            let Ok(opener) = self.rx.recv() else { break };
            let waited = wait_started.map(|t| t.elapsed());
            batch.push(opener);
            // Linger to fill the micro-batch up to the former's cap. A
            // cap of 1 skips the linger entirely: the opener departs
            // the moment it arrives.
            let cap = former
                .as_ref()
                .map_or(self.max_batch, AdaptiveFormer::target);
            if batch.len() < cap {
                fill_batch(&self.rx, &mut batch, cap, Instant::now() + self.linger);
            }
            // One sampling decision per micro-batch: a sampled batch
            // records a span for every stage it passes through.
            let sampled = self.tracer.enabled() && spans.sample();
            self.account_queue_wait(&batch, sampled, &mut spans);
            // Safety net: no classification panic may take the worker
            // down, or `drain()` would wait forever on its queue.
            // `classify` accounts every report it handles (classified or
            // rejected) in `accounted`; whatever a panic left unaccounted
            // is rejected here, so enqueued == classified + rejected
            // always reconciles.
            let service_started = former.as_ref().map(|_| Instant::now());
            let accounted = std::cell::Cell::new(0u64);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.classify(&batch, &accounted, &mut pool, sampled, &mut spans);
            }));
            if outcome.is_err() {
                self.telemetry
                    .rejected
                    .fetch_add(batch.len() as u64 - accounted.get(), Ordering::Relaxed);
            }
            if let (Some(former), Some(waited), Some(started)) =
                (former.as_mut(), waited, service_started)
            {
                former.observe(batch.len(), waited, started.elapsed());
                self.telemetry
                    .batch_target
                    .store(former.target() as u64, Ordering::Relaxed);
            }
            // Publish the live profile before the in-flight count drops:
            // once `drain()` returns, every drained batch is visible to
            // `/profile`. A publish is a small table clone under an
            // uncontended mutex — noise next to the batch inference it
            // accounts.
            if self.profile_enabled {
                self.publish_profile(&mut pool);
            }
            self.in_flight.sub(batch.len() as i64);
            batch.clear();
        }
        // Exit path: one final publish so the engine's shutdown merge
        // (and any last live scrape) sees every batch. The profilers
        // stay attached to their lanes; slots hold cumulative *copies*,
        // so re-publishing replaces rather than double-counts (the span
        // rings still flush on drop).
        if self.profile_enabled {
            self.publish_profile(&mut pool);
        }
    }

    /// Replaces this worker's live profile slot with the merged
    /// cumulative table of its pool lanes.
    fn publish_profile(&self, pool: &mut InferPool) {
        *self.profile[self.shard]
            .lock()
            .unwrap_or_else(|p| p.into_inner()) = pool.profile_table();
    }

    /// Attributes each just-dequeued report's time-on-queue: one
    /// histogram observation per report, plus (for a sampled batch) a
    /// single span covering the longest wait.
    fn account_queue_wait(&self, batch: &[Queued], sampled: bool, spans: &mut ThreadTracer) {
        if !self.stage_timing && !sampled {
            return;
        }
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        for q in batch {
            let Some(at) = q.enqueued_at else { continue };
            if self.stage_timing {
                self.telemetry.record_stage(
                    Stage::QueueWait,
                    now.checked_duration_since(at).unwrap_or_default(),
                );
            }
            earliest = Some(match earliest {
                Some(e) if e <= at => e,
                _ => at,
            });
        }
        if sampled {
            if let Some(start) = earliest {
                spans.record(Stage::QueueWait.name(), start, now);
            }
        }
    }

    /// Classifies one micro-batch, accounting every report exactly once
    /// (as classified or rejected) in both telemetry and `accounted`.
    ///
    /// A passive monitor sees arbitrary frames, so nothing a frame
    /// contains may take the engine down or starve other streams:
    /// feedback that cannot tensorize is rejected up front, and the rest
    /// is grouped by tensor shape with each group classified
    /// independently — a crafted foreign-shape report can only ever
    /// reject itself, never the legitimate reports sharing its batch.
    fn classify(
        &self,
        batch: &[Queued],
        accounted: &std::cell::Cell<u64>,
        pool: &mut InferPool,
        sampled: bool,
        spans: &mut ThreadTracer,
    ) {
        let timed = self.stage_timing || sampled;
        let reject = |n: usize| {
            self.telemetry
                .rejected
                .fetch_add(n as u64, Ordering::Relaxed);
            accounted.set(accounted.get() + n as u64);
        };
        struct Group<'a> {
            shape: Vec<usize>,
            reports: Vec<&'a CapturedReport>,
            tensors: Vec<Tensor>,
        }
        // A helper wrapping one stage in a timestamp pair: records the
        // histogram (stage timing) and a span (sampled batch). All
        // timing is observation-only — the untimed path runs the same
        // closure bare.
        let stage = |stage: Stage, sampled: bool, spans: &mut ThreadTracer, f: &mut dyn FnMut()| {
            if !timed {
                f();
                return;
            }
            let t0 = Instant::now();
            f();
            let end = Instant::now();
            if self.stage_timing {
                self.telemetry.record_stage(stage, end - t0);
            }
            if sampled {
                spans.record(stage.name(), t0, end);
            }
        };
        let mut groups: Vec<Group<'_>> = Vec::new();
        stage(Stage::Tensorize, sampled, spans, &mut || {
            for q in batch {
                let report = &q.report;
                if !self.auth.spec().compatible(&report.feedback) {
                    reject(1);
                    continue;
                }
                // `compatible` should make tensorize infallible, but this
                // is the adversarial surface: a report that still panics
                // here rejects itself, not its batch.
                let t = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.auth.tensorize(&report.feedback)
                })) {
                    Ok(t) => t,
                    Err(_) => {
                        reject(1);
                        continue;
                    }
                };
                match groups.iter_mut().find(|g| g.shape[..] == *t.shape()) {
                    Some(g) => {
                        g.reports.push(report);
                        g.tensors.push(t);
                    }
                    None => groups.push(Group {
                        shape: t.shape().to_vec(),
                        reports: vec![report],
                        tensors: vec![t],
                    }),
                }
            }
        });
        for group in groups {
            let group_started = Instant::now();
            // A shape recorded by the model rejects mismatches outright.
            // Without one, each group simply stands on its own — shapes
            // are never "learned" from traffic, so no crafted frame can
            // pin a shape that starves later legitimate reports.
            if let Some(expected) = self.expected_shape.get() {
                if group.shape != *expected {
                    reject(group.reports.len());
                    continue;
                }
            }
            // The shape gate plus `compatible` should make this
            // infallible, but an over-the-air surface warrants defense in
            // depth: a group the network rejects only rejects itself.
            let mut infer_outcome = None;
            stage(Stage::Infer, sampled, spans, &mut || {
                infer_outcome = Some(std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                    || pool.infer_batch(self.auth.model(), &group.tensors),
                )));
            });
            let Ok(outputs) = infer_outcome.expect("infer stage ran") else {
                reject(group.reports.len());
                continue;
            };
            // Pool occupancy: how many lanes this inference call
            // engaged, summed into a rolling mean for the live plane.
            self.telemetry.record_pool_call(pool.last_engaged());
            stage(Stage::PolicyApply, sampled, spans, &mut || {
                // Recover a poisoned lock: on a caught panic the map is
                // at worst missing one window push, which is fine to
                // keep serving.
                let mut shard = self
                    .state
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                for (report, logits) in group.reports.iter().zip(outputs.iter()) {
                    let module = logits.argmax();
                    let confidence = softmax_peak(logits.as_slice());
                    if !shard.devices.contains_key(&report.source) {
                        // A new stream. Under a cap, make room first and
                        // note whether this MAC is an evicted stream
                        // returning (a re-warm: its evidence rebuilds
                        // from scratch).
                        if let Some(cap) = self.device_cap {
                            while shard.devices.len() >= cap {
                                if !shard.evict_one(&self.telemetry) {
                                    break;
                                }
                            }
                        }
                        if shard.forget_eviction(report.source) {
                            self.telemetry
                                .devices_rewarmed
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        // The gauge long soaks watch: bounded by the cap
                        // when one is set; growth after warm-up means
                        // new MACs are still arriving (or leaking).
                        self.telemetry.device_states.fetch_add(1, Ordering::Relaxed);
                        shard.devices.insert(
                            report.source,
                            DeviceState {
                                state: self.policy.new_state(),
                                decided_at: None,
                                touch: 0,
                            },
                        );
                    }
                    shard.touch(report.source);
                    let dev = shard
                        .devices
                        .get_mut(&report.source)
                        .expect("just inserted or present");
                    dev.state.push(module, confidence);
                    // Catch the stream's first decisive verdict the
                    // moment it happens — the reports-to-verdict
                    // distribution is the policy's decision latency,
                    // and the audit trail records exactly this event.
                    if dev.decided_at.is_none() {
                        let expected = self.registry.expected(report.source).map(|d| d.0 as usize);
                        let verdict = dev.state.verdict(expected);
                        if verdict != Verdict::Unknown {
                            let decision = dev.state.decision();
                            let n = decision.as_ref().map_or(0, |d| d.observations);
                            dev.decided_at = Some(n);
                            self.telemetry.record_verdict(n);
                            if let Some(audit) = &self.audit {
                                audit.append(AuditEvent {
                                    seq: 0, // assigned by the log
                                    unix_ms: self.clock.unix_ms(&self.telemetry),
                                    source: report.source.to_string(),
                                    verdict: verdict.as_str().to_string(),
                                    expected: expected.map(|e| e as u64),
                                    module: decision.as_ref().map(|d| d.module as u64),
                                    vote_fraction: decision
                                        .as_ref()
                                        .map_or(0.0, |d| d.vote_fraction),
                                    confidence: decision.as_ref().map_or(0.0, |d| d.confidence_ema),
                                    observations: n,
                                    reports_to_verdict: Some(n),
                                    policy: self
                                        .telemetry
                                        .policy
                                        .get()
                                        .copied()
                                        .unwrap_or("")
                                        .to_string(),
                                    precision: self
                                        .telemetry
                                        .precision
                                        .get()
                                        .copied()
                                        .unwrap_or("")
                                        .to_string(),
                                });
                            }
                        }
                    }
                }
            });
            accounted.set(accounted.get() + group.reports.len() as u64);
            // One record per inference call, timed from its own start, so
            // mixed-shape batches neither double-count latency nor skew
            // the mean batch size.
            self.telemetry
                .record_batch(group.reports.len(), group_started.elapsed());
        }
    }
}

/// The softmax probability of the winning logit.
fn softmax_peak(logits: &[f32]) -> f64 {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let sum: f64 = logits.iter().map(|&v| f64::from(v - max).exp()).sum();
    1.0 / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_stable_and_in_range() {
        for workers in 1..8 {
            for id in 0..100 {
                let mac = MacAddr::station(id);
                let a = shard_of(mac, workers);
                assert_eq!(a, shard_of(mac, workers));
                assert!(a < workers);
            }
        }
    }

    #[test]
    fn sharding_spreads_sources() {
        let workers = 4;
        let mut hit = vec![false; workers];
        for id in 0..64 {
            hit[shard_of(MacAddr::station(id), workers)] = true;
        }
        assert!(hit.iter().all(|&h| h), "some shard never selected");
    }

    #[test]
    fn softmax_peak_is_a_probability() {
        let p = softmax_peak(&[2.0, 1.0, 0.0]);
        assert!(p > 1.0 / 3.0 && p < 1.0);
        let uniform = softmax_peak(&[0.5, 0.5, 0.5, 0.5]);
        assert!((uniform - 0.25).abs() < 1e-9);
    }

    #[test]
    fn wall_clock_passes_a_healthy_reading_through() {
        let telemetry = Telemetry::default();
        let clock = WallClock::new();
        let stamp = clock.resolve(Some(Duration::from_millis(1_234_567)), &telemetry);
        assert_eq!(stamp, 1_234_567);
        assert_eq!(telemetry.clock_faults.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn wall_clock_fault_extends_the_anchor_and_is_counted() {
        let telemetry = Telemetry::default();
        let clock = WallClock::new();
        assert!(clock.anchor_ms > 0, "test host clock must be sane");

        let first = clock.resolve(None, &telemetry);
        assert!(
            first >= clock.anchor_ms,
            "fallback stamp {first} went backwards from anchor {}",
            clock.anchor_ms
        );
        assert_eq!(telemetry.clock_faults.load(Ordering::Relaxed), 1);

        // Later faults never move the trail backwards.
        std::thread::sleep(Duration::from_millis(5));
        let second = clock.resolve(None, &telemetry);
        assert!(second >= first);
        assert_eq!(telemetry.clock_faults.load(Ordering::Relaxed), 2);
    }

    /// A minimal queued report for the batch-formation tests (its
    /// contents never reach inference).
    fn queued() -> Queued {
        use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
        use deepcsi_phy::{Codebook, MimoConfig};
        Queued {
            report: CapturedReport {
                source: MacAddr::station(1),
                destination: MacAddr::station(2),
                sequence: 0,
                feedback: BeamformingFeedback {
                    mimo: MimoConfig::new(3, 2, 2).expect("valid"),
                    codebook: Codebook::MU_HIGH,
                    angles: vec![QuantizedAngles {
                        m: 3,
                        n_ss: 2,
                        q_phi: vec![0; 3],
                        q_psi: vec![0; 3],
                    }],
                    subcarriers: vec![0],
                },
            },
            enqueued_at: None,
        }
    }

    /// The satellite bugfix pin: a batch holding only its opener departs
    /// within ~`linger` of the deadline — the single-deadline wait never
    /// overshoots by extra poll cycles the way the old
    /// `try_recv`/`recv_timeout` round-trip (two clock reads per
    /// iteration) could.
    #[test]
    fn opener_only_batch_departs_at_the_linger_deadline() {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Queued>(8);
        let mut batch = vec![queued()];
        let linger = Duration::from_millis(80);

        let started = Instant::now();
        fill_batch(&rx, &mut batch, 8, started + linger);
        let waited = started.elapsed();

        assert_eq!(batch.len(), 1, "nothing was sent; the opener rides alone");
        assert!(waited >= linger, "departed {waited:?} before the deadline");
        assert!(
            waited < linger + Duration::from_millis(60),
            "overshot the linger deadline: waited {waited:?} for {linger:?}"
        );
        drop(tx);
    }

    /// Already-queued reports drain instantly even when the deadline has
    /// passed: `recv_timeout` at a zero timeout still hands out queued
    /// messages, so a backlog fills the batch without waiting.
    #[test]
    fn expired_deadline_still_drains_a_queued_backlog() {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Queued>(8);
        for _ in 0..3 {
            tx.send(queued()).expect("capacity");
        }
        let mut batch = vec![queued()];
        fill_batch(&rx, &mut batch, 4, Instant::now() - Duration::from_secs(1));
        assert_eq!(batch.len(), 4, "queued backlog must fill the batch");
    }

    #[test]
    fn fixed_former_runs_without_a_controller() {
        assert!(AdaptiveFormer::new(BatchFormer::Fixed, 32, Duration::from_millis(2)).is_none());
    }

    #[test]
    fn adaptive_former_grows_under_backlog_and_caps_at_max() {
        let mut former = AdaptiveFormer::new(BatchFormer::adaptive(), 32, Duration::from_millis(2))
            .expect("adaptive");
        let mut seen = vec![former.target()];
        for _ in 0..8 {
            // Prompt opener, full batch, fast service: pure backlog.
            former.observe(former.target(), Duration::ZERO, Duration::from_millis(1));
            seen.push(former.target());
        }
        assert_eq!(seen, vec![1, 2, 4, 8, 16, 32, 32, 32, 32]);
    }

    #[test]
    fn adaptive_former_shrinks_on_idle_and_floors_at_min() {
        let mut former = AdaptiveFormer::new(BatchFormer::adaptive(), 32, Duration::from_millis(2))
            .expect("adaptive");
        for _ in 0..5 {
            former.observe(former.target(), Duration::ZERO, Duration::from_millis(1));
        }
        assert_eq!(former.target(), 32);
        // The opener took longer than one linger: the queue ran dry.
        let idle = Duration::from_millis(3);
        let mut seen = Vec::new();
        for _ in 0..7 {
            former.observe(1, idle, Duration::from_millis(1));
            seen.push(former.target());
        }
        assert_eq!(seen, vec![16, 8, 4, 2, 1, 1, 1]);
    }

    #[test]
    fn adaptive_former_sheds_load_on_an_slo_breach() {
        let mut former = AdaptiveFormer::new(BatchFormer::adaptive(), 32, Duration::from_millis(2))
            .expect("adaptive");
        for _ in 0..5 {
            former.observe(former.target(), Duration::ZERO, Duration::from_millis(1));
        }
        assert_eq!(former.target(), 32);
        // A full, prompt batch that blew the service SLO must shrink —
        // the breach branch outranks the growth branch.
        former.observe(32, Duration::ZERO, Duration::from_millis(500));
        assert_eq!(former.target(), 16);
    }

    #[test]
    fn underfilled_prompt_batches_hold_the_target() {
        let mut former = AdaptiveFormer::new(BatchFormer::adaptive(), 32, Duration::from_millis(2))
            .expect("adaptive");
        for _ in 0..3 {
            former.observe(former.target(), Duration::ZERO, Duration::from_millis(1));
        }
        assert_eq!(former.target(), 8);
        // Steady prompt traffic that does not fill the allowance is
        // neither backlog nor idle: the target stays put.
        former.observe(3, Duration::ZERO, Duration::from_millis(1));
        assert_eq!(former.target(), 8);
    }
}
