//! `deepcsi-served` — replay a stored (or synthesized) capture through
//! the streaming authentication engine and report per-device verdicts
//! plus engine telemetry.
//!
//! ```text
//! deepcsi-served [--dataset PATH] [--model PATH] [--save-model PATH]
//!                [--modules N] [--snapshots N] [--epochs N]
//!                [--workers N] [--infer-threads N]
//!                [--precision f32|int8] [--calib-samples N]
//!                [--batch N] [--queue N] [--window N]
//!                [--adaptive-batch] [--batch-min N] [--batch-slo-ms MS]
//!                [--policy fixed|confidence|adaptive]
//!                [--accept-threshold MASS] [--calibration N]
//!                [--repeat N] [--drop] [--garbage N]
//!                [--export-pcap PATH] [--pcap PATH] [--follow]
//!                [--idle-exit SECS]
//!                [--metrics-file PATH] [--metrics-json PATH]
//!                [--metrics-interval SECS]
//!                [--trace-file PATH] [--trace-sample N] [--profile]
//!                [--obs-listen ADDR] [--obs-linger SECS]
//!                [--audit-file PATH] [--audit-capacity N]
//! ```
//!
//! Without `--dataset` a synthetic D1 capture is generated; without
//! `--model` a fast classifier is trained on it first (and optionally
//! persisted with `--save-model` for instant start-up next time).
//!
//! Capture-file modes:
//!
//! * `--export-pcap PATH` writes the (loaded or synthesized) dataset as
//!   a radiotap pcap (`.pcapng` extension selects pcapng) and exits —
//!   the fixture generator for the modes below.
//! * `--pcap PATH` serves frames from a capture file instead of the
//!   in-memory replay.
//! * `--follow` tails the capture as it grows, surviving truncation and
//!   rotation; `--idle-exit SECS` stops after that long without a new
//!   frame (default: follow forever).
//!
//! Parallelism knobs:
//!
//! * `--workers N` sizes the sharded worker ring (device streams are
//!   partitioned across workers by source MAC).
//! * `--infer-threads N` sizes each worker's persistent inference pool
//!   (default 1): `N` parked lane threads own their scratch contexts
//!   for the process lifetime and split every micro-batch's lane
//!   blocks with no spawn/join on the hot path. The split is
//!   bit-exact, so this knob can never change a verdict — only
//!   throughput. Each lane needs one full 16-sample SIMD lane block,
//!   so a micro-batch engages at most `--batch / 16` lanes — raise
//!   `--batch` together with `N` (e.g. `--batch 64` for
//!   `--infer-threads 4`).
//! * `--adaptive-batch` replaces the fixed batch former with the
//!   latency-adaptive one: each worker's micro-batch target starts at
//!   `--batch-min` (default 1), doubles toward `--batch` under queue
//!   pressure, and halves back when the queue runs dry or a batch's
//!   service time breaches `--batch-slo-ms` (default 250). Batch
//!   formation changes departure timing only — decision vectors stay
//!   bit-identical to the fixed former's.
//! * `--precision f32|int8` selects the serving snapshot's numeric
//!   backend (default `f32`, bit-identical to training). `int8`
//!   calibrates activation scales on up to `--calib-samples` (default
//!   256) tensorized reports from the dataset, quantizes the
//!   conv/dense layers onto integer kernels, and serves the quantized
//!   snapshot behind the same `Arc` — verdict plumbing untouched.
//!
//! Decision-policy knobs (see the crate docs for the semantics):
//!
//! * `--policy fixed|confidence|adaptive` selects the verdict policy
//!   (default `fixed`, the classic majority window).
//! * `--accept-threshold MASS` sets the confidence policy's posterior
//!   mass gate, in `(0.5, 1]` (default 0.9).
//! * `--calibration N` sets the adaptive policy's warm-up length in
//!   reports (default 20).
//!
//! Observability knobs (see ARCHITECTURE.md § Observability):
//!
//! * `--metrics-file PATH` rewrites a Prometheus text-exposition file
//!   every `--metrics-interval` seconds (default 5) and once more at
//!   shutdown — point a node-exporter textfile collector (or a test's
//!   `obs-check --prom`) at it.
//! * `--metrics-json PATH` appends one flat JSON object per interval to
//!   a JSONL file, including interval rates computed via
//!   `EngineStats::delta` (`*_per_sec` fields).
//! * `--trace-file PATH` enables span tracing and writes a Chrome
//!   `trace_event` JSON at shutdown — load it in `chrome://tracing` or
//!   Perfetto. `--trace-sample N` records one micro-batch in `N`
//!   (default 8; `1` traces everything).
//! * `--profile` attaches a per-layer profiler to every inference
//!   context and prints the merged per-op table (share of inference
//!   time, ns/sample, bytes moved) after shutdown.
//!
//! Live observability plane (ARCHITECTURE.md § Live observability
//! plane):
//!
//! * `--obs-listen ADDR` binds the embedded scrape server (e.g.
//!   `127.0.0.1:9644`; port `0` picks a free port and prints it).
//!   Endpoints: `/metrics`, `/stats.json`, `/healthz`, `/readyz`,
//!   `/profile` (with `--profile`), `/audit/tail?n=N`. The plane is a
//!   pure observer — verdicts are bit-identical with it on or off.
//! * `--obs-linger SECS` keeps the plane up (and `/readyz` green) that
//!   long after the replay drains, so an external scraper — CI's
//!   `obs-check --scrape` — can read the settled counters before exit.
//! * `--audit-file PATH` streams one JSON line per decided verdict
//!   (source, verdict, policy, confidence trajectory) to PATH; the
//!   in-memory ring behind `/audit/tail` is on whenever `--obs-listen`
//!   or `--audit-file` is.
//! * `--audit-capacity N` sizes that ring (default 4096 events).

use deepcsi_capture::{FollowSource, FrameSource, PcapFileSource};
use deepcsi_core::{
    run_experiment, Authenticator, ExperimentConfig, FrozenAuthenticator, ModelConfig,
};
use deepcsi_data::{d1_split, generate_d1, D1Set, Dataset, GenConfig, InputSpec};
use deepcsi_nn::TrainConfig;
use deepcsi_obs::{format_op_table, write_chrome_trace, TraceConfig};
use deepcsi_serve::{
    AuditConfig, Backpressure, BatchFormer, DecisionPolicyConfig, Engine, EngineConfig,
    MetricsEmitter, ObsPlane, ObsPlaneConfig, PolicyKind, Precision, ReplaySource, SourceStatus,
    Verdict, WindowConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    dataset: Option<String>,
    model: Option<String>,
    save_model: Option<String>,
    modules: u32,
    snapshots: usize,
    epochs: usize,
    workers: usize,
    infer_threads: usize,
    precision: Precision,
    calib_samples: usize,
    batch: usize,
    adaptive_batch: bool,
    batch_min: usize,
    batch_slo_ms: u64,
    queue: usize,
    window: usize,
    policy: PolicyKind,
    accept_threshold: Option<f64>,
    calibration: Option<u64>,
    repeat: usize,
    drop_on_full: bool,
    garbage: usize,
    export_pcap: Option<String>,
    pcap: Option<String>,
    follow: bool,
    idle_exit: Option<u64>,
    metrics_file: Option<String>,
    metrics_json: Option<String>,
    metrics_interval: u64,
    trace_file: Option<String>,
    trace_sample: u32,
    profile: bool,
    obs_listen: Option<String>,
    obs_linger: u64,
    audit_file: Option<String>,
    audit_capacity: usize,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            dataset: None,
            model: None,
            save_model: None,
            modules: 3,
            snapshots: 40,
            epochs: 6,
            workers: 2,
            infer_threads: 1,
            precision: Precision::default(),
            calib_samples: 256,
            batch: 32,
            adaptive_batch: false,
            batch_min: 1,
            batch_slo_ms: 250,
            queue: 1024,
            window: 25,
            policy: PolicyKind::default(),
            accept_threshold: None,
            calibration: None,
            repeat: 1,
            drop_on_full: false,
            garbage: 0,
            export_pcap: None,
            pcap: None,
            follow: false,
            idle_exit: None,
            metrics_file: None,
            metrics_json: None,
            metrics_interval: 5,
            trace_file: None,
            trace_sample: 8,
            profile: false,
            obs_listen: None,
            obs_linger: 0,
            audit_file: None,
            audit_capacity: 4096,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("{name} expects a value"))
            };
            match flag.as_str() {
                "--dataset" => args.dataset = Some(value("--dataset")),
                "--model" => args.model = Some(value("--model")),
                "--save-model" => args.save_model = Some(value("--save-model")),
                "--modules" => args.modules = value("--modules").parse().expect("--modules"),
                "--snapshots" => {
                    args.snapshots = value("--snapshots").parse().expect("--snapshots")
                }
                "--epochs" => args.epochs = value("--epochs").parse().expect("--epochs"),
                "--workers" => args.workers = value("--workers").parse().expect("--workers"),
                "--infer-threads" => {
                    args.infer_threads = value("--infer-threads").parse().expect("--infer-threads")
                }
                "--precision" => {
                    args.precision = value("--precision")
                        .parse()
                        .unwrap_or_else(|e: String| panic!("--precision: {e}"))
                }
                "--calib-samples" => {
                    args.calib_samples = value("--calib-samples").parse().expect("--calib-samples")
                }
                "--batch" => args.batch = value("--batch").parse().expect("--batch"),
                "--adaptive-batch" => args.adaptive_batch = true,
                "--batch-min" => {
                    args.batch_min = value("--batch-min").parse().expect("--batch-min")
                }
                "--batch-slo-ms" => {
                    args.batch_slo_ms = value("--batch-slo-ms").parse().expect("--batch-slo-ms")
                }
                "--queue" => args.queue = value("--queue").parse().expect("--queue"),
                "--window" => args.window = value("--window").parse().expect("--window"),
                "--policy" => {
                    args.policy = value("--policy")
                        .parse()
                        .unwrap_or_else(|e: String| panic!("--policy: {e}"))
                }
                "--accept-threshold" => {
                    args.accept_threshold = Some(
                        value("--accept-threshold")
                            .parse()
                            .expect("--accept-threshold"),
                    )
                }
                "--calibration" => {
                    args.calibration = Some(value("--calibration").parse().expect("--calibration"))
                }
                "--repeat" => args.repeat = value("--repeat").parse().expect("--repeat"),
                "--drop" => args.drop_on_full = true,
                "--garbage" => args.garbage = value("--garbage").parse().expect("--garbage"),
                "--export-pcap" => args.export_pcap = Some(value("--export-pcap")),
                "--pcap" => args.pcap = Some(value("--pcap")),
                "--follow" => args.follow = true,
                "--idle-exit" => {
                    args.idle_exit = Some(value("--idle-exit").parse().expect("--idle-exit"))
                }
                "--metrics-file" => args.metrics_file = Some(value("--metrics-file")),
                "--metrics-json" => args.metrics_json = Some(value("--metrics-json")),
                "--metrics-interval" => {
                    args.metrics_interval = value("--metrics-interval")
                        .parse()
                        .expect("--metrics-interval")
                }
                "--trace-file" => args.trace_file = Some(value("--trace-file")),
                "--trace-sample" => {
                    args.trace_sample = value("--trace-sample").parse().expect("--trace-sample")
                }
                "--profile" => args.profile = true,
                "--obs-listen" => args.obs_listen = Some(value("--obs-listen")),
                "--obs-linger" => {
                    args.obs_linger = value("--obs-linger").parse().expect("--obs-linger")
                }
                "--audit-file" => args.audit_file = Some(value("--audit-file")),
                "--audit-capacity" => {
                    args.audit_capacity =
                        value("--audit-capacity").parse().expect("--audit-capacity")
                }
                "--help" | "-h" => {
                    println!("see the module docs at the top of src/bin/served.rs");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        // Surface flag combinations that would otherwise be silently
        // ignored.
        if args.pcap.is_some() && args.repeat > 1 {
            eprintln!("warning: --repeat only applies to the in-memory replay; ignored");
        }
        if args.pcap.is_some() && args.garbage > 0 {
            eprintln!("warning: --garbage only applies to the in-memory replay; ignored");
        }
        if args.follow && args.pcap.is_none() {
            eprintln!("warning: --follow requires --pcap; ignored");
        }
        if args.idle_exit.is_some() && !args.follow {
            eprintln!("warning: --idle-exit only applies with --follow; ignored");
        }
        if args.accept_threshold.is_some() && args.policy != PolicyKind::ConfidenceWeighted {
            eprintln!("warning: --accept-threshold only applies with --policy confidence");
        }
        if args.calibration.is_some() && args.policy != PolicyKind::AdaptiveThreshold {
            eprintln!("warning: --calibration only applies with --policy adaptive");
        }
        // Range-check the policy knobs here, before the expensive
        // dataset/training work — the engine would assert the same
        // bounds, but only minutes later.
        if let Some(mass) = args.accept_threshold {
            assert!(
                mass > 0.5 && mass <= 1.0,
                "--accept-threshold must be in (0.5, 1], got {mass}"
            );
        }
        if args.calibration == Some(0) {
            panic!("--calibration must be positive");
        }
        assert!(args.infer_threads > 0, "--infer-threads must be positive");
        if args.adaptive_batch {
            assert!(args.batch_min > 0, "--batch-min must be positive");
            assert!(
                args.batch_min <= args.batch,
                "--batch-min ({}) must not exceed --batch ({})",
                args.batch_min,
                args.batch
            );
            assert!(args.batch_slo_ms > 0, "--batch-slo-ms must be positive");
        } else {
            if args.batch_min != 1 {
                eprintln!("warning: --batch-min only applies with --adaptive-batch; ignored");
            }
            if args.batch_slo_ms != 250 {
                eprintln!("warning: --batch-slo-ms only applies with --adaptive-batch; ignored");
            }
        }
        if args.calib_samples == 0 {
            panic!("--calib-samples must be positive");
        }
        if args.precision != Precision::Int8 && args.calib_samples != 256 {
            eprintln!("warning: --calib-samples only applies with --precision int8");
        }
        assert!(
            args.metrics_interval > 0,
            "--metrics-interval must be positive"
        );
        assert!(args.trace_sample > 0, "--trace-sample must be positive");
        if args.metrics_interval != 5 && args.metrics_file.is_none() && args.metrics_json.is_none()
        {
            eprintln!("warning: --metrics-interval needs --metrics-file or --metrics-json");
        }
        if args.trace_sample != 8 && args.trace_file.is_none() {
            eprintln!("warning: --trace-sample only applies with --trace-file");
        }
        assert!(args.audit_capacity > 0, "--audit-capacity must be positive");
        if args.obs_linger > 0 && args.obs_listen.is_none() {
            eprintln!("warning: --obs-linger only applies with --obs-listen; ignored");
        }
        if args.audit_capacity != 4096 && args.obs_listen.is_none() && args.audit_file.is_none() {
            eprintln!("warning: --audit-capacity needs --obs-listen or --audit-file");
        }
        args
    }

    /// The batch-formation mode the flags describe.
    fn former(&self) -> BatchFormer {
        if self.adaptive_batch {
            BatchFormer::Adaptive {
                min_batch: self.batch_min,
                slo: Duration::from_millis(self.batch_slo_ms),
            }
        } else {
            BatchFormer::Fixed
        }
    }

    /// The audit-trail configuration the flags describe: on whenever the
    /// scrape plane or an audit file is requested.
    fn audit(&self) -> Option<AuditConfig> {
        (self.obs_listen.is_some() || self.audit_file.is_some()).then(|| AuditConfig {
            capacity: self.audit_capacity,
            file: self.audit_file.as_ref().map(std::path::PathBuf::from),
        })
    }

    /// The span-tracing configuration the flags describe: disabled
    /// unless a trace file was requested.
    fn trace(&self) -> TraceConfig {
        if self.trace_file.is_none() {
            return TraceConfig::default();
        }
        TraceConfig {
            sample_every: self.trace_sample,
            ..TraceConfig::always()
        }
    }

    /// The decision-policy configuration the flags describe.
    fn decision(&self) -> DecisionPolicyConfig {
        let mut decision = DecisionPolicyConfig {
            kind: self.policy,
            ..DecisionPolicyConfig::default()
        };
        if let Some(mass) = self.accept_threshold {
            decision.posterior_mass = mass;
        }
        if let Some(warmup) = self.calibration {
            decision.warmup = warmup;
        }
        decision
    }
}

fn load_or_generate_dataset(args: &Args) -> Dataset {
    match &args.dataset {
        Some(path) => {
            let ds = deepcsi_data::load_dataset(path)
                .unwrap_or_else(|e| panic!("loading dataset {path}: {e}"));
            println!(
                "loaded dataset {path}: {} traces, {} snapshots",
                ds.traces.len(),
                ds.num_snapshots()
            );
            ds
        }
        None => {
            let t = Instant::now();
            let ds = generate_d1(&GenConfig {
                num_modules: args.modules,
                snapshots_per_trace: args.snapshots,
                ..GenConfig::default()
            });
            println!(
                "generated synthetic D1: {} modules, {} traces, {} snapshots ({:.1?})",
                args.modules,
                ds.traces.len(),
                ds.num_snapshots(),
                t.elapsed()
            );
            ds
        }
    }
}

fn load_or_train_model(args: &Args, ds: &Dataset) -> Authenticator {
    if let Some(path) = &args.model {
        let auth =
            Authenticator::load(path).unwrap_or_else(|e| panic!("loading model {path}: {e}"));
        println!("loaded model {path}");
        return auth;
    }
    let spec = InputSpec {
        stride: 4,
        ..InputSpec::default()
    };
    let split = d1_split(ds, D1Set::S1, &[1, 2], &spec);
    let classes = ds.modules().len();
    let model = ModelConfig::demo(classes);
    let cfg = ExperimentConfig {
        model: model.clone(),
        train: TrainConfig {
            epochs: args.epochs,
            batch_size: 64,
            learning_rate: 2e-3,
            seed: 5,
            ..TrainConfig::default()
        },
    };
    let t = Instant::now();
    let result = run_experiment(&cfg, &split);
    println!(
        "trained fast classifier: {:.2}% test accuracy over {} classes ({:.1?})",
        result.accuracy * 100.0,
        classes,
        t.elapsed()
    );
    let probe = spec.tensor(&ds.traces[0].snapshots[0]);
    let shape: [usize; 3] = probe.shape().try_into().expect("rank-3 input");
    let mut auth =
        Authenticator::with_config(result.network, spec, model, (shape[0], shape[1], shape[2]));
    if let Some(path) = &args.save_model {
        auth.save(path)
            .unwrap_or_else(|e| panic!("saving model {path}: {e}"));
        println!("saved model to {path}");
    }
    auth
}

/// Writes the dataset's replay capture to a pcap/pcapng file (chosen by
/// extension) — the `--export-pcap` mode.
fn export_capture(ds: &Dataset, path: &str) {
    let replay = ReplaySource::from_dataset(ds);
    let file = std::fs::File::create(path).unwrap_or_else(|e| panic!("creating {path}: {e}"));
    let w = std::io::BufWriter::new(file);
    if path.ends_with(".pcapng") {
        replay.write_pcapng(w)
    } else {
        replay.write_pcap(w)
    }
    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "exported {} frames ({:.2} MiB of MPDUs) to {path}",
        replay.len(),
        replay.total_bytes() as f64 / (1024.0 * 1024.0),
    );
}

/// Feeds the engine from a capture file — finite (`--pcap`) or tailed
/// (`--follow`, until `--idle-exit` seconds pass without a frame).
fn serve_from_capture(engine: &Engine, args: &Args, path: &str) {
    if args.follow {
        let mut source = FollowSource::open(path);
        let idle_exit = args.idle_exit.map(Duration::from_secs);
        let mut last_progress = Instant::now();
        let mut last_seen = 0u64;
        let mut last_bytes = 0u64;
        loop {
            match engine.ingest_available(&mut source) {
                Ok(SourceStatus::Pending) => {
                    let c = source.counters();
                    if c.packets_seen != last_seen {
                        last_seen = c.packets_seen;
                        last_progress = Instant::now();
                    } else if idle_exit.is_some_and(|d| last_progress.elapsed() >= d) {
                        println!("no new frames for {}s, stopping", args.idle_exit.unwrap());
                        return;
                    }
                    // Only sleep when the file truly stopped growing — a
                    // `Pending` with byte progress is just the per-poll
                    // read budget, and a backlog should drain at speed.
                    if c.bytes_read == last_bytes {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    last_bytes = c.bytes_read;
                }
                Ok(SourceStatus::End) => unreachable!("follow sources never end"),
                Err(e) => {
                    eprintln!("following {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    } else {
        let mut source =
            PcapFileSource::open(path).unwrap_or_else(|e| panic!("opening capture {path}: {e}"));
        match engine.ingest_available(&mut source) {
            Ok(SourceStatus::End) => {}
            Ok(SourceStatus::Pending) => unreachable!("file sources never pend"),
            Err(e) => {
                eprintln!("reading capture {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args = Args::parse();
    let ds = load_or_generate_dataset(&args);

    if let Some(path) = &args.export_pcap {
        export_capture(&ds, path);
        return;
    }

    let auth = load_or_train_model(&args, &ds);

    let replay = ReplaySource::from_dataset(&ds);
    let registry = ReplaySource::registry(&ds);
    match &args.pcap {
        Some(path) => println!(
            "serving capture {path} ({}){}",
            if args.follow { "follow" } else { "finite" },
            if args.follow {
                " — ^C or --idle-exit to stop"
            } else {
                ""
            },
        ),
        None => println!(
            "replaying {} frames ({:.2} MiB) from {} device streams, ×{}",
            replay.len(),
            replay.total_bytes() as f64 / (1024.0 * 1024.0),
            registry.len(),
            args.repeat
        ),
    }

    // Freeze once: the workers all share this one immutable snapshot.
    let frozen = std::sync::Arc::new(match args.precision {
        Precision::F32 => auth.freeze(),
        Precision::Int8 => {
            // Calibrate activation scales on a representative slice of
            // the capture the engine is about to serve. Stride across
            // the whole dataset — traces are ordered by module, so a
            // plain prefix would calibrate on one device's activations
            // and clamp everyone else's.
            let snapshots: Vec<_> = ds.traces.iter().flat_map(|t| t.snapshots.iter()).collect();
            let step = (snapshots.len() / args.calib_samples).max(1);
            let calib: Vec<deepcsi_nn::Tensor> = snapshots
                .iter()
                .step_by(step)
                .take(args.calib_samples)
                .map(|fb| auth.tensorize(fb))
                .collect();
            let t = Instant::now();
            let quantized = FrozenAuthenticator::quantized(&auth, &calib)
                .unwrap_or_else(|e| panic!("int8 quantization failed: {e}"));
            println!(
                "quantized to int8 on {} calibration reports ({:.1?})",
                calib.len(),
                t.elapsed()
            );
            quantized
        }
    });
    let engine = Engine::start_frozen(
        EngineConfig {
            workers: args.workers,
            infer_threads: args.infer_threads,
            precision: args.precision,
            queue_capacity: args.queue,
            max_batch: args.batch,
            former: args.former(),
            backpressure: if args.drop_on_full {
                Backpressure::DropNewest
            } else {
                Backpressure::Block
            },
            window: WindowConfig {
                len: args.window,
                ..WindowConfig::default()
            },
            decision: args.decision(),
            trace: args.trace(),
            profile: args.profile,
            audit: args.audit(),
            ..EngineConfig::default()
        },
        frozen,
        registry.clone(),
    );
    println!(
        "decision policy: {} ({} workers × {} pool lanes, {} inference, {} batch former)",
        args.policy,
        args.workers,
        args.infer_threads,
        args.precision,
        if args.adaptive_batch {
            "adaptive"
        } else {
            "fixed"
        }
    );

    // Observability plumbing: the file emitter publishes periodically
    // while serving (and flushes the final partial interval on stop);
    // the live plane, when requested, scrapes the same telemetry over
    // HTTP. Both hold Arc handles that outlive the engine.
    let telemetry = engine.telemetry_handle();
    let audit = engine.audit_handle();
    let emitter = (args.metrics_file.is_some() || args.metrics_json.is_some()).then(|| {
        MetricsEmitter::spawn(
            Arc::clone(&telemetry),
            Duration::from_secs(args.metrics_interval),
            args.metrics_file.clone(),
            args.metrics_json.clone(),
        )
    });
    let plane = args.obs_listen.as_ref().map(|addr| {
        let plane = ObsPlane::start(
            ObsPlaneConfig {
                listen: addr.clone(),
                ..ObsPlaneConfig::default()
            },
            &engine,
        )
        .unwrap_or_else(|e| panic!("binding observability listener {addr}: {e}"));
        println!(
            "observability plane listening on http://{}",
            plane.local_addr()
        );
        plane.set_ready(true);
        plane
    });

    let t = Instant::now();
    match &args.pcap {
        Some(path) => serve_from_capture(&engine, &args, path),
        None => {
            for _ in 0..args.repeat {
                for frame in replay.frames() {
                    engine.ingest_frame(frame);
                }
            }
            // Exercise the decode-error path on demand. Replay mode
            // only: out-of-band garbage would (correctly) break the
            // capture-layer reconciliation a file source reports.
            for i in 0..args.garbage {
                engine.ingest_frame(&[i as u8; 11]);
            }
        }
    }
    engine.drain();
    let elapsed = t.elapsed();
    // Hold the plane open over the settled counters before tearing
    // anything down — CI's loopback scrape runs inside this window.
    if let Some(plane) = &plane {
        if args.obs_linger > 0 {
            plane.tick_now();
            println!("lingering {}s for scrapes (--obs-linger)", args.obs_linger);
            std::thread::sleep(Duration::from_secs(args.obs_linger));
        }
        plane.set_ready(false);
    }
    let report = engine.shutdown();
    if let Some(plane) = plane {
        plane.shutdown();
    }

    // Final publication after every counter has settled: the emitter's
    // stop() flushes the partial interval since its last timer fire.
    if let Some(emitter) = emitter {
        emitter.stop();
        for path in [&args.metrics_file, &args.metrics_json]
            .into_iter()
            .flatten()
        {
            println!("metrics written to {path}");
        }
    }
    if let Some(audit) = &audit {
        if let Some(path) = &args.audit_file {
            println!(
                "audit trail: {} events written to {path} ({} write errors)",
                audit.appended(),
                audit.write_errors()
            );
        }
    }
    if let Some(path) = &args.trace_file {
        let file =
            std::fs::File::create(path).unwrap_or_else(|e| panic!("creating trace {path}: {e}"));
        write_chrome_trace(std::io::BufWriter::new(file), &report.spans)
            .unwrap_or_else(|e| panic!("writing trace {path}: {e}"));
        println!(
            "trace: {} spans written to {path} (open in chrome://tracing or Perfetto)",
            report.spans.len()
        );
    }

    println!("\n--- per-device verdicts ---");
    for d in &report.decisions {
        let expected = registry
            .expected(d.source)
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".to_string());
        match &d.decision {
            Some(w) => println!(
                "{}  expected {:>3}  decided {:>3}  votes {:>5.1}%  conf {:.2}  n {:>6}  {}  {:?}",
                d.source,
                expected,
                w.module,
                w.vote_fraction * 100.0,
                w.confidence_ema,
                w.observations,
                match d.decided_at {
                    Some(n) => format!("verdict@{n:<4}"),
                    None => "undecided   ".to_string(),
                },
                d.verdict
            ),
            None => println!(
                "{}  expected {:>3}  (no reports)  {:?}",
                d.source, expected, d.verdict
            ),
        }
    }

    if let Some(ops) = &report.layer_profile {
        println!("\n--- per-layer inference profile ---");
        print!("{}", format_op_table(ops));
    }

    println!("\n--- engine telemetry ---");
    println!("{}", report.stats);
    let rps = report.stats.classified as f64 / elapsed.as_secs_f64();
    let stream_bytes = if args.pcap.is_some() {
        report.stats.capture_bytes as usize
    } else {
        replay.total_bytes() * args.repeat
    };
    let mibps = stream_bytes as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64();
    println!(
        "throughput: {rps:.0} reports/s ({mibps:.1} MiB/s of frames) over {:.2?}",
        elapsed
    );
    println!("RESULT serve reports_per_sec {rps:.1}");

    let accepted = report
        .decisions
        .iter()
        .filter(|d| d.verdict == Verdict::Accept)
        .count();
    println!("RESULT serve accepted_devices {accepted}");
    println!("RESULT serve registered_devices {}", registry.len());
}
