//! Replaying stored datasets through the engine as an interleaved frame
//! stream — the offline stand-in for a monitor-mode capture interface.

use crate::registry::DeviceRegistry;
use deepcsi_capture::{
    CandidateFrame, CaptureCounters, FrameSource, PcapWriter, PcapngWriter, RadiotapBuilder,
    SourcePoll, LINKTYPE_RADIOTAP,
};
use deepcsi_data::{Dataset, Trace};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use std::io::{self, Write};

/// Synthetic inter-frame spacing in the exported captures: 1 ms, a
/// typical MU-MIMO sounding cadence.
const TS_STEP_NANOS: u64 = 1_000_000;

/// An encoded multi-device capture: every trace of a dataset re-framed as
/// VHT compressed beamforming reports and interleaved round-robin, the
/// way a passive monitor would see concurrent streams.
///
/// ```
/// use deepcsi_data::{generate_d1, GenConfig};
/// use deepcsi_serve::ReplaySource;
///
/// let ds = generate_d1(&GenConfig {
///     num_modules: 2,
///     snapshots_per_trace: 3,
///     ..GenConfig::default()
/// });
/// let replay = ReplaySource::from_dataset(&ds);
/// // One frame per snapshot, one registry entry per distinct
/// // (module, beamformee) stream.
/// assert_eq!(replay.len(), ds.num_snapshots());
/// let registry = ReplaySource::registry(&ds);
/// assert!(!registry.is_empty() && registry.len() <= ds.traces.len());
/// // Frames decode back into valid beamforming reports.
/// let first = replay.frames().next().unwrap();
/// assert!(deepcsi_frame::BeamformingReportFrame::parse(first).is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReplaySource {
    frames: Vec<Vec<u8>>,
    /// Read position for the [`FrameSource`] view.
    cursor: usize,
}

impl ReplaySource {
    /// The deterministic source address used for a trace's stream
    /// (encodes the AP module and the reporting beamformee).
    pub fn source_mac(trace: &Trace) -> MacAddr {
        MacAddr::station(u64::from(trace.module.0) << 8 | u64::from(trace.beamformee))
    }

    /// A registry expecting every trace's stream to present its module.
    pub fn registry(ds: &Dataset) -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        for trace in &ds.traces {
            reg.register(Self::source_mac(trace), trace.module);
        }
        reg
    }

    /// Encodes and interleaves `ds`: snapshot 0 of every trace, then
    /// snapshot 1 of every trace, and so on (traces shorter than the
    /// longest simply stop contributing).
    pub fn from_dataset(ds: &Dataset) -> Self {
        let monitor = MacAddr::station(0xAC_CE55);
        let longest = ds.traces.iter().map(Trace::len).max().unwrap_or(0);
        let mut frames = Vec::with_capacity(ds.num_snapshots());
        for k in 0..longest {
            for trace in &ds.traces {
                let Some(fb) = trace.snapshots.get(k) else {
                    continue;
                };
                frames.push(
                    BeamformingReportFrame::new(
                        monitor,
                        Self::source_mac(trace),
                        monitor,
                        (k % 4096) as u16,
                        fb.clone(),
                    )
                    .encode(),
                );
            }
        }
        ReplaySource { frames, cursor: 0 }
    }

    /// The encoded frames, in arrival order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        self.frames.iter().map(Vec::as_slice)
    }

    /// Number of frames in the capture.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the capture holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total encoded bytes (for line-rate reporting).
    pub fn total_bytes(&self) -> usize {
        self.frames.iter().map(Vec::len).sum()
    }

    /// The deterministic RSSI frame `k` is exported with — shared by
    /// the pcap export and the in-memory [`FrameSource`] view, which
    /// must present identical metadata.
    fn rssi_for(k: usize) -> i8 {
        -40 - (k % 20) as i8
    }

    /// The channel (MHz) every exported frame advertises.
    const CHANNEL_MHZ: u16 = 5180;

    /// The deterministic radiotap preamble frame `k` is exported with:
    /// no FCS, 5 GHz channel, and a per-frame RSSI so reader-side
    /// metadata is testable.
    fn radiotap_for(k: usize) -> Vec<u8> {
        RadiotapBuilder::new()
            .flags(0)
            .channel(Self::CHANNEL_MHZ, 0x0140) // 5 GHz, OFDM
            .antenna_signal(Self::rssi_for(k))
            .build()
    }

    /// The timestamp frame `k` is exported with.
    fn ts_for(k: usize) -> u64 {
        k as u64 * TS_STEP_NANOS
    }

    /// Exports the capture as a classic pcap file (link type 127): every
    /// frame is prepended with a radiotap header, 1 ms apart. Any
    /// synthetic dataset thereby becomes a valid monitor-mode capture —
    /// round-trip fixtures without hardware.
    ///
    /// # Errors
    ///
    /// Propagates write failures from `w`.
    pub fn write_pcap<W: Write>(&self, w: W) -> io::Result<()> {
        let mut pw = PcapWriter::new(w, LINKTYPE_RADIOTAP)?;
        for (k, mpdu) in self.frames.iter().enumerate() {
            let mut pkt = Self::radiotap_for(k);
            pkt.extend_from_slice(mpdu);
            pw.write_packet(Self::ts_for(k), &pkt)?;
        }
        pw.finish()?;
        Ok(())
    }

    /// Exports the capture as a pcapng file (SHB + IDB + EPBs,
    /// nanosecond timestamps); otherwise identical to
    /// [`ReplaySource::write_pcap`].
    ///
    /// # Errors
    ///
    /// Propagates write failures from `w`.
    pub fn write_pcapng<W: Write>(&self, w: W) -> io::Result<()> {
        let mut pw = PcapngWriter::new(w, LINKTYPE_RADIOTAP)?;
        for (k, mpdu) in self.frames.iter().enumerate() {
            let mut pkt = Self::radiotap_for(k);
            pkt.extend_from_slice(mpdu);
            pw.write_packet(Self::ts_for(k), &pkt)?;
        }
        pw.finish()?;
        Ok(())
    }

    /// Resets the [`FrameSource`] read position to the first frame.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

/// The in-memory capture viewed through the engine's source interface:
/// frames come out in arrival order with the same timestamps the pcap
/// export writes, so both paths see an identical stream.
impl FrameSource for ReplaySource {
    fn poll_frame(&mut self) -> Result<SourcePoll, deepcsi_capture::CaptureError> {
        match self.frames.get(self.cursor) {
            Some(mpdu) => {
                let frame = CandidateFrame {
                    mpdu: mpdu.clone(),
                    ts_nanos: Self::ts_for(self.cursor),
                    rssi_dbm: Some(Self::rssi_for(self.cursor)),
                    channel_mhz: Some(Self::CHANNEL_MHZ),
                };
                self.cursor += 1;
                Ok(SourcePoll::Frame(frame))
            }
            None => Ok(SourcePoll::End),
        }
    }

    fn counters(&self) -> CaptureCounters {
        CaptureCounters {
            bytes_read: self.frames[..self.cursor]
                .iter()
                .map(Vec::len)
                .sum::<usize>() as u64,
            packets_seen: self.cursor as u64,
            prefilter_skipped: 0,
            decode_errors: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_data::{generate_trace, GenConfig, TraceKind, TraceSpec};
    use deepcsi_impair::DeviceId;

    fn tiny_dataset() -> Dataset {
        let gen = GenConfig {
            num_modules: 2,
            snapshots_per_trace: 3,
            ..GenConfig::default()
        };
        let traces = (0..2)
            .map(|m| {
                generate_trace(
                    &gen,
                    &TraceSpec {
                        module: DeviceId(m),
                        beamformee: 1,
                        n_rx: 2,
                        rx_position: 3,
                        kind: TraceKind::D1Static { position: 3 },
                    },
                )
            })
            .collect();
        Dataset { traces }
    }

    #[test]
    fn interleaves_all_snapshots() {
        let ds = tiny_dataset();
        let replay = ReplaySource::from_dataset(&ds);
        assert_eq!(replay.len(), 6);
        assert!(replay.total_bytes() > 0);
        // Round-robin: consecutive frames alternate sources.
        let sources: Vec<MacAddr> = replay
            .frames()
            .map(|f| {
                BeamformingReportFrame::parse(f)
                    .expect("valid frame")
                    .source()
            })
            .collect();
        assert_eq!(sources[0], sources[2]);
        assert_ne!(sources[0], sources[1]);
    }

    #[test]
    fn registry_covers_every_trace() {
        let ds = tiny_dataset();
        let reg = ReplaySource::registry(&ds);
        assert_eq!(reg.len(), 2);
        for trace in &ds.traces {
            assert_eq!(
                reg.expected(ReplaySource::source_mac(trace)),
                Some(trace.module)
            );
        }
    }
}
