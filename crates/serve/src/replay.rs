//! Replaying stored datasets through the engine as an interleaved frame
//! stream — the offline stand-in for a monitor-mode capture interface.

use crate::registry::DeviceRegistry;
use deepcsi_data::{Dataset, Trace};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};

/// An encoded multi-device capture: every trace of a dataset re-framed as
/// VHT compressed beamforming reports and interleaved round-robin, the
/// way a passive monitor would see concurrent streams.
#[derive(Debug, Clone, Default)]
pub struct ReplaySource {
    frames: Vec<Vec<u8>>,
}

impl ReplaySource {
    /// The deterministic source address used for a trace's stream
    /// (encodes the AP module and the reporting beamformee).
    pub fn source_mac(trace: &Trace) -> MacAddr {
        MacAddr::station(u64::from(trace.module.0) << 8 | u64::from(trace.beamformee))
    }

    /// A registry expecting every trace's stream to present its module.
    pub fn registry(ds: &Dataset) -> DeviceRegistry {
        let mut reg = DeviceRegistry::new();
        for trace in &ds.traces {
            reg.register(Self::source_mac(trace), trace.module);
        }
        reg
    }

    /// Encodes and interleaves `ds`: snapshot 0 of every trace, then
    /// snapshot 1 of every trace, and so on (traces shorter than the
    /// longest simply stop contributing).
    pub fn from_dataset(ds: &Dataset) -> Self {
        let monitor = MacAddr::station(0xAC_CE55);
        let longest = ds.traces.iter().map(Trace::len).max().unwrap_or(0);
        let mut frames = Vec::with_capacity(ds.num_snapshots());
        for k in 0..longest {
            for trace in &ds.traces {
                let Some(fb) = trace.snapshots.get(k) else {
                    continue;
                };
                frames.push(
                    BeamformingReportFrame::new(
                        monitor,
                        Self::source_mac(trace),
                        monitor,
                        (k % 4096) as u16,
                        fb.clone(),
                    )
                    .encode(),
                );
            }
        }
        ReplaySource { frames }
    }

    /// The encoded frames, in arrival order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        self.frames.iter().map(Vec::as_slice)
    }

    /// Number of frames in the capture.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the capture holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total encoded bytes (for line-rate reporting).
    pub fn total_bytes(&self) -> usize {
        self.frames.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_data::{generate_trace, GenConfig, TraceKind, TraceSpec};
    use deepcsi_impair::DeviceId;

    fn tiny_dataset() -> Dataset {
        let gen = GenConfig {
            num_modules: 2,
            snapshots_per_trace: 3,
            ..GenConfig::default()
        };
        let traces = (0..2)
            .map(|m| {
                generate_trace(
                    &gen,
                    &TraceSpec {
                        module: DeviceId(m),
                        beamformee: 1,
                        n_rx: 2,
                        rx_position: 3,
                        kind: TraceKind::D1Static { position: 3 },
                    },
                )
            })
            .collect();
        Dataset { traces }
    }

    #[test]
    fn interleaves_all_snapshots() {
        let ds = tiny_dataset();
        let replay = ReplaySource::from_dataset(&ds);
        assert_eq!(replay.len(), 6);
        assert!(replay.total_bytes() > 0);
        // Round-robin: consecutive frames alternate sources.
        let sources: Vec<MacAddr> = replay
            .frames()
            .map(|f| {
                BeamformingReportFrame::parse(f)
                    .expect("valid frame")
                    .source()
            })
            .collect();
        assert_eq!(sources[0], sources[2]);
        assert_ne!(sources[0], sources[1]);
    }

    #[test]
    fn registry_covers_every_trace() {
        let ds = tiny_dataset();
        let reg = ReplaySource::registry(&ds);
        assert_eq!(reg.len(), 2);
        for trace in &ds.traces {
            assert_eq!(
                reg.expected(ReplaySource::source_mac(trace)),
                Some(trace.module)
            );
        }
    }
}
