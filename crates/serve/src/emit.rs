//! Periodic metrics publication to files.
//!
//! The file-based half of the observability story (the live half is
//! [`ObsPlane`](crate::ObsPlane)): [`emit_metrics`] renders one
//! interval's registry — every [`Telemetry`] counter plus interval
//! rates computed against the previous snapshot — to a Prometheus
//! text file (rewritten whole) and/or a JSONL file (appended), and
//! [`MetricsEmitter`] runs it on a timer thread.
//!
//! The emitter's shutdown contract matters: [`MetricsEmitter::stop`]
//! emits the **final partial interval** before the thread exits, so the
//! tail of a run — often the only part a failing CI job has — is never
//! lost. An earlier version returned on the stop signal without
//! emitting, silently dropping up to one full `--metrics-interval` of
//! data at every exit; the regression test in this module pins the
//! flush.

use crate::telemetry::{EngineStats, Telemetry};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// One metrics publication: render the registry (plus interval rates
/// from `prev` → now) to the Prometheus file (rewritten whole) and/or
/// the JSONL file (appended). Returns the snapshot taken, so the caller
/// can thread it back in as the next interval's `prev`.
///
/// # Panics
///
/// Panics when a metrics file cannot be written — an operator asked for
/// artifacts this process cannot produce, which is a deployment bug.
pub fn emit_metrics(
    telemetry: &Telemetry,
    prev: &EngineStats,
    prom_path: Option<&str>,
    json_path: Option<&str>,
) -> EngineStats {
    let now = telemetry.snapshot();
    let delta = now.delta(prev);
    let mut reg = telemetry.metrics();
    reg.gauge(
        "deepcsi_interval_seconds",
        "wall seconds covered by this interval's rate gauges",
        delta.wall.as_secs_f64(),
    );
    reg.gauge(
        "deepcsi_ingested_per_sec",
        "frames ingested per second over the last interval",
        delta.ingested_per_sec(),
    );
    reg.gauge(
        "deepcsi_classified_per_sec",
        "reports classified per second over the last interval",
        delta.classified_per_sec(),
    );
    reg.gauge(
        "deepcsi_dropped_per_sec",
        "reports dropped per second over the last interval",
        delta.dropped_per_sec(),
    );
    if let Some(path) = prom_path {
        std::fs::write(path, reg.to_prometheus())
            .unwrap_or_else(|e| panic!("writing metrics file {path}: {e}"));
    }
    if let Some(path) = json_path {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("opening metrics JSONL {path}: {e}"));
        writeln!(f, "{}", reg.to_json_line())
            .unwrap_or_else(|e| panic!("appending metrics JSONL {path}: {e}"));
    }
    now
}

/// Periodic metrics publisher: a thread that calls [`emit_metrics`]
/// every `interval` until told to stop, then emits the final partial
/// interval. Create one when at least one metrics output is requested.
pub struct MetricsEmitter {
    stop: mpsc::Sender<()>,
    handle: std::thread::JoinHandle<EngineStats>,
}

impl MetricsEmitter {
    /// Starts the timer thread. `prom` / `json` are the output paths
    /// (at least one should be `Some`, or the thread renders registries
    /// nobody reads).
    pub fn spawn(
        telemetry: Arc<Telemetry>,
        interval: Duration,
        prom: Option<String>,
        json: Option<String>,
    ) -> MetricsEmitter {
        assert!(!interval.is_zero(), "emit interval must be positive");
        let (stop, rx) = mpsc::channel::<()>();
        let handle = std::thread::Builder::new()
            .name("deepcsi-metrics-emitter".to_string())
            .spawn(move || {
                let mut prev = telemetry.snapshot();
                loop {
                    match rx.recv_timeout(interval) {
                        Err(RecvTimeoutError::Timeout) => {
                            prev =
                                emit_metrics(&telemetry, &prev, prom.as_deref(), json.as_deref());
                        }
                        // Stop (or an emitter leak — sender dropped):
                        // flush the partial interval since the last
                        // emission, so the run's tail is never lost.
                        Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                            return emit_metrics(
                                &telemetry,
                                &prev,
                                prom.as_deref(),
                                json.as_deref(),
                            );
                        }
                    }
                }
            })
            .expect("spawn metrics emitter");
        MetricsEmitter { stop, handle }
    }

    /// Stops the thread, emitting the final partial interval first, and
    /// returns the snapshot that final emission took.
    pub fn stop(self) -> EngineStats {
        let _ = self.stop.send(());
        self.handle.join().expect("metrics emitter panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn stop_flushes_the_final_partial_interval() {
        let dir = std::env::temp_dir().join("deepcsi-emit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join(format!("metrics-{}.jsonl", std::process::id()));
        let prom = dir.join(format!("metrics-{}.prom", std::process::id()));
        std::fs::remove_file(&json).ok();

        let telemetry = Arc::new(Telemetry::default());
        // Interval far longer than the test: the timer never fires, so
        // any output can only come from the stop-flush.
        let emitter = MetricsEmitter::spawn(
            Arc::clone(&telemetry),
            Duration::from_secs(3600),
            Some(prom.display().to_string()),
            Some(json.display().to_string()),
        );
        telemetry.ingested.store(42, Ordering::Relaxed);
        telemetry.record_batch(40, Duration::from_micros(100));
        let last = emitter.stop();
        assert_eq!(last.ingested, 42);

        // The final interval made it to both files.
        let lines: Vec<String> = std::fs::read_to_string(&json)
            .expect("stop() must flush the JSONL")
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(lines.len(), 1, "exactly the final flush, no timer fires");
        let v = deepcsi_obs::JsonValue::parse(&lines[0]).expect("jsonl parses");
        assert_eq!(
            v.get("deepcsi_ingested_total").unwrap().as_f64(),
            Some(42.0)
        );
        let text = std::fs::read_to_string(&prom).expect("stop() must rewrite the prom file");
        assert!(text.contains("deepcsi_ingested_total 42"));
        assert!(deepcsi_obs::parse_prometheus(&text).is_ok());

        std::fs::remove_file(&json).ok();
        std::fs::remove_file(&prom).ok();
    }
}
