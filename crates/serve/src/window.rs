//! Per-device sliding-window decision smoothing.
//!
//! One classified report is noisy; DeepCSI-style deployments decide from
//! many (§IV-A groups feedback per beamformee). A [`DecisionWindow`]
//! keeps the last `len` per-report predictions and produces a majority
//! vote plus an exponentially-smoothed confidence, so a device's verdict
//! reflects the stream, not the latest packet.
//!
//! The window is the evidence store behind the default
//! [`FixedMajority`](crate::FixedMajority) policy and the
//! [`AdaptiveThreshold`](crate::AdaptiveThreshold) majority track; the
//! [`ConfidenceWeighted`](crate::ConfidenceWeighted) policy replaces it
//! with a weighted variant.

use std::collections::VecDeque;

/// Sliding-window configuration.
///
/// ```
/// use deepcsi_serve::WindowConfig;
///
/// let cfg = WindowConfig::default();
/// assert_eq!(cfg.len, 25);
/// assert!(cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Number of most-recent reports that vote.
    pub len: usize,
    /// EMA coefficient for the confidence track (weight of the newest
    /// observation, in `(0, 1]`). An alpha of exactly `1.0` disables
    /// smoothing: the EMA is always the latest report's confidence.
    pub ema_alpha: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            len: 25,
            ema_alpha: 0.2,
        }
    }
}

/// The smoothed state of one device's report stream.
///
/// ```
/// use deepcsi_serve::{DecisionWindow, WindowConfig};
///
/// let mut w = DecisionWindow::new(WindowConfig { len: 3, ema_alpha: 0.5 });
/// assert!(w.decision().is_none()); // no reports yet
/// for module in [7, 7, 2] {
///     w.push(module, 0.9);
/// }
/// let d = w.decision().unwrap();
/// assert_eq!(d.module, 7);
/// assert!((d.vote_fraction - 2.0 / 3.0).abs() < 1e-12);
/// assert_eq!(d.observations, 3);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionWindow {
    cfg: WindowConfig,
    votes: VecDeque<usize>,
    counts: Vec<u32>,
    ema: Option<f64>,
    observations: u64,
}

/// A windowed identity decision for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedDecision {
    /// Majority module id over the window (ties resolve to the smaller
    /// id, deterministically).
    pub module: usize,
    /// The winning module's share of the window, in `(0, 1]`.
    ///
    /// Under a counted majority ([`DecisionWindow`]) this is the
    /// fraction of window votes agreeing with `module`; the
    /// [`ConfidenceWeighted`](crate::ConfidenceWeighted) policy reports
    /// its share of the window's confidence *mass* here instead. Either
    /// way the range is `(0, 1]` — a decision only exists once at least
    /// one report voted, and the winner holds at least that vote —
    /// which `serve/tests/proptests.rs` pins as a property.
    pub vote_fraction: f64,
    /// Exponential moving average of per-report classifier confidence.
    pub confidence_ema: f64,
    /// Total reports ever observed for this device.
    pub observations: u64,
}

impl DecisionWindow {
    /// Creates an empty window.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length window or an alpha outside `(0, 1]`.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(cfg.len > 0, "window length must be positive");
        assert!(
            cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0,
            "ema_alpha must be in (0, 1]"
        );
        DecisionWindow {
            cfg,
            votes: VecDeque::with_capacity(cfg.len),
            counts: Vec::new(),
            ema: None,
            observations: 0,
        }
    }

    /// Feeds one classified report (predicted module + classifier
    /// confidence in `[0, 1]`).
    pub fn push(&mut self, module: usize, confidence: f64) {
        if module >= self.counts.len() {
            self.counts.resize(module + 1, 0);
        }
        if self.votes.len() == self.cfg.len {
            let expired = self.votes.pop_front().expect("window non-empty");
            self.counts[expired] -= 1;
        }
        self.votes.push_back(module);
        self.counts[module] += 1;
        self.ema = Some(match self.ema {
            None => confidence,
            Some(prev) => prev + self.cfg.ema_alpha * (confidence - prev),
        });
        self.observations += 1;
    }

    /// Applies a new configuration in place, preserving as much of the
    /// live evidence as the new window admits.
    ///
    /// Shrinking evicts the *oldest* votes (exactly as if they had
    /// expired); growing keeps every current vote and simply allows more
    /// before expiry resumes. The confidence EMA and the observation
    /// count are untouched; the new alpha applies from the next
    /// [`push`](DecisionWindow::push).
    ///
    /// ```
    /// use deepcsi_serve::{DecisionWindow, WindowConfig};
    ///
    /// let mut w = DecisionWindow::new(WindowConfig { len: 5, ema_alpha: 0.5 });
    /// for module in [9, 9, 9, 1, 1] {
    ///     w.push(module, 0.9);
    /// }
    /// // Shrink to the 3 newest votes: [9, 1, 1] — the majority flips.
    /// w.reconfigure(WindowConfig { len: 3, ema_alpha: 0.5 });
    /// assert_eq!(w.len(), 3);
    /// assert_eq!(w.decision().unwrap().module, 1);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration, like
    /// [`new`](DecisionWindow::new).
    pub fn reconfigure(&mut self, cfg: WindowConfig) {
        assert!(cfg.len > 0, "window length must be positive");
        assert!(
            cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0,
            "ema_alpha must be in (0, 1]"
        );
        while self.votes.len() > cfg.len {
            let expired = self.votes.pop_front().expect("window non-empty");
            self.counts[expired] -= 1;
        }
        self.cfg = cfg;
    }

    /// The current decision.
    ///
    /// Contract: returns `None` if and only if no report has ever been
    /// pushed; from the first [`push`](DecisionWindow::push) onward a
    /// decision is always available (and its `vote_fraction` is in
    /// `(0, 1]`).
    ///
    /// ```
    /// use deepcsi_serve::{DecisionWindow, WindowConfig};
    ///
    /// let mut w = DecisionWindow::new(WindowConfig::default());
    /// assert!(w.decision().is_none()); // None before the first push…
    /// w.push(0, 0.5);
    /// assert!(w.decision().is_some()); // …Some ever after
    /// ```
    pub fn decision(&self) -> Option<WindowedDecision> {
        if self.votes.is_empty() {
            return None;
        }
        let (module, &count) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .expect("counts non-empty");
        Some(WindowedDecision {
            module,
            vote_fraction: f64::from(count) / self.votes.len() as f64,
            confidence_ema: self.ema.expect("set with first vote"),
            observations: self.observations,
        })
    }

    /// Number of votes currently in the window.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// `true` before the first report.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// The window's current configuration.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// A plain-data image of the live evidence, for policy-state
    /// snapshot/restore ([`DecisionWindow::restore`]).
    pub fn snapshot(&self) -> WindowSnapshot {
        WindowSnapshot {
            votes: self.votes.iter().copied().collect(),
            ema: self.ema,
            observations: self.observations,
        }
    }

    /// Rebuilds a window from a snapshot under `cfg`.
    ///
    /// Restoring under the *same* configuration the snapshot was taken
    /// with is bit-exact: counts are integers rebuilt from the stored
    /// votes and the EMA is copied verbatim, so
    /// [`decision`](DecisionWindow::decision) answers identically before
    /// and after a round-trip. A shorter window drops the oldest votes
    /// (exactly as if they had expired). An inconsistent image (votes
    /// without an EMA) is normalized to an EMA of `0.0` rather than left
    /// to panic later.
    ///
    /// ```
    /// use deepcsi_serve::{DecisionWindow, WindowConfig};
    ///
    /// let cfg = WindowConfig { len: 3, ema_alpha: 0.5 };
    /// let mut w = DecisionWindow::new(cfg);
    /// for module in [7, 7, 2] {
    ///     w.push(module, 0.9);
    /// }
    /// let restored = DecisionWindow::restore(cfg, &w.snapshot());
    /// assert_eq!(restored.decision(), w.decision());
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration, like
    /// [`new`](DecisionWindow::new).
    pub fn restore(cfg: WindowConfig, snap: &WindowSnapshot) -> DecisionWindow {
        let mut w = DecisionWindow::new(cfg);
        let skip = snap.votes.len().saturating_sub(cfg.len);
        for &module in snap.votes.iter().skip(skip) {
            if module >= w.counts.len() {
                w.counts.resize(module + 1, 0);
            }
            w.votes.push_back(module);
            w.counts[module] += 1;
        }
        w.ema = if w.votes.is_empty() {
            snap.ema
        } else {
            snap.ema.or(Some(0.0))
        };
        w.observations = snap.observations;
        w
    }
}

/// Plain-data image of a [`DecisionWindow`] (see
/// [`DecisionWindow::snapshot`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSnapshot {
    /// Live votes, oldest first.
    pub votes: Vec<usize>,
    /// The confidence EMA (`None` before the first vote).
    pub ema: Option<f64>,
    /// Total reports ever observed.
    pub observations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(len: usize) -> DecisionWindow {
        DecisionWindow::new(WindowConfig {
            len,
            ema_alpha: 0.5,
        })
    }

    #[test]
    fn empty_window_has_no_decision() {
        assert!(window(4).decision().is_none());
    }

    #[test]
    fn majority_vote_wins() {
        let mut w = window(5);
        for m in [1, 1, 2, 1, 2] {
            w.push(m, 0.9);
        }
        let d = w.decision().unwrap();
        assert_eq!(d.module, 1);
        assert!((d.vote_fraction - 0.6).abs() < 1e-9);
        assert_eq!(d.observations, 5);
    }

    #[test]
    fn old_votes_expire() {
        let mut w = window(3);
        for m in [7, 7, 7, 2, 2, 2] {
            w.push(m, 0.5);
        }
        assert_eq!(w.decision().unwrap().module, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.decision().unwrap().observations, 6);
    }

    #[test]
    fn ties_resolve_to_smaller_module() {
        let mut w = window(4);
        for m in [3, 0, 3, 0] {
            w.push(m, 0.5);
        }
        assert_eq!(w.decision().unwrap().module, 0);
    }

    #[test]
    fn exact_fifty_fifty_ties_are_order_independent() {
        // Every interleaving of a perfectly split window must decide the
        // same way: the smaller module id, deterministically.
        let orders: [[usize; 4]; 6] = [
            [2, 2, 5, 5],
            [2, 5, 2, 5],
            [2, 5, 5, 2],
            [5, 2, 2, 5],
            [5, 2, 5, 2],
            [5, 5, 2, 2],
        ];
        for order in orders {
            let mut w = window(4);
            for m in order {
                w.push(m, 0.7);
            }
            let d = w.decision().unwrap();
            assert_eq!(d.module, 2, "order {order:?} broke tie determinism");
            assert!((d.vote_fraction - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn ema_tracks_confidence() {
        let mut w = window(8);
        w.push(0, 1.0);
        assert!((w.decision().unwrap().confidence_ema - 1.0).abs() < 1e-9);
        w.push(0, 0.0);
        // α = 0.5 → 1.0 + 0.5(0 − 1) = 0.5.
        assert!((w.decision().unwrap().confidence_ema - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ema_alpha_one_is_the_latest_confidence() {
        let mut w = DecisionWindow::new(WindowConfig {
            len: 4,
            ema_alpha: 1.0,
        });
        for c in [0.9, 0.1, 0.6, 0.33] {
            w.push(0, c);
            let ema = w.decision().unwrap().confidence_ema;
            assert!(
                (ema - c).abs() < 1e-12,
                "alpha=1.0 must track the newest confidence exactly (got {ema}, want {c})"
            );
        }
    }

    #[test]
    fn reconfigure_shrink_evicts_oldest_votes() {
        let mut w = window(5);
        for m in [9, 9, 9, 1, 1] {
            w.push(m, 0.8);
        }
        assert_eq!(w.decision().unwrap().module, 9);
        w.reconfigure(WindowConfig {
            len: 3,
            ema_alpha: 0.5,
        });
        // Survivors are the newest three: [9, 1, 1].
        assert_eq!(w.len(), 3);
        let d = w.decision().unwrap();
        assert_eq!(d.module, 1);
        assert!((d.vote_fraction - 2.0 / 3.0).abs() < 1e-12);
        // Observations and EMA are history, not window contents.
        assert_eq!(d.observations, 5);
        // Expiry works at the new length.
        w.push(4, 0.8);
        assert_eq!(w.len(), 3);
        assert_eq!(w.decision().unwrap().module, 1); // [1, 1, 4]
    }

    #[test]
    fn reconfigure_grow_keeps_votes_and_extends_capacity() {
        let mut w = window(2);
        w.push(3, 0.5);
        w.push(3, 0.5);
        w.reconfigure(WindowConfig {
            len: 4,
            ema_alpha: 0.5,
        });
        w.push(8, 0.5);
        w.push(8, 0.5);
        assert_eq!(w.len(), 4);
        // Tie at 2–2 → smaller id.
        assert_eq!(w.decision().unwrap().module, 3);
        assert_eq!(w.config().len, 4);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_length_window_panics() {
        let _ = window(0);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn reconfigure_to_zero_panics() {
        let mut w = window(3);
        w.reconfigure(WindowConfig {
            len: 0,
            ema_alpha: 0.5,
        });
    }
}
