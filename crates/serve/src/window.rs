//! Per-device sliding-window decision smoothing.
//!
//! One classified report is noisy; DeepCSI-style deployments decide from
//! many (§IV-A groups feedback per beamformee). A [`DecisionWindow`]
//! keeps the last `len` per-report predictions and produces a majority
//! vote plus an exponentially-smoothed confidence, so a device's verdict
//! reflects the stream, not the latest packet.

use std::collections::VecDeque;

/// Sliding-window configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Number of most-recent reports that vote.
    pub len: usize,
    /// EMA coefficient for the confidence track (weight of the newest
    /// observation, in `(0, 1]`).
    pub ema_alpha: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            len: 25,
            ema_alpha: 0.2,
        }
    }
}

/// The smoothed state of one device's report stream.
#[derive(Debug, Clone)]
pub struct DecisionWindow {
    cfg: WindowConfig,
    votes: VecDeque<usize>,
    counts: Vec<u32>,
    ema: Option<f64>,
    observations: u64,
}

/// A windowed identity decision for one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowedDecision {
    /// Majority module id over the window (ties resolve to the smaller
    /// id, deterministically).
    pub module: usize,
    /// Fraction of window votes agreeing with `module`, in `(0, 1]`.
    pub vote_fraction: f64,
    /// Exponential moving average of per-report classifier confidence.
    pub confidence_ema: f64,
    /// Total reports ever observed for this device.
    pub observations: u64,
}

impl DecisionWindow {
    /// Creates an empty window.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length window or an alpha outside `(0, 1]`.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(cfg.len > 0, "window length must be positive");
        assert!(
            cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0,
            "ema_alpha must be in (0, 1]"
        );
        DecisionWindow {
            cfg,
            votes: VecDeque::with_capacity(cfg.len),
            counts: Vec::new(),
            ema: None,
            observations: 0,
        }
    }

    /// Feeds one classified report (predicted module + classifier
    /// confidence in `[0, 1]`).
    pub fn push(&mut self, module: usize, confidence: f64) {
        if module >= self.counts.len() {
            self.counts.resize(module + 1, 0);
        }
        if self.votes.len() == self.cfg.len {
            let expired = self.votes.pop_front().expect("window non-empty");
            self.counts[expired] -= 1;
        }
        self.votes.push_back(module);
        self.counts[module] += 1;
        self.ema = Some(match self.ema {
            None => confidence,
            Some(prev) => prev + self.cfg.ema_alpha * (confidence - prev),
        });
        self.observations += 1;
    }

    /// The current decision; `None` before the first report.
    pub fn decision(&self) -> Option<WindowedDecision> {
        if self.votes.is_empty() {
            return None;
        }
        let (module, &count) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .expect("counts non-empty");
        Some(WindowedDecision {
            module,
            vote_fraction: f64::from(count) / self.votes.len() as f64,
            confidence_ema: self.ema.expect("set with first vote"),
            observations: self.observations,
        })
    }

    /// Number of votes currently in the window.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// `true` before the first report.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(len: usize) -> DecisionWindow {
        DecisionWindow::new(WindowConfig {
            len,
            ema_alpha: 0.5,
        })
    }

    #[test]
    fn empty_window_has_no_decision() {
        assert!(window(4).decision().is_none());
    }

    #[test]
    fn majority_vote_wins() {
        let mut w = window(5);
        for m in [1, 1, 2, 1, 2] {
            w.push(m, 0.9);
        }
        let d = w.decision().unwrap();
        assert_eq!(d.module, 1);
        assert!((d.vote_fraction - 0.6).abs() < 1e-9);
        assert_eq!(d.observations, 5);
    }

    #[test]
    fn old_votes_expire() {
        let mut w = window(3);
        for m in [7, 7, 7, 2, 2, 2] {
            w.push(m, 0.5);
        }
        assert_eq!(w.decision().unwrap().module, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w.decision().unwrap().observations, 6);
    }

    #[test]
    fn ties_resolve_to_smaller_module() {
        let mut w = window(4);
        for m in [3, 0, 3, 0] {
            w.push(m, 0.5);
        }
        assert_eq!(w.decision().unwrap().module, 0);
    }

    #[test]
    fn ema_tracks_confidence() {
        let mut w = window(8);
        w.push(0, 1.0);
        assert!((w.decision().unwrap().confidence_ema - 1.0).abs() < 1e-9);
        w.push(0, 0.0);
        // α = 0.5 → 1.0 + 0.5(0 − 1) = 0.5.
        assert!((w.decision().unwrap().confidence_ema - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_length_window_panics() {
        let _ = window(0);
    }
}
