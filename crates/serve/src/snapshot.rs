//! Engine snapshot/restore: persist per-device policy state across
//! process restarts.
//!
//! `AdaptiveThreshold` floors are *learned* — losing them on restart
//! means every device re-runs calibration, and during that window a
//! right-module/wrong-confidence impostor is indistinguishable from a
//! re-warming registrant. An [`EngineSnapshot`] captures every device's
//! [`PolicySnapshot`] (plus its decided-at bookkeeping) in a compact
//! versioned binary format with a trailing CRC, so
//! [`Engine::restore`](crate::Engine::restore) can resume exactly where
//! the previous process stopped.
//!
//! The format is deliberately strict to decode: bad magic, an unknown
//! version, a truncated buffer, a CRC mismatch, an unknown tag, or
//! trailing garbage each produce a distinct [`SnapshotError`] instead of
//! a best-effort partial restore.

use crate::policy::{PolicyKind, PolicySnapshot, WelfordSnapshot};
use crate::window::WindowSnapshot;
use deepcsi_frame::MacAddr;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// File magic: "DCSS" (DeepCSI State Snapshot).
const MAGIC: [u8; 4] = *b"DCSS";

/// Current format version.
const VERSION: u16 = 1;

/// Builds the standard IEEE CRC-32 table at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (the pcap/zlib polynomial) over `bytes`.
///
/// Shared by the snapshot format and the cluster wire codec, so both
/// integrity checks agree on one implementation.
///
/// ```
/// // The canonical check value for "123456789".
/// assert_eq!(deepcsi_serve::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Why a snapshot failed to decode (or to read/write).
#[derive(Debug)]
pub enum SnapshotError {
    /// The buffer does not start with the `DCSS` magic.
    BadMagic,
    /// A format version this build does not understand.
    UnsupportedVersion(u16),
    /// The buffer ended before the encoded structure did.
    Truncated,
    /// The trailing CRC does not match the payload.
    BadCrc {
        /// CRC computed over the received payload.
        expected: u32,
        /// CRC stored in the buffer.
        found: u32,
    },
    /// An unknown policy-kind or option tag.
    BadTag(u8),
    /// Bytes remained after the encoded structure and its CRC.
    TrailingBytes,
    /// Reading or writing the snapshot file failed.
    Io(io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a DCSS snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadCrc { expected, found } => {
                write!(
                    f,
                    "snapshot CRC mismatch (computed {expected:#010x}, stored {found:#010x})"
                )
            }
            SnapshotError::BadTag(t) => write!(f, "unknown snapshot tag {t:#04x}"),
            SnapshotError::TrailingBytes => write!(f, "trailing bytes after snapshot"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u64(out, x);
        }
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
    }
}

fn put_window(out: &mut Vec<u8>, w: &WindowSnapshot) {
    put_u32(out, w.votes.len() as u32);
    for &m in &w.votes {
        put_u32(out, u32::try_from(m).expect("module index fits u32"));
    }
    put_opt_f64(out, w.ema);
    put_u64(out, w.observations);
}

fn put_welford(out: &mut Vec<u8>, w: &WelfordSnapshot) {
    put_u64(out, w.count);
    put_f64(out, w.mean);
    put_f64(out, w.m2);
}

fn policy_kind_tag(kind: PolicyKind) -> u8 {
    match kind {
        PolicyKind::FixedMajority => 1,
        PolicyKind::ConfidenceWeighted => 2,
        PolicyKind::AdaptiveThreshold => 3,
    }
}

fn put_policy(out: &mut Vec<u8>, snap: &PolicySnapshot) {
    out.push(policy_kind_tag(snap.kind()));
    match snap {
        PolicySnapshot::Fixed { window } => put_window(out, window),
        PolicySnapshot::Confidence {
            votes,
            weights,
            ema,
            observations,
        } => {
            put_u32(out, votes.len() as u32);
            for &(m, w) in votes {
                put_u32(out, u32::try_from(m).expect("module index fits u32"));
                put_f64(out, w);
            }
            put_u32(out, weights.len() as u32);
            for &w in weights {
                put_f64(out, w);
            }
            put_opt_f64(out, *ema);
            put_u64(out, *observations);
        }
        PolicySnapshot::Adaptive {
            window,
            calib,
            vote_calib,
            profile,
            threshold,
            vote_gate,
        } => {
            put_window(out, window);
            put_welford(out, calib);
            put_welford(out, vote_calib);
            match profile {
                None => out.push(0),
                Some((mean, sigma)) => {
                    out.push(1);
                    put_f64(out, *mean);
                    put_f64(out, *sigma);
                }
            }
            put_opt_f64(out, *threshold);
            put_opt_f64(out, *vote_gate);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Strict little-endian reader: every take checks the remaining length
/// *before* touching (or allocating for) the payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(SnapshotError::BadTag(t)),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            t => Err(SnapshotError::BadTag(t)),
        }
    }

    /// A length prefix validated against the bytes actually present
    /// (`elem_size` bytes per element) before any allocation — a lying
    /// length cannot make the decoder allocate gigabytes.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if self.remaining() / elem_size.max(1) < n {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn window(&mut self) -> Result<WindowSnapshot, SnapshotError> {
        let n = self.checked_len(4)?;
        let mut votes = Vec::with_capacity(n);
        for _ in 0..n {
            votes.push(self.u32()? as usize);
        }
        let ema = self.opt_f64()?;
        let observations = self.u64()?;
        Ok(WindowSnapshot {
            votes,
            ema,
            observations,
        })
    }

    fn welford(&mut self) -> Result<WelfordSnapshot, SnapshotError> {
        Ok(WelfordSnapshot {
            count: self.u64()?,
            mean: self.f64()?,
            m2: self.f64()?,
        })
    }

    fn policy(&mut self) -> Result<PolicySnapshot, SnapshotError> {
        match self.u8()? {
            1 => Ok(PolicySnapshot::Fixed {
                window: self.window()?,
            }),
            2 => {
                let n = self.checked_len(12)?;
                let mut votes = Vec::with_capacity(n);
                for _ in 0..n {
                    let m = self.u32()? as usize;
                    let w = self.f64()?;
                    votes.push((m, w));
                }
                let k = self.checked_len(8)?;
                let mut weights = Vec::with_capacity(k);
                for _ in 0..k {
                    weights.push(self.f64()?);
                }
                let ema = self.opt_f64()?;
                let observations = self.u64()?;
                Ok(PolicySnapshot::Confidence {
                    votes,
                    weights,
                    ema,
                    observations,
                })
            }
            3 => {
                let window = self.window()?;
                let calib = self.welford()?;
                let vote_calib = self.welford()?;
                let profile = match self.u8()? {
                    0 => None,
                    1 => Some((self.f64()?, self.f64()?)),
                    t => return Err(SnapshotError::BadTag(t)),
                };
                let threshold = self.opt_f64()?;
                let vote_gate = self.opt_f64()?;
                Ok(PolicySnapshot::Adaptive {
                    window,
                    calib,
                    vote_calib,
                    profile,
                    threshold,
                    vote_gate,
                })
            }
            t => Err(SnapshotError::BadTag(t)),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot structures
// ---------------------------------------------------------------------------

/// One device's saved serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    /// The transmitter the state belongs to.
    pub mac: MacAddr,
    /// Report index of the first decisive verdict, if one was reached.
    pub decided_at: Option<u64>,
    /// The policy evidence (windows, floors, calibration).
    pub policy: PolicySnapshot,
}

/// Every device's saved state under one engine, encodable to a compact
/// versioned binary image.
///
/// Layout (all integers little-endian):
///
/// ```text
/// "DCSS" | version u16 | policy-kind u8 | count u32
///   count × [ mac 6B | decided_at Option<u64> | tagged PolicySnapshot ]
/// crc32 u32            (IEEE, over every preceding byte)
/// ```
///
/// ```
/// use deepcsi_serve::EngineSnapshot;
///
/// let snap = EngineSnapshot { policy: Default::default(), devices: vec![] };
/// let bytes = snap.encode();
/// assert_eq!(EngineSnapshot::decode(&bytes).unwrap(), snap);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// The policy the states were learned under. Restore refuses
    /// per-device on a kind mismatch (see
    /// [`DecisionPolicy::restore_state`](crate::DecisionPolicy::restore_state)).
    pub policy: PolicyKind,
    /// Per-device states, sorted by MAC for deterministic bytes.
    pub devices: Vec<DeviceSnapshot>,
}

impl EngineSnapshot {
    /// Serializes to the `DCSS` binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.devices.len() * 128);
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, VERSION);
        out.push(policy_kind_tag(self.policy));
        put_u32(&mut out, self.devices.len() as u32);
        for dev in &self.devices {
            out.extend_from_slice(&dev.mac.octets());
            put_opt_u64(&mut out, dev.decided_at);
            put_policy(&mut out, &dev.policy);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Strictly decodes a `DCSS` image produced by
    /// [`encode`](EngineSnapshot::encode).
    pub fn decode(buf: &[u8]) -> Result<EngineSnapshot, SnapshotError> {
        // CRC first: everything after the magic/version checks assumes
        // an intact payload.
        if buf.len() < MAGIC.len() {
            return Err(SnapshotError::Truncated);
        }
        if buf[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if buf.len() < MAGIC.len() + 2 {
            return Err(SnapshotError::Truncated);
        }
        let version = u16::from_le_bytes(buf[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        if buf.len() < MAGIC.len() + 2 + 4 {
            return Err(SnapshotError::Truncated);
        }
        let (payload, crc_bytes) = buf.split_at(buf.len() - 4);
        let found = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let expected = crc32(payload);
        if expected != found {
            return Err(SnapshotError::BadCrc { expected, found });
        }
        let mut r = Reader::new(&payload[6..]);
        let kind = match r.u8()? {
            1 => PolicyKind::FixedMajority,
            2 => PolicyKind::ConfidenceWeighted,
            3 => PolicyKind::AdaptiveThreshold,
            t => return Err(SnapshotError::BadTag(t)),
        };
        // ≥ 7 bytes per device (mac + two tags) keeps a lying count from
        // allocating an absurd vector.
        let count = r.checked_len(7)?;
        let mut devices = Vec::with_capacity(count);
        for _ in 0..count {
            let mac_bytes: [u8; 6] = r.take(6)?.try_into().expect("6 bytes");
            let mac = MacAddr::new(mac_bytes);
            let decided_at = r.opt_u64()?;
            let policy = r.policy()?;
            devices.push(DeviceSnapshot {
                mac,
                decided_at,
                policy,
            });
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes);
        }
        Ok(EngineSnapshot {
            policy: kind,
            devices,
        })
    }

    /// Writes the encoded snapshot to `path` (atomically, via a
    /// same-directory temp file).
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes a snapshot file.
    pub fn read_from(path: &Path) -> Result<EngineSnapshot, SnapshotError> {
        let bytes = fs::read(path)?;
        EngineSnapshot::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineSnapshot {
        EngineSnapshot {
            policy: PolicyKind::AdaptiveThreshold,
            devices: vec![
                DeviceSnapshot {
                    mac: MacAddr::station(1),
                    decided_at: Some(12),
                    policy: PolicySnapshot::Adaptive {
                        window: WindowSnapshot {
                            votes: vec![0, 0, 1],
                            ema: Some(0.91),
                            observations: 40,
                        },
                        calib: WelfordSnapshot {
                            count: 20,
                            mean: 0.9,
                            m2: 0.004,
                        },
                        vote_calib: WelfordSnapshot {
                            count: 20,
                            mean: 0.97,
                            m2: 0.001,
                        },
                        profile: Some((0.9, 0.015)),
                        threshold: Some(0.84),
                        vote_gate: Some(0.61),
                    },
                },
                DeviceSnapshot {
                    mac: MacAddr::station(2),
                    decided_at: None,
                    policy: PolicySnapshot::Adaptive {
                        window: WindowSnapshot::default(),
                        calib: WelfordSnapshot::default(),
                        vote_calib: WelfordSnapshot::default(),
                        profile: None,
                        threshold: None,
                        vote_gate: None,
                    },
                },
            ],
        }
    }

    #[test]
    fn crc32_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_every_policy_kind() {
        for snap in [
            EngineSnapshot {
                policy: PolicyKind::FixedMajority,
                devices: vec![DeviceSnapshot {
                    mac: MacAddr::station(7),
                    decided_at: Some(3),
                    policy: PolicySnapshot::Fixed {
                        window: WindowSnapshot {
                            votes: vec![2, 2, 2, 1],
                            ema: Some(0.5),
                            observations: 9,
                        },
                    },
                }],
            },
            EngineSnapshot {
                policy: PolicyKind::ConfidenceWeighted,
                devices: vec![DeviceSnapshot {
                    mac: MacAddr::station(8),
                    decided_at: None,
                    policy: PolicySnapshot::Confidence {
                        votes: vec![(0, 0.9), (1, 0.2)],
                        weights: vec![0.9, 0.2],
                        ema: Some(0.55),
                        observations: 2,
                    },
                }],
            },
            sample(),
        ] {
            let bytes = snap.encode();
            assert_eq!(EngineSnapshot::decode(&bytes).unwrap(), snap);
        }
    }

    #[test]
    fn rejects_corruption() {
        let bytes = sample().encode();
        assert!(matches!(
            EngineSnapshot::decode(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::BadCrc { .. }) | Err(SnapshotError::Truncated)
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            EngineSnapshot::decode(&bad_magic),
            Err(SnapshotError::BadMagic)
        ));
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xFF;
        assert!(matches!(
            EngineSnapshot::decode(&bad_version),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert!(matches!(
            EngineSnapshot::decode(&flipped),
            Err(SnapshotError::BadCrc { .. })
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(EngineSnapshot::decode(&trailing).is_err());
        // Truncation at every prefix must error, never panic.
        for n in 0..bytes.len() {
            assert!(EngineSnapshot::decode(&bytes[..n]).is_err());
        }
    }
}
