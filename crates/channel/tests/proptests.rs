//! Property-based tests for the channel simulator.

use deepcsi_channel::{trace_paths, AntennaArray, ChannelModel, Environment, MobilityPath, Point2};
use deepcsi_phy::SubcarrierLayout;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn point_in_room() -> impl Strategy<Value = Point2> {
    (-2.3f64..2.3, -0.8f64..3.8).prop_map(|(x, y)| Point2::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn los_never_longer_than_any_path(tx in point_in_room(), rx in point_in_room()) {
        let env = Environment::fig6(0);
        let paths = trace_paths(tx, rx, &env.room, &env.scatterers);
        let los = paths[0].length;
        for p in &paths {
            prop_assert!(p.length >= los - 1e-12, "path shorter than LoS");
            prop_assert!(p.gain > 0.0 && p.gain <= 1.0);
            prop_assert!(p.length.is_finite());
        }
    }

    #[test]
    fn path_symmetry_under_endpoint_swap(tx in point_in_room(), rx in point_in_room()) {
        // Ray reciprocity: swapping TX and RX preserves path lengths
        // (image of TX seen from RX ≡ image of RX seen from TX).
        let env = Environment::fig6(0);
        let fwd = trace_paths(tx, rx, &env.room, &[]);
        let back = trace_paths(rx, tx, &env.room, &[]);
        let mut a: Vec<f64> = fwd.iter().map(|p| p.length).collect();
        let mut b: Vec<f64> = back.iter().map(|p| p.length).collect();
        a.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        b.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn cfr_is_finite_and_nonzero_anywhere(tx in point_in_room(), rx in point_in_room(), seed in 0u64..1000) {
        let env = Environment::fig6(0);
        let model = ChannelModel::new(&env, SubcarrierLayout::vht20());
        let txa = AntennaArray::new(tx, 0.0, env.half_wavelength(), 3);
        let rxa = AntennaArray::new(rx, 0.0, env.half_wavelength(), 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfr = model.cfr(&txa, &rxa, &mut rng);
        for h in &cfr {
            prop_assert!(h.is_finite());
            prop_assert!(h.fro_norm() > 0.0);
        }
    }

    #[test]
    fn closer_rx_has_stronger_channel(seed in 0u64..100) {
        // Path loss: halving the LoS distance should raise the mean CFR
        // magnitude (all else equal, no scatterers).
        let env = Environment::fig6(0);
        let model = ChannelModel::new(&env, SubcarrierLayout::vht20());
        let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
        let near = AntennaArray::new(Point2::new(0.0, 1.5), 0.0, env.half_wavelength(), 2);
        let far = AntennaArray::new(Point2::new(0.0, 3.0), 0.0, env.half_wavelength(), 2);
        let _ = seed;
        let h_near = model.cfr_with_scatterers(&tx, &near, &[]);
        let h_far = model.cfr_with_scatterers(&tx, &far, &[]);
        let e = |h: &Vec<deepcsi_linalg::CMatrix>| -> f64 {
            h.iter().map(|m| m.fro_norm()).sum()
        };
        prop_assert!(e(&h_near) > e(&h_far));
    }

    #[test]
    fn environments_are_distinct(a in 0u64..50, b in 0u64..50) {
        prop_assume!(a != b);
        let ea = Environment::fig6(a);
        let eb = Environment::fig6(b);
        prop_assert_ne!(ea.scatterers, eb.scatterers);
    }
}

/// Waypoint draws for mobility paths. The wobble adds up to
/// `wobble_amp · 1.5` per axis on top of the nominal track (three
/// sinusoids of amplitude ≤ 1.5, normalised by 3), so waypoints are drawn
/// from the fig6 room shrunk by that margin.
const WOBBLE_AMP: f64 = 0.05;
const WOBBLE_MARGIN: f64 = WOBBLE_AMP * 1.5 + 1e-9;

fn waypoints_in_room() -> impl Strategy<Value = Vec<Point2>> {
    let room = Environment::fig6(0).room;
    let point = (
        room.x_min + WOBBLE_MARGIN..room.x_max - WOBBLE_MARGIN,
        room.y_min + WOBBLE_MARGIN..room.y_max - WOBBLE_MARGIN,
    )
        .prop_map(|(x, y)| Point2::new(x, y));
    proptest::collection::vec(point, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mobile_ap_stays_inside_the_room(
        waypoints in waypoints_in_room(),
        speed in 0.05f64..2.0,
        seed in 0u64..1000,
        times in proptest::collection::vec(0.0f64..1.3, 1..16),
    ) {
        let room = Environment::fig6(0).room;
        let mut rng = StdRng::seed_from_u64(seed);
        let path = MobilityPath::from_waypoints(waypoints, speed, WOBBLE_AMP, &mut rng);
        for frac in times {
            // Sample past the end too: the clamp must hold off-path.
            let t = frac * path.duration();
            let p = path.position_at(t);
            prop_assert!(
                p.x >= room.x_min && p.x <= room.x_max
                    && p.y >= room.y_min && p.y <= room.y_max,
                "AP left the room at t={t}: ({}, {})", p.x, p.y
            );
        }
    }

    #[test]
    fn progress_is_monotone_in_time(
        waypoints in waypoints_in_room(),
        speed in 0.05f64..2.0,
        seed in 0u64..1000,
        mut times in proptest::collection::vec(-1.0f64..60.0, 2..16),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let path = MobilityPath::from_waypoints(waypoints, speed, WOBBLE_AMP, &mut rng);
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut prev = path.progress(times[0]);
        prop_assert!((0.0..=1.0).contains(&prev));
        for &t in &times[1..] {
            let g = path.progress(t);
            prop_assert!((0.0..=1.0).contains(&g), "progress {g} outside [0, 1]");
            prop_assert!(g >= prev, "progress went backwards: {prev} → {g} at t={t}");
            prev = g;
        }
    }

    #[test]
    fn duration_and_length_agree_with_the_waypoint_sum(
        waypoints in waypoints_in_room(),
        speed in 0.05f64..2.0,
        seed in 0u64..1000,
    ) {
        let segment_sum: f64 = waypoints
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .sum();
        let mut rng = StdRng::seed_from_u64(seed);
        let path = MobilityPath::from_waypoints(waypoints, speed, WOBBLE_AMP, &mut rng);
        prop_assert!((path.total_length() - segment_sum).abs() < 1e-9);
        prop_assert!((path.duration() * speed - segment_sum).abs() < 1e-9);
    }
}
