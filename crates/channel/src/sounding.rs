//! Time series of channel-sounding snapshots.

use crate::environment::Scatterer;
use crate::geometry::AntennaArray;
use crate::mobility::{MobilityPath, PersonMotion};
use crate::model::ChannelModel;
use deepcsi_linalg::CMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Timing of a sounding trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SounderConfig {
    /// Seconds between consecutive NDP soundings. Under the paper's UDP
    /// downlink traffic the AP re-sounds every few tens of milliseconds;
    /// traces are sub-sampled to keep synthetic datasets laptop-sized.
    pub interval_s: f64,
    /// Number of soundings in the trace.
    pub snapshots: usize,
}

impl Default for SounderConfig {
    fn default() -> Self {
        SounderConfig {
            interval_s: 0.6,
            snapshots: 200,
        }
    }
}

/// Produces the sequence of per-sounding CFR snapshots for one
/// (beamformer, beamformee) link — the substrate every D1/D2 trace is
/// generated from.
///
/// The TX array either stays at its template position (static traces) or
/// follows a [`MobilityPath`] with an attached [`PersonMotion`] (the D2
/// traces, where a person carries the AP).
#[derive(Debug)]
pub struct ChannelSounder {
    model: ChannelModel,
    tx_template: AntennaArray,
    rx: AntennaArray,
    mobility: Option<(MobilityPath, PersonMotion)>,
    config: SounderConfig,
    rng: StdRng,
    step: usize,
}

impl ChannelSounder {
    /// Creates a static-TX sounder.
    pub fn new(
        model: ChannelModel,
        tx: AntennaArray,
        rx: AntennaArray,
        config: SounderConfig,
        seed: u64,
    ) -> Self {
        ChannelSounder {
            model,
            tx_template: tx,
            rx,
            mobility: None,
            config,
            rng: StdRng::seed_from_u64(seed),
            step: 0,
        }
    }

    /// Attaches a mobility path (and the person carrying the device);
    /// the sounding interval is stretched so the trace covers the whole
    /// path traversal.
    pub fn with_mobility(mut self, path: MobilityPath, person: PersonMotion) -> Self {
        self.config.interval_s = path.duration() / self.config.snapshots.max(1) as f64;
        self.mobility = Some((path, person));
        self
    }

    /// Time of snapshot `i` \[s\].
    pub fn time_of(&self, i: usize) -> f64 {
        i as f64 * self.config.interval_s
    }

    /// Number of snapshots this sounder will produce.
    pub fn len(&self) -> usize {
        self.config.snapshots
    }

    /// Returns `true` when the sounder produces no snapshots.
    pub fn is_empty(&self) -> bool {
        self.config.snapshots == 0
    }
}

impl Iterator for ChannelSounder {
    /// `(timestamp, per-subcarrier CFR)` of one sounding.
    type Item = (f64, Vec<CMatrix>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.step >= self.config.snapshots {
            return None;
        }
        let t = self.time_of(self.step);
        self.step += 1;

        let snapshot = match &self.mobility {
            None => self.model.cfr(&self.tx_template, &self.rx, &mut self.rng),
            Some((path, person)) => {
                let pos = path.position_at(t);
                let tx = self.tx_template.at(pos);
                let extra: Vec<Scatterer> = vec![person.scatterer_at(t, pos, &mut self.rng)];
                self.model
                    .cfr_with_extra(&tx, &self.rx, &extra, &mut self.rng)
            }
        };
        Some((t, snapshot))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.config.snapshots - self.step;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ChannelSounder {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;
    use deepcsi_phy::SubcarrierLayout;
    use rand::Rng;

    fn sounder(snapshots: usize) -> ChannelSounder {
        let env = Environment::fig6(0);
        let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
        let rx = AntennaArray::new(env.beamformee1_position(3), 0.0, env.half_wavelength(), 2);
        let model = ChannelModel::new(&env, SubcarrierLayout::vht20());
        ChannelSounder::new(
            model,
            tx,
            rx,
            SounderConfig {
                interval_s: 0.5,
                snapshots,
            },
            42,
        )
    }

    #[test]
    fn produces_exactly_n_snapshots() {
        let s = sounder(7);
        assert_eq!(s.len(), 7);
        let items: Vec<_> = s.collect();
        assert_eq!(items.len(), 7);
        // Timestamps advance by the configured interval.
        assert!((items[1].0 - items[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn static_snapshots_vary_slightly_over_time() {
        // Scatterer jitter makes consecutive snapshots similar but not
        // identical — the temporal texture Fig. 14 visualises.
        let items: Vec<_> = sounder(2).collect();
        let (_, a) = &items[0];
        let (_, b) = &items[1];
        let diff: f64 = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.sub(y).fro_norm())
            .sum();
        let norm: f64 = a.iter().map(|x| x.fro_norm()).sum();
        let rel = diff / norm;
        assert!(rel > 0.0, "snapshots identical");
        assert!(rel < 0.5, "static channel varies too much: {rel}");
    }

    #[test]
    fn mobility_spreads_snapshots_over_the_path() {
        let env = Environment::fig6(0);
        let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
        let rx = AntennaArray::new(env.beamformee1_position(3), 0.0, env.half_wavelength(), 2);
        let model = ChannelModel::new(&env, SubcarrierLayout::vht20());
        let mut rng = StdRng::seed_from_u64(7);
        let path = MobilityPath::abcdba(&env, &mut rng);
        let person = PersonMotion::new(&mut rng);
        let duration = path.duration();
        let s = ChannelSounder::new(
            model,
            tx,
            rx,
            SounderConfig {
                interval_s: 1.0,
                snapshots: 10,
            },
            1,
        )
        .with_mobility(path, person);
        let items: Vec<_> = s.collect();
        assert_eq!(items.len(), 10);
        // Last snapshot lands near the end of the traversal.
        let t_last = items.last().unwrap().0;
        assert!(t_last <= duration + 1e-9);
        assert!(t_last / duration > 0.8);
        // Mobility makes the channel change much more than static jitter.
        let (_, first) = &items[0];
        let (_, mid) = &items[5];
        let diff: f64 = first
            .iter()
            .zip(mid.iter())
            .map(|(x, y)| x.sub(y).fro_norm())
            .sum();
        let norm: f64 = first.iter().map(|x| x.fro_norm()).sum();
        assert!(diff / norm > 0.2, "mobility channel barely changed");
    }

    #[test]
    fn seeded_sounders_reproduce() {
        let a: Vec<_> = sounder(3).collect();
        let b: Vec<_> = sounder(3).collect();
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            for (hx, hy) in x.iter().zip(y.iter()) {
                assert!(hx.max_abs_diff(hy) < 1e-15);
            }
        }
    }

    #[test]
    fn size_hint_tracks_progress() {
        let mut s = sounder(5);
        assert_eq!(s.size_hint(), (5, Some(5)));
        let _ = s.next();
        assert_eq!(s.size_hint(), (4, Some(4)));
        // rng consumption should not affect the count.
        let _ = s.rng.gen::<f64>();
        assert_eq!(s.size_hint(), (4, Some(4)));
    }
}
