//! Planar geometry: points, rooms and antenna arrays.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A point (or displacement) in the 2-D floor plan of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Horizontal coordinate \[m\]; positive to the right of the AP.
    pub x: f64,
    /// Depth coordinate \[m\]; positive toward the beamformees.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point2) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Vector length when interpreted as a displacement.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Scales the displacement by `s`.
    pub fn scale(&self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }

    /// Linear interpolation `self + t·(other − self)` for `t ∈ [0, 1]`.
    pub fn lerp(&self, other: &Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A rectangular room with reflective walls.
///
/// First-order wall reflections are generated with the image method; the
/// common `reflection_coeff` models the average energy loss per bounce.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Room {
    /// Left wall x-coordinate \[m\].
    pub x_min: f64,
    /// Right wall x-coordinate \[m\].
    pub x_max: f64,
    /// Back wall (behind the AP) y-coordinate \[m\].
    pub y_min: f64,
    /// Front wall (behind the beamformees) y-coordinate \[m\].
    pub y_max: f64,
    /// Amplitude reflection coefficient of the walls, `0 < Γ < 1`.
    pub reflection_coeff: f64,
}

impl Room {
    /// Creates a room after validating the bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are inverted or the reflection coefficient is
    /// outside `(0, 1)`.
    pub fn new(x_min: f64, x_max: f64, y_min: f64, y_max: f64, reflection_coeff: f64) -> Self {
        assert!(x_min < x_max && y_min < y_max, "degenerate room bounds");
        assert!(
            reflection_coeff > 0.0 && reflection_coeff < 1.0,
            "reflection coefficient must be in (0, 1)"
        );
        Room {
            x_min,
            x_max,
            y_min,
            y_max,
            reflection_coeff,
        }
    }

    /// Returns `true` when the point lies inside the room.
    pub fn contains(&self, p: &Point2) -> bool {
        p.x >= self.x_min && p.x <= self.x_max && p.y >= self.y_min && p.y <= self.y_max
    }

    /// The four first-order mirror images of a point with respect to the
    /// walls, ordered left, right, back, front.
    pub fn wall_images(&self, p: &Point2) -> [Point2; 4] {
        [
            Point2::new(2.0 * self.x_min - p.x, p.y),
            Point2::new(2.0 * self.x_max - p.x, p.y),
            Point2::new(p.x, 2.0 * self.y_min - p.y),
            Point2::new(p.x, 2.0 * self.y_max - p.y),
        ]
    }
}

/// A uniform linear antenna array in the floor plan.
///
/// Elements are spaced `spacing` metres apart along the direction given by
/// `orientation` (radians from the +x axis), centred on `center`. The AP
/// of the paper uses M = 3 active elements at λ/2 spacing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AntennaArray {
    center: Point2,
    orientation: f64,
    spacing: f64,
    count: usize,
}

impl AntennaArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `spacing` is non-positive.
    pub fn new(center: Point2, orientation: f64, spacing: f64, count: usize) -> Self {
        assert!(count > 0, "array needs at least one element");
        assert!(spacing > 0.0, "element spacing must be positive");
        AntennaArray {
            center,
            orientation,
            spacing,
            count,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Returns `true` if the array has no elements (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Array center.
    pub fn center(&self) -> Point2 {
        self.center
    }

    /// Returns a copy of the array moved to a new center.
    pub fn at(&self, center: Point2) -> AntennaArray {
        AntennaArray { center, ..*self }
    }

    /// Position of element `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn element(&self, i: usize) -> Point2 {
        assert!(i < self.count, "antenna index out of range");
        let offset = (i as f64 - (self.count as f64 - 1.0) / 2.0) * self.spacing;
        Point2::new(
            self.center.x + offset * self.orientation.cos(),
            self.center.y + offset * self.orientation.sin(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        let c = Point2::new(-1.0, 2.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&b) <= a.distance(&c) + c.distance(&b) + 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point2::new(1.0, 1.0);
        let b = Point2::new(2.0, -1.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12 && (mid.y - 0.0).abs() < 1e-12);
    }

    #[test]
    fn wall_images_reflect_correctly() {
        let room = Room::new(-2.0, 2.0, -1.0, 4.0, 0.5);
        let p = Point2::new(1.0, 2.0);
        let [left, right, back, front] = room.wall_images(&p);
        assert_eq!(left, Point2::new(-5.0, 2.0));
        assert_eq!(right, Point2::new(3.0, 2.0));
        assert_eq!(back, Point2::new(1.0, -4.0));
        assert_eq!(front, Point2::new(1.0, 6.0));
        // Images are outside the room.
        for img in [left, right, back, front] {
            assert!(!room.contains(&img));
        }
    }

    #[test]
    #[should_panic(expected = "degenerate room")]
    fn inverted_room_panics() {
        let _ = Room::new(2.0, -2.0, 0.0, 1.0, 0.5);
    }

    #[test]
    fn array_elements_are_centered_and_spaced() {
        let arr = AntennaArray::new(Point2::new(0.0, 0.0), 0.0, 0.03, 3);
        assert_eq!(arr.len(), 3);
        let e0 = arr.element(0);
        let e1 = arr.element(1);
        let e2 = arr.element(2);
        assert!((e0.x + 0.03).abs() < 1e-12);
        assert!((e1.x).abs() < 1e-12);
        assert!((e2.x - 0.03).abs() < 1e-12);
        // Mean position equals center.
        let mean = Point2::new((e0.x + e1.x + e2.x) / 3.0, (e0.y + e1.y + e2.y) / 3.0);
        assert!(mean.distance(&arr.center()) < 1e-12);
    }

    #[test]
    fn rotated_array_points_along_orientation() {
        let arr = AntennaArray::new(Point2::new(1.0, 1.0), std::f64::consts::FRAC_PI_2, 0.1, 2);
        let e0 = arr.element(0);
        let e1 = arr.element(1);
        assert!((e0.x - 1.0).abs() < 1e-12);
        assert!((e1.y - e0.y - 0.1).abs() < 1e-12);
    }

    #[test]
    fn moved_array_keeps_shape() {
        let arr = AntennaArray::new(Point2::new(0.0, 0.0), 0.0, 0.05, 2);
        let moved = arr.at(Point2::new(5.0, 5.0));
        assert_eq!(moved.center(), Point2::new(5.0, 5.0));
        let d_orig = arr.element(0).distance(&arr.element(1));
        let d_moved = moved.element(0).distance(&moved.element(1));
        assert!((d_orig - d_moved).abs() < 1e-12);
    }
}
