//! Indoor MU-MIMO multipath channel simulator.
//!
//! The DeepCSI paper evaluates on real indoor channels (Fig. 6: one AP,
//! two beamformees 3 m away, 9 beamformee positions, an A-B-C-D-B-A AP
//! mobility path). This crate simulates those channels with the paper's
//! own propagation model (Eq. (2)): every CFR entry is a sum of `P` paths
//! with per-path attenuation and delay,
//!
//! ```text
//! [H]_{k,m,n} = Σ_p A_{m,n,p} · e^{−j2π (fc + k/T) τ_{m,n,p}}
//! ```
//!
//! Paths are generated geometrically with the image method: the line-of-
//! sight ray, first-order reflections off the four room walls, and a set
//! of environment-specific point scatterers (with optional per-snapshot
//! position jitter that models residual motion in the room). The exact
//! per-antenna-pair geometry is used, so antenna arrays see physically
//! consistent phase fronts — which is what makes beam patterns change
//! with beamformee position, the effect Figs. 8–10 measure.
//!
//! # Example
//!
//! ```
//! use deepcsi_channel::{Environment, ChannelModel, AntennaArray, Point2};
//! use deepcsi_phy::SubcarrierLayout;
//! use rand::SeedableRng;
//!
//! let env = Environment::fig6(0);
//! let tx = AntennaArray::new(Point2::new(0.0, 0.0), 0.0, env.half_wavelength(), 3);
//! let rx = AntennaArray::new(Point2::new(-0.75, 3.0), 0.0, env.half_wavelength(), 2);
//! let layout = SubcarrierLayout::vht80();
//! let model = ChannelModel::new(&env, layout);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let cfr = model.cfr(&tx, &rx, &mut rng);
//! assert_eq!(cfr.len(), 234);            // one matrix per sounded tone
//! assert_eq!(cfr[0].shape(), (3, 2));    // M×N
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod environment;
mod geometry;
mod mobility;
mod model;
mod ray;
mod sounding;

pub use environment::{Environment, Scatterer};
pub use geometry::{AntennaArray, Point2, Room};
pub use mobility::{MobilityPath, PersonMotion};
pub use model::ChannelModel;
pub use ray::{trace_paths, Path};
pub use sounding::{ChannelSounder, SounderConfig};
