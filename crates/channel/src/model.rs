//! CFR synthesis per the paper's Eq. (2).

use crate::environment::{Environment, Scatterer};
use crate::geometry::AntennaArray;
use crate::ray::trace_paths;
use deepcsi_linalg::{CMatrix, C64};
use deepcsi_phy::{SubcarrierLayout, SPEED_OF_LIGHT, SUBCARRIER_SPACING_HZ};
use rand::Rng;

/// Synthesises per-subcarrier CFR matrices for one TX/RX array pair in an
/// [`Environment`].
///
/// For every antenna pair `(m, n)` the multipath components are traced
/// geometrically and summed per Eq. (2):
///
/// ```text
/// [H]_{k,m,n} = Σ_p A_{m,n,p} · e^{−j2π (fc + k/T) τ_{m,n,p}}
/// ```
///
/// with `A` combining free-space spreading `λ/(4πd)`, wall reflection loss
/// and scattering gain. The phase across subcarriers is evaluated
/// incrementally (one complex multiply per tone per path) so a full
/// 234-tone, 3×2 snapshot costs a few tens of microseconds.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    env: Environment,
    layout: SubcarrierLayout,
}

impl ChannelModel {
    /// Creates a model for an environment and a sounding layout.
    pub fn new(env: &Environment, layout: SubcarrierLayout) -> Self {
        ChannelModel {
            env: env.clone(),
            layout,
        }
    }

    /// The environment this model simulates.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// The sounded subcarrier layout.
    pub fn layout(&self) -> &SubcarrierLayout {
        &self.layout
    }

    /// Synthesises one CFR snapshot: a `layout.len()`-long vector of M×N
    /// matrices (M = TX elements, N = RX elements).
    ///
    /// Scatterer positions receive per-snapshot jitter drawn from `rng`,
    /// modelling residual environmental motion between soundings.
    pub fn cfr<R: Rng>(&self, tx: &AntennaArray, rx: &AntennaArray, rng: &mut R) -> Vec<CMatrix> {
        let scatterers = self.env.jittered_scatterers(rng);
        self.cfr_with_scatterers(tx, rx, &scatterers)
    }

    /// Like [`ChannelModel::cfr`] but with extra transient scatterers
    /// (e.g. the person moving the AP in the D2 mobility traces).
    pub fn cfr_with_extra<R: Rng>(
        &self,
        tx: &AntennaArray,
        rx: &AntennaArray,
        extra: &[Scatterer],
        rng: &mut R,
    ) -> Vec<CMatrix> {
        let mut scatterers = self.env.jittered_scatterers(rng);
        scatterers.extend_from_slice(extra);
        self.cfr_with_scatterers(tx, rx, &scatterers)
    }

    /// Deterministic CFR synthesis from an explicit scatterer set.
    pub fn cfr_with_scatterers(
        &self,
        tx: &AntennaArray,
        rx: &AntennaArray,
        scatterers: &[Scatterer],
    ) -> Vec<CMatrix> {
        let m = tx.len();
        let n = rx.len();
        let indices = self.layout.indices();
        let k_min = *indices.first().expect("layout must not be empty");
        let k_max = *indices.last().expect("layout must not be empty");
        let lambda = self.env.channel.wavelength();
        let fc = self.env.channel.center_hz;

        let mut h = vec![CMatrix::zeros(m, n); indices.len()];

        for mi in 0..m {
            for ni in 0..n {
                let paths = trace_paths(tx.element(mi), rx.element(ni), &self.env.room, scatterers);
                for p in &paths {
                    let tau = p.length / SPEED_OF_LIGHT;
                    let amp = p.gain * lambda / (4.0 * std::f64::consts::PI * p.length);
                    // Phasor at the first tone, then advance one tone per
                    // step: e^{−j2π(fc + kΔf)τ}.
                    let phase0 =
                        -std::f64::consts::TAU * (fc + k_min as f64 * SUBCARRIER_SPACING_HZ) * tau
                            + p.extra_phase;
                    let mut phasor = C64::from_polar(amp, phase0);
                    let step = C64::cis(-std::f64::consts::TAU * SUBCARRIER_SPACING_HZ * tau);
                    let mut idx_iter = indices.iter().enumerate().peekable();
                    for k in k_min..=k_max {
                        if let Some(&(pos, &ks)) = idx_iter.peek() {
                            if ks == k {
                                let e = &mut h[pos][(mi, ni)];
                                *e += phasor;
                                idx_iter.next();
                            }
                        }
                        phasor *= step;
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Environment, AntennaArray, AntennaArray, ChannelModel) {
        let env = Environment::fig6(0);
        let tx = AntennaArray::new(env.ap_home(), 0.0, env.half_wavelength(), 3);
        let rx = AntennaArray::new(env.beamformee1_position(1), 0.0, env.half_wavelength(), 2);
        let model = ChannelModel::new(&env, SubcarrierLayout::vht80());
        (env, tx, rx, model)
    }

    #[test]
    fn cfr_has_one_matrix_per_sounded_tone() {
        let (_, tx, rx, model) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let h = model.cfr(&tx, &rx, &mut rng);
        assert_eq!(h.len(), 234);
        for hk in &h {
            assert_eq!(hk.shape(), (3, 2));
            assert!(hk.is_finite());
            assert!(hk.fro_norm() > 0.0);
        }
    }

    #[test]
    fn cfr_is_deterministic_given_scatterers() {
        let (env, tx, rx, model) = setup();
        let a = model.cfr_with_scatterers(&tx, &rx, &env.scatterers);
        let b = model.cfr_with_scatterers(&tx, &rx, &env.scatterers);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.max_abs_diff(y) < 1e-15);
        }
    }

    #[test]
    fn incremental_phasor_matches_direct_evaluation() {
        // Cross-check the optimised per-tone recursion against a direct
        // e^{−j2πf_kτ} evaluation on a handful of tones.
        let (env, tx, rx, model) = setup();
        let h = model.cfr_with_scatterers(&tx, &rx, &[]);
        let layout = SubcarrierLayout::vht80();
        let lambda = env.channel.wavelength();
        for &probe in &[0usize, 57, 116, 233] {
            let k = layout.indices()[probe];
            let fk = env.channel.subcarrier_freq(k);
            // Direct evaluation for antenna pair (0, 0).
            let paths = trace_paths(tx.element(0), rx.element(0), &env.room, &[]);
            let mut want = C64::ZERO;
            for p in &paths {
                let tau = p.length / SPEED_OF_LIGHT;
                let amp = p.gain * lambda / (4.0 * std::f64::consts::PI * p.length);
                want += C64::from_polar(amp, -std::f64::consts::TAU * fk * tau + p.extra_phase);
            }
            let got = h[probe][(0, 0)];
            assert!(
                (got - want).abs() < 1e-12,
                "tone {k}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn moving_rx_changes_the_channel() {
        let (env, tx, _, model) = setup();
        let rx1 = AntennaArray::new(env.beamformee1_position(1), 0.0, env.half_wavelength(), 2);
        let rx9 = AntennaArray::new(env.beamformee1_position(9), 0.0, env.half_wavelength(), 2);
        let h1 = model.cfr_with_scatterers(&tx, &rx1, &env.scatterers);
        let h9 = model.cfr_with_scatterers(&tx, &rx9, &env.scatterers);
        let diff: f64 = h1
            .iter()
            .zip(h9.iter())
            .map(|(a, b)| a.sub(b).fro_norm())
            .sum();
        let norm: f64 = h1.iter().map(|a| a.fro_norm()).sum();
        assert!(diff / norm > 0.1, "80 cm of motion barely moved the CFR");
    }

    #[test]
    fn extra_scatterer_perturbs_the_channel() {
        let (_env, tx, rx, model) = setup();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let base = model.cfr(&tx, &rx, &mut rng1);
        let person = Scatterer {
            pos: Point2::new(0.3, 0.3),
            gain: 0.4,
            phase: 0.0,
        };
        let with = model.cfr_with_extra(&tx, &rx, &[person], &mut rng2);
        let diff: f64 = base
            .iter()
            .zip(with.iter())
            .map(|(a, b)| a.sub(b).fro_norm())
            .sum();
        assert!(diff > 0.0);
    }

    #[test]
    fn frequency_selectivity_is_present() {
        // Multipath must make the channel vary across the band (otherwise
        // the Ṽ input carries no frequency structure).
        let (env, tx, rx, model) = setup();
        let h = model.cfr_with_scatterers(&tx, &rx, &env.scatterers);
        let first = &h[0];
        let last = &h[233];
        assert!(first.sub(last).fro_norm() / first.fro_norm() > 0.05);
    }

    #[test]
    fn amplitude_scale_is_physical() {
        // 3 m LoS at 5.21 GHz: free-space amplitude ≈ λ/(4πd) ≈ 1.5e-3.
        let (_env, tx, rx, model) = setup();
        let h = model.cfr_with_scatterers(&tx, &rx, &[]);
        let mag = h[117][(0, 0)].abs();
        assert!(mag > 1e-4 && mag < 1e-2, "LoS magnitude {mag}");
    }
}
