//! AP mobility (the A-B-C-D-B-A path of Fig. 6) and the person moving it.

use crate::environment::{gaussian, Environment, Scatterer};
use crate::geometry::Point2;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A piecewise-linear waypoint path walked at constant nominal speed, with
/// low-frequency "manual carry" wobble superimposed.
///
/// §IV-A: the AP is *manually* moved along A-B-C-D-B-A, so consecutive
/// traces follow only approximately the same trajectory. The wobble is a
/// sum of slow sinusoids whose amplitudes/phases are drawn per trace,
/// reproducing that trace-to-trace variability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityPath {
    waypoints: Vec<Point2>,
    speed_mps: f64,
    wobble_amp: f64,
    wobble: Vec<(f64, f64, f64, f64)>, // (freq_hz, phase_x, phase_y, amp_scale)
}

impl MobilityPath {
    /// The paper's A-B-C-D-B-A trajectory: 80 cm forward, 80 cm left,
    /// 160 cm right (through B), back to B, back to A.
    ///
    /// `rng` draws this trace's manual wobble; walking speed defaults to
    /// a slow hand-carry (0.25 m/s), giving a ≈19 s traversal.
    pub fn abcdba<R: Rng>(env: &Environment, rng: &mut R) -> Self {
        Self::from_waypoints(
            vec![
                env.ap_home(),
                env.waypoint_b(),
                env.waypoint_c(),
                env.waypoint_d(),
                env.waypoint_b(),
                env.ap_home(),
            ],
            0.25,
            0.03,
            rng,
        )
    }

    /// Builds a path from explicit waypoints.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two waypoints or a non-positive speed.
    pub fn from_waypoints<R: Rng>(
        waypoints: Vec<Point2>,
        speed_mps: f64,
        wobble_amp: f64,
        rng: &mut R,
    ) -> Self {
        assert!(waypoints.len() >= 2, "a path needs at least two waypoints");
        assert!(speed_mps > 0.0, "speed must be positive");
        let wobble = (0..3)
            .map(|i| {
                (
                    0.15 * (i as f64 + 1.0) + 0.05 * rng.gen::<f64>(),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                    0.5 + rng.gen::<f64>(),
                )
            })
            .collect();
        MobilityPath {
            waypoints,
            speed_mps,
            wobble_amp,
            wobble,
        }
    }

    /// Total nominal path length \[m\].
    pub fn total_length(&self) -> f64 {
        self.waypoints
            .windows(2)
            .map(|w| w[0].distance(&w[1]))
            .sum()
    }

    /// Nominal traversal duration \[s\].
    pub fn duration(&self) -> f64 {
        self.total_length() / self.speed_mps
    }

    /// Nominal (wobble-free) position after walking for `t` seconds;
    /// clamps to the endpoints outside `[0, duration]`.
    pub fn nominal_position(&self, t: f64) -> Point2 {
        let mut remaining = (t.max(0.0) * self.speed_mps).min(self.total_length());
        for w in self.waypoints.windows(2) {
            let seg = w[0].distance(&w[1]);
            if remaining <= seg {
                let frac = if seg > 0.0 { remaining / seg } else { 0.0 };
                return w[0].lerp(&w[1], frac);
            }
            remaining -= seg;
        }
        *self.waypoints.last().expect("non-empty waypoints")
    }

    /// Position including the manual-carry wobble.
    pub fn position_at(&self, t: f64) -> Point2 {
        let nominal = self.nominal_position(t);
        let mut dx = 0.0;
        let mut dy = 0.0;
        for &(f, px, py, a) in &self.wobble {
            let w = std::f64::consts::TAU * f * t;
            dx += a * (w + px).sin();
            dy += a * (w + py).sin();
        }
        let norm = self.wobble.len() as f64;
        Point2::new(
            nominal.x + self.wobble_amp * dx / norm,
            nominal.y + self.wobble_amp * dy / norm,
        )
    }

    /// Fraction of the path walked at time `t`, in `[0, 1]`.
    pub fn progress(&self, t: f64) -> f64 {
        ((t * self.speed_mps) / self.total_length()).clamp(0.0, 1.0)
    }
}

/// The person carrying the AP during the D2 mobility traces (§IV-B: "a
/// person is always present in the proximity of the AP").
///
/// Modelled as a strong scatterer orbiting the AP position with slow,
/// seeded pseudo-random motion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonMotion {
    orbit_radius: f64,
    gain: f64,
    freq_hz: f64,
    phase: f64,
    breathing_freq_hz: f64,
}

impl PersonMotion {
    /// Creates a person model with per-trace randomised motion parameters.
    pub fn new<R: Rng>(rng: &mut R) -> Self {
        PersonMotion {
            orbit_radius: 0.35 + 0.1 * rng.gen::<f64>(),
            gain: 0.10 + 0.05 * rng.gen::<f64>(),
            freq_hz: 0.05 + 0.05 * rng.gen::<f64>(),
            phase: rng.gen_range(0.0..std::f64::consts::TAU),
            breathing_freq_hz: 0.25 + 0.05 * rng.gen::<f64>(),
        }
    }

    /// The scatterer this person contributes at time `t`, given the AP
    /// position `anchor`. Small Gaussian positional noise from `rng`
    /// models limb motion.
    pub fn scatterer_at<R: Rng>(&self, t: f64, anchor: Point2, rng: &mut R) -> Scatterer {
        let ang = std::f64::consts::TAU * self.freq_hz * t + self.phase;
        let breath = 0.02 * (std::f64::consts::TAU * self.breathing_freq_hz * t).sin();
        let r = self.orbit_radius + breath;
        Scatterer {
            pos: Point2::new(
                anchor.x + r * ang.cos() + 0.01 * gaussian(rng),
                anchor.y + r * ang.sin() + 0.01 * gaussian(rng),
            ),
            gain: self.gain,
            phase: ang,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path() -> MobilityPath {
        let env = Environment::fig6(0);
        let mut rng = StdRng::seed_from_u64(5);
        MobilityPath::abcdba(&env, &mut rng)
    }

    #[test]
    fn abcdba_total_length() {
        // A→B (0.8) + B→C (0.8) + C→D (1.6) + D→B (0.8) + B→A (0.8) = 4.8 m.
        assert!((path().total_length() - 4.8).abs() < 1e-12);
    }

    #[test]
    fn starts_and_ends_at_home() {
        let p = path();
        let start = p.nominal_position(0.0);
        let end = p.nominal_position(p.duration() + 10.0);
        assert!(start.distance(&Point2::new(0.0, 0.0)) < 1e-12);
        assert!(end.distance(&Point2::new(0.0, 0.0)) < 1e-12);
    }

    #[test]
    fn passes_through_waypoints_in_order() {
        let p = path();
        let env = Environment::fig6(0);
        // At t = 0.8 m / 0.25 m/s = 3.2 s the AP is at B.
        assert!(p.nominal_position(3.2).distance(&env.waypoint_b()) < 1e-9);
        // At 1.6 m → C.
        assert!(p.nominal_position(6.4).distance(&env.waypoint_c()) < 1e-9);
        // At 3.2 m → D (passing through B at 2.4 m).
        assert!(p.nominal_position(12.8).distance(&env.waypoint_d()) < 1e-9);
        assert!(p.nominal_position(9.6).distance(&env.waypoint_b()) < 1e-9);
    }

    #[test]
    fn wobble_keeps_position_near_nominal() {
        let p = path();
        for i in 0..50 {
            let t = i as f64 * 0.4;
            let d = p.position_at(t).distance(&p.nominal_position(t));
            assert!(d < 0.1, "wobble {d} m too large at t={t}");
        }
    }

    #[test]
    fn different_traces_have_different_wobble() {
        let env = Environment::fig6(0);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let p1 = MobilityPath::abcdba(&env, &mut r1);
        let p2 = MobilityPath::abcdba(&env, &mut r2);
        let t = 5.0;
        assert!(p1.position_at(t).distance(&p2.position_at(t)) > 1e-6);
    }

    #[test]
    fn progress_is_monotone_and_clamped() {
        let p = path();
        assert_eq!(p.progress(-1.0), 0.0);
        assert_eq!(p.progress(1e9), 1.0);
        let mut prev = 0.0;
        for i in 0..20 {
            let g = p.progress(i as f64);
            assert!(g >= prev);
            prev = g;
        }
    }

    #[test]
    fn person_orbits_the_anchor() {
        let mut rng = StdRng::seed_from_u64(11);
        let person = PersonMotion::new(&mut rng);
        let anchor = Point2::new(1.0, 1.0);
        for i in 0..20 {
            let s = person.scatterer_at(i as f64, anchor, &mut rng);
            let d = s.pos.distance(&anchor);
            assert!(d > 0.2 && d < 0.7, "person at distance {d}");
            assert!(s.gain > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least two waypoints")]
    fn single_waypoint_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MobilityPath::from_waypoints(vec![Point2::new(0.0, 0.0)], 1.0, 0.0, &mut rng);
    }
}
