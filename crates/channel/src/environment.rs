//! The Fig. 6 experimental environment: room, device placements and
//! environment-specific scatterers.

use crate::geometry::{Point2, Room};
use deepcsi_phy::WifiChannel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A point scatterer contributing one additional multipath component per
/// antenna pair (furniture, walls' irregularities, metallic objects…).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scatterer {
    /// Nominal position of the scatterer.
    pub pos: Point2,
    /// Amplitude gain of the scattered path relative to free space (the
    /// product of the bistatic cross-section and absorption, < 1).
    pub gain: f64,
    /// Static extra phase of the scattering interaction \[rad\].
    pub phase: f64,
}

/// One indoor environment in the Fig. 6 configuration.
///
/// The paper collects data in two different rooms reproducing the same
/// layout; [`Environment::fig6`] takes an environment id that seeds the
/// scatterer placement and wall properties, so `fig6(0)` and `fig6(1)`
/// are "the same configuration, different room".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// The room with its reflective walls.
    pub room: Room,
    /// Environment-specific point scatterers.
    pub scatterers: Vec<Scatterer>,
    /// The Wi-Fi channel in use (channel 42 in the paper).
    pub channel: WifiChannel,
    /// Standard deviation of per-snapshot scatterer position jitter \[m\],
    /// modelling residual motion in an otherwise static room.
    pub scatter_jitter_std: f64,
}

impl Environment {
    /// Number of scatterers placed in each environment.
    pub const NUM_SCATTERERS: usize = 8;

    /// Builds the Fig. 6 environment for environment id `env_id`.
    ///
    /// Coordinates: the AP's home position A is the origin; the
    /// beamformees sit on the line `y = 3.0` (the "3 m" of Fig. 6) at
    /// `x = ∓0.75` (their starting separation of 1.5 m).
    pub fn fig6(env_id: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(0x00F1_6000 ^ env_id.wrapping_mul(0x9E37_79B9));
        let room = Room::new(
            -2.6,
            2.6,
            -1.0,
            4.0,
            // Slightly different wall materials per environment.
            0.22 + 0.06 * rng.gen::<f64>(),
        );
        let scatterers = (0..Self::NUM_SCATTERERS)
            .map(|_| Scatterer {
                pos: Point2::new(
                    rng.gen_range(room.x_min + 0.2..room.x_max - 0.2),
                    rng.gen_range(room.y_min + 0.2..room.y_max - 0.2),
                ),
                gain: rng.gen_range(0.08..0.25),
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
            })
            .collect();
        Environment {
            room,
            scatterers,
            channel: WifiChannel::CH42,
            scatter_jitter_std: 0.004,
        }
    }

    /// AP home position (yellow star A of Fig. 6).
    pub fn ap_home(&self) -> Point2 {
        Point2::new(0.0, 0.0)
    }

    /// Mobility waypoint B: 80 cm from A toward the beamformees.
    pub fn waypoint_b(&self) -> Point2 {
        Point2::new(0.0, 0.8)
    }

    /// Mobility waypoint C: 80 cm to the left of B.
    pub fn waypoint_c(&self) -> Point2 {
        Point2::new(-0.8, 0.8)
    }

    /// Mobility waypoint D: 160 cm to the right of C (80 cm right of B).
    pub fn waypoint_d(&self) -> Point2 {
        Point2::new(0.8, 0.8)
    }

    /// Position of beamformee 1 for position index `idx ∈ 1..=9`: starts
    /// in front of the AP and moves 10 cm further to the **left** per
    /// index (red stars of Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside `1..=9`.
    pub fn beamformee1_position(&self, idx: usize) -> Point2 {
        assert!((1..=9).contains(&idx), "position index must be 1..=9");
        Point2::new(-0.75 - 0.1 * (idx as f64 - 1.0), 3.0)
    }

    /// Position of beamformee 2 for position index `idx ∈ 1..=9`: starts
    /// in front of the AP and moves 10 cm further to the **right** per
    /// index (blue stars of Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside `1..=9`.
    pub fn beamformee2_position(&self, idx: usize) -> Point2 {
        assert!((1..=9).contains(&idx), "position index must be 1..=9");
        Point2::new(0.75 + 0.1 * (idx as f64 - 1.0), 3.0)
    }

    /// Half of the carrier wavelength \[m\] — the antenna element spacing
    /// used by all devices in the testbed.
    pub fn half_wavelength(&self) -> f64 {
        self.channel.wavelength() / 2.0
    }

    /// Returns the scatterers with per-snapshot position jitter applied.
    pub fn jittered_scatterers<R: Rng>(&self, rng: &mut R) -> Vec<Scatterer> {
        self.scatterers
            .iter()
            .map(|s| {
                let dx = gaussian(rng) * self.scatter_jitter_std;
                let dy = gaussian(rng) * self.scatter_jitter_std;
                Scatterer {
                    pos: Point2::new(s.pos.x + dx, s.pos.y + dy),
                    ..*s
                }
            })
            .collect()
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
pub(crate) fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_is_deterministic_per_env_id() {
        let a = Environment::fig6(0);
        let b = Environment::fig6(0);
        let c = Environment::fig6(1);
        assert_eq!(a, b);
        assert_ne!(a.scatterers, c.scatterers, "different rooms must differ");
    }

    #[test]
    fn geometry_matches_fig6() {
        let env = Environment::fig6(0);
        // Beamformees are 3 m in front of the AP.
        assert!((env.beamformee1_position(1).y - 3.0).abs() < 1e-12);
        // Starting separation of the two beamformees is 1.5 m.
        let sep = env
            .beamformee1_position(1)
            .distance(&env.beamformee2_position(1));
        assert!((sep - 1.5).abs() < 1e-12);
        // Each index moves 10 cm outward.
        let step = env.beamformee1_position(2).x - env.beamformee1_position(1).x;
        assert!((step + 0.1).abs() < 1e-12);
        // Waypoints match the A-B-C-D path distances of §IV-A.
        assert!((env.ap_home().distance(&env.waypoint_b()) - 0.8).abs() < 1e-12);
        assert!((env.waypoint_b().distance(&env.waypoint_c()) - 0.8).abs() < 1e-12);
        assert!((env.waypoint_c().distance(&env.waypoint_d()) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn all_placements_inside_room() {
        let env = Environment::fig6(3);
        for idx in 1..=9 {
            assert!(env.room.contains(&env.beamformee1_position(idx)));
            assert!(env.room.contains(&env.beamformee2_position(idx)));
        }
        for s in &env.scatterers {
            assert!(env.room.contains(&s.pos));
        }
        for p in [
            env.ap_home(),
            env.waypoint_b(),
            env.waypoint_c(),
            env.waypoint_d(),
        ] {
            assert!(env.room.contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "position index")]
    fn position_index_zero_panics() {
        let _ = Environment::fig6(0).beamformee1_position(0);
    }

    #[test]
    fn jittered_scatterers_stay_close() {
        let env = Environment::fig6(0);
        let mut rng = StdRng::seed_from_u64(9);
        let jittered = env.jittered_scatterers(&mut rng);
        assert_eq!(jittered.len(), env.scatterers.len());
        for (a, b) in env.scatterers.iter().zip(jittered.iter()) {
            assert!(a.pos.distance(&b.pos) < 0.1, "jitter too large");
            assert_eq!(a.gain, b.gain);
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn half_wavelength_near_29mm() {
        let env = Environment::fig6(0);
        assert!((env.half_wavelength() - 0.02877).abs() < 1e-4);
    }
}
