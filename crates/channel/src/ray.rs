//! Image-method path tracing between two antenna elements.

use crate::environment::Scatterer;
use crate::geometry::{Point2, Room};
use serde::{Deserialize, Serialize};

/// One propagation path between a TX and an RX antenna element.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// Total travelled distance \[m\].
    pub length: f64,
    /// Interaction amplitude gain (wall reflection loss, scattering
    /// cross-section); free-space spreading is applied separately by the
    /// channel model.
    pub gain: f64,
    /// Extra phase from the interaction \[rad\] (π per wall bounce,
    /// scatterer-specific otherwise).
    pub extra_phase: f64,
}

/// Traces the multipath components between a TX and an RX element:
/// the line-of-sight ray, the four first-order wall reflections (image
/// method) and one bounce off every scatterer.
///
/// The result length is therefore `5 + scatterers.len()` — the paper's
/// `P` in Eq. (2).
pub fn trace_paths(tx: Point2, rx: Point2, room: &Room, scatterers: &[Scatterer]) -> Vec<Path> {
    let mut paths = Vec::with_capacity(5 + scatterers.len());

    // Line of sight.
    paths.push(Path {
        length: tx.distance(&rx).max(1e-6),
        gain: 1.0,
        extra_phase: 0.0,
    });

    // First-order wall reflections: reflect the TX across each wall; the
    // image-to-RX distance equals the length of the bounced ray.
    for image in room.wall_images(&tx) {
        paths.push(Path {
            length: image.distance(&rx).max(1e-6),
            gain: room.reflection_coeff,
            extra_phase: std::f64::consts::PI,
        });
    }

    // Single-bounce scatterer paths.
    for s in scatterers {
        let d1 = tx.distance(&s.pos).max(1e-6);
        let d2 = s.pos.distance(&rx).max(1e-6);
        paths.push(Path {
            length: d1 + d2,
            gain: s.gain,
            extra_phase: s.phase,
        });
    }

    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room() -> Room {
        Room::new(-2.6, 2.6, -1.0, 4.0, 0.4)
    }

    #[test]
    fn path_count_is_los_plus_walls_plus_scatterers() {
        let scatterers = vec![
            Scatterer {
                pos: Point2::new(1.0, 1.0),
                gain: 0.1,
                phase: 0.3,
            };
            3
        ];
        let paths = trace_paths(
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 3.0),
            &room(),
            &scatterers,
        );
        assert_eq!(paths.len(), 5 + 3);
    }

    #[test]
    fn los_is_shortest_path() {
        let paths = trace_paths(Point2::new(0.0, 0.0), Point2::new(-0.75, 3.0), &room(), &[]);
        let los = paths[0].length;
        for p in &paths[1..] {
            assert!(p.length > los, "reflection shorter than LoS");
        }
    }

    #[test]
    fn reflection_length_matches_manual_computation() {
        // TX at origin, RX straight ahead; bounce off the left wall at
        // x = −2.6 has image TX' = (−5.2, 0) → length = |TX' − RX|.
        let tx = Point2::new(0.0, 0.0);
        let rx = Point2::new(0.0, 3.0);
        let paths = trace_paths(tx, rx, &room(), &[]);
        let expect = Point2::new(-5.2, 0.0).distance(&rx);
        assert!((paths[1].length - expect).abs() < 1e-12);
    }

    #[test]
    fn scatterer_path_is_sum_of_legs() {
        let s = Scatterer {
            pos: Point2::new(1.0, 1.5),
            gain: 0.2,
            phase: 1.0,
        };
        let tx = Point2::new(0.0, 0.0);
        let rx = Point2::new(0.0, 3.0);
        let paths = trace_paths(tx, rx, &room(), &[s]);
        let want = tx.distance(&s.pos) + s.pos.distance(&rx);
        let got = paths.last().unwrap();
        assert!((got.length - want).abs() < 1e-12);
        assert_eq!(got.gain, 0.2);
        assert_eq!(got.extra_phase, 1.0);
    }

    #[test]
    fn coincident_endpoints_do_not_produce_zero_length() {
        let p = Point2::new(0.5, 0.5);
        let paths = trace_paths(p, p, &room(), &[]);
        assert!(paths.iter().all(|p| p.length > 0.0));
    }

    #[test]
    fn wall_bounce_gain_uses_reflection_coeff() {
        let paths = trace_paths(Point2::new(0.0, 0.0), Point2::new(1.0, 2.0), &room(), &[]);
        for p in &paths[1..5] {
            assert_eq!(p.gain, 0.4);
            assert_eq!(p.extra_phase, std::f64::consts::PI);
        }
    }
}
