//! The VHT Compressed Beamforming **Action No Ack** frame.

use crate::mac::MacAddr;
use crate::mimo_ctrl::VhtMimoControl;
use crate::mu_exclusive::{mu_exclusive_len, pack_mu_exclusive, unpack_mu_exclusive};
use crate::report::{pack_report, unpack_report};
use deepcsi_bfi::BeamformingFeedback;
use deepcsi_phy::{MimoConfig, SubcarrierLayout};
use serde::{Deserialize, Serialize};
use std::fmt;

/// 802.11 management / Action No Ack frame control (version 0, type 00,
/// subtype 1110).
const FC_ACTION_NO_ACK: u8 = 0xE0;
/// Category code for VHT action frames.
const CATEGORY_VHT: u8 = 21;
/// VHT action id for Compressed Beamforming.
const ACTION_COMPRESSED_BF: u8 = 0;
/// MAC header length: FC(2) + Dur(2) + 3 addresses(18) + Seq(2).
const HEADER_LEN: usize = 24;

/// Errors returned by [`BeamformingReportFrame::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer shorter than the fixed header + control fields.
    TooShort,
    /// Frame Control is not Action / Action No Ack.
    NotAnActionFrame,
    /// Category is not VHT or the action is not Compressed Beamforming.
    NotABeamformingReport,
    /// The MIMO control field failed to decode.
    BadMimoControl,
    /// Subcarrier grouping other than Ng = 1 is not supported.
    UnsupportedGrouping(u8),
    /// The angle payload does not contain a whole number of subcarriers.
    LengthMismatch {
        /// Payload bits available for angles.
        available_bits: usize,
        /// Bits required per subcarrier.
        bits_per_subcarrier: usize,
    },
    /// The MIMO dimensions in the control field are invalid.
    BadDimensions,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "frame too short"),
            FrameError::NotAnActionFrame => write!(f, "not an action frame"),
            FrameError::NotABeamformingReport => {
                write!(f, "not a VHT compressed beamforming report")
            }
            FrameError::BadMimoControl => write!(f, "undecodable VHT MIMO control field"),
            FrameError::UnsupportedGrouping(g) => {
                write!(f, "unsupported subcarrier grouping exponent {g}")
            }
            FrameError::LengthMismatch {
                available_bits,
                bits_per_subcarrier,
            } => write!(
                f,
                "angle payload of {available_bits} bits is not a multiple of {bits_per_subcarrier}"
            ),
            FrameError::BadDimensions => write!(f, "invalid Nr/Nc combination"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A complete, parseable VHT Compressed Beamforming report frame.
///
/// Encoding produces the on-air byte layout (MAC header, category/action,
/// VHT MIMO Control, SNR bytes, LSB-first angle bitstream); parsing
/// recovers every field, deriving the subcarrier indices from the
/// bandwidth exactly like a real observer must.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamformingReportFrame {
    destination: MacAddr,
    source: MacAddr,
    bssid: MacAddr,
    sequence: u16,
    asnr: Vec<i8>,
    feedback: BeamformingFeedback,
    mu_exclusive: Option<Vec<Vec<i8>>>,
}

impl BeamformingReportFrame {
    /// Wraps a feedback into a frame.
    pub fn new(
        destination: MacAddr,
        source: MacAddr,
        bssid: MacAddr,
        sequence: u16,
        feedback: BeamformingFeedback,
    ) -> Self {
        let asnr = vec![24i8 * 4; feedback.mimo.n_ss()]; // 24 dB default
        BeamformingReportFrame {
            destination,
            source,
            bssid,
            sequence,
            asnr,
            feedback,
            mu_exclusive: None,
        }
    }

    /// Appends an MU Exclusive Beamforming Report (per-tone delta SNRs,
    /// one row per subcarrier with one 4-bit value per stream).
    ///
    /// # Panics
    ///
    /// Panics if the row count differs from the feedback's subcarrier
    /// count.
    pub fn with_mu_exclusive(mut self, delta_snr: Vec<Vec<i8>>) -> Self {
        assert_eq!(
            delta_snr.len(),
            self.feedback.len(),
            "one delta-SNR row per subcarrier"
        );
        self.mu_exclusive = Some(delta_snr);
        self
    }

    /// The MU Exclusive report's delta SNRs, when present.
    pub fn mu_exclusive(&self) -> Option<&[Vec<i8>]> {
        self.mu_exclusive.as_deref()
    }

    /// Transmitting beamformee address (Addr2).
    pub fn source(&self) -> MacAddr {
        self.source
    }

    /// Destination beamformer address (Addr1).
    pub fn destination(&self) -> MacAddr {
        self.destination
    }

    /// Sequence number.
    pub fn sequence(&self) -> u16 {
        self.sequence
    }

    /// The carried feedback.
    pub fn feedback(&self) -> &BeamformingFeedback {
        &self.feedback
    }

    /// Consumes the frame, returning the feedback.
    pub fn into_feedback(self) -> BeamformingFeedback {
        self.feedback
    }

    /// Per-stream average SNR \[quarter dB\].
    pub fn average_snr(&self) -> &[i8] {
        &self.asnr
    }

    /// Serialises to the on-air byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mimo = self.feedback.mimo;
        let ctrl = VhtMimoControl::for_feedback(
            mimo.m_tx() as u8,
            mimo.n_ss() as u8,
            self.feedback_band(),
            self.feedback.codebook,
            (self.sequence & 0x3F) as u8,
        );
        let mut out = Vec::with_capacity(HEADER_LEN + 5);
        out.push(FC_ACTION_NO_ACK);
        out.push(0);
        out.extend_from_slice(&[0, 0]); // duration
        out.extend_from_slice(&self.destination.octets());
        out.extend_from_slice(&self.source.octets());
        out.extend_from_slice(&self.bssid.octets());
        out.extend_from_slice(&(self.sequence << 4).to_le_bytes());
        out.push(CATEGORY_VHT);
        out.push(ACTION_COMPRESSED_BF);
        out.extend_from_slice(&ctrl.to_bytes());
        out.extend_from_slice(&pack_report(
            &self.feedback.angles,
            &self.asnr,
            self.feedback.codebook,
        ));
        if let Some(delta) = &self.mu_exclusive {
            out.extend_from_slice(&pack_mu_exclusive(delta));
        }
        out
    }

    /// Parses an on-air frame.
    ///
    /// The number of subcarriers is recovered from the payload length and
    /// cross-checked for an exact fit; when it matches the band's native
    /// sounding layout the true tone indices are restored, otherwise the
    /// indices are consecutive from zero (partial/segmented captures).
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] variant describing where decoding failed.
    pub fn parse(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < HEADER_LEN + 5 {
            return Err(FrameError::TooShort);
        }
        if bytes[0] != FC_ACTION_NO_ACK && bytes[0] != 0xD0 {
            return Err(FrameError::NotAnActionFrame);
        }
        let destination = MacAddr::new(bytes[4..10].try_into().expect("slice length"));
        let source = MacAddr::new(bytes[10..16].try_into().expect("slice length"));
        let bssid = MacAddr::new(bytes[16..22].try_into().expect("slice length"));
        let sequence = u16::from_le_bytes([bytes[22], bytes[23]]) >> 4;
        if bytes[24] != CATEGORY_VHT || bytes[25] != ACTION_COMPRESSED_BF {
            return Err(FrameError::NotABeamformingReport);
        }
        let ctrl = VhtMimoControl::from_bytes([bytes[26], bytes[27], bytes[28]])
            .ok_or(FrameError::BadMimoControl)?;
        if ctrl.grouping != 0 {
            return Err(FrameError::UnsupportedGrouping(ctrl.grouping));
        }
        let m = ctrl.nr as usize;
        let n_ss = ctrl.nc as usize;
        let mimo = MimoConfig::new(m, n_ss.max(1), n_ss).map_err(|_| FrameError::BadDimensions)?;
        let cb = ctrl.codebook();

        let payload = &bytes[29..];
        let pairs: usize = (1..=n_ss.min(m.saturating_sub(1))).map(|i| m - i).sum();
        let bits_per_sc = pairs * (cb.b_phi + cb.b_psi) as usize;
        if bits_per_sc == 0 {
            return Err(FrameError::BadDimensions);
        }
        let available_bits = payload.len() * 8 - n_ss * 8;
        // First try: angles only (zero-padding of the final byte allows
        // < 8 slack bits).
        let mut num_sc = available_bits / bits_per_sc;
        let mut has_exclusive = false;
        if num_sc == 0 || available_bits - num_sc * bits_per_sc >= 8 {
            // Second try: a byte-aligned MU Exclusive report follows the
            // angle segment; solve for the tone count that fits exactly.
            num_sc = 0;
            for n in 1..=4096usize {
                let angle_bytes = (n_ss * 8 + n * bits_per_sc).div_ceil(8);
                let total = angle_bytes + mu_exclusive_len(n_ss, n);
                if total == payload.len() {
                    num_sc = n;
                    has_exclusive = true;
                    break;
                }
                if total > payload.len() {
                    break;
                }
            }
            if num_sc == 0 {
                return Err(FrameError::LengthMismatch {
                    available_bits,
                    bits_per_subcarrier: bits_per_sc,
                });
            }
        }
        let (asnr, angles) =
            unpack_report(payload, m, n_ss, num_sc, cb).ok_or(FrameError::TooShort)?;
        let mu_exclusive = if has_exclusive {
            let angle_bytes = (n_ss * 8 + num_sc * bits_per_sc).div_ceil(8);
            unpack_mu_exclusive(&payload[angle_bytes..], n_ss, num_sc)
        } else {
            None
        };

        let native = SubcarrierLayout::for_band(ctrl.band);
        let subcarriers: Vec<i32> = if native.len() == num_sc {
            native.indices().to_vec()
        } else {
            (0..num_sc as i32).collect()
        };

        Ok(BeamformingReportFrame {
            destination,
            source,
            bssid,
            sequence,
            asnr,
            feedback: BeamformingFeedback {
                mimo,
                codebook: cb,
                subcarriers,
                angles,
            },
            mu_exclusive,
        })
    }

    /// Infers the channel width to advertise from the subcarrier count.
    fn feedback_band(&self) -> deepcsi_phy::Band {
        match self.feedback.subcarriers.len() {
            0..=52 => deepcsi_phy::Band::Mhz20,
            53..=110 => deepcsi_phy::Band::Mhz40,
            _ => deepcsi_phy::Band::Mhz80,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_bfi::QuantizedAngles;
    use deepcsi_phy::Codebook;

    fn feedback(n_sc: usize) -> BeamformingFeedback {
        let mimo = MimoConfig::new(3, 2, 2).unwrap();
        BeamformingFeedback {
            mimo,
            codebook: Codebook::MU_HIGH,
            subcarriers: (0..n_sc as i32).collect(),
            angles: (0..n_sc)
                .map(|j| QuantizedAngles {
                    m: 3,
                    n_ss: 2,
                    q_phi: vec![
                        (j % 512) as u16,
                        ((j + 1) % 512) as u16,
                        ((j + 2) % 512) as u16,
                    ],
                    q_psi: vec![
                        (j % 128) as u16,
                        ((j + 1) % 128) as u16,
                        ((j + 2) % 128) as u16,
                    ],
                })
                .collect(),
        }
    }

    fn frame(n_sc: usize) -> BeamformingReportFrame {
        BeamformingReportFrame::new(
            MacAddr::station(0),
            MacAddr::station(1),
            MacAddr::station(0),
            77,
            feedback(n_sc),
        )
    }

    #[test]
    fn encode_parse_roundtrip() {
        let f = frame(16);
        let bytes = f.encode();
        let parsed = BeamformingReportFrame::parse(&bytes).unwrap();
        assert_eq!(parsed.source(), f.source());
        assert_eq!(parsed.destination(), f.destination());
        assert_eq!(parsed.sequence(), 77);
        assert_eq!(parsed.feedback().angles, f.feedback().angles);
        assert_eq!(parsed.feedback().codebook, Codebook::MU_HIGH);
        assert_eq!(parsed.average_snr(), f.average_snr());
    }

    #[test]
    fn full_80mhz_feedback_recovers_tone_indices() {
        let native = SubcarrierLayout::vht80();
        let mut fb = feedback(234);
        fb.subcarriers = native.indices().to_vec();
        let f = BeamformingReportFrame::new(
            MacAddr::station(0),
            MacAddr::station(1),
            MacAddr::station(0),
            1,
            fb,
        );
        let parsed = BeamformingReportFrame::parse(&f.encode()).unwrap();
        assert_eq!(parsed.feedback().subcarriers, native.indices());
    }

    #[test]
    fn frame_size_matches_expected() {
        // 234 tones, 3×2, (9,7): 24 header + 2 + 3 ctrl + 2 SNR + 1404.
        let f = frame(234);
        assert_eq!(f.encode().len(), 24 + 2 + 3 + 2 + 234 * 48 / 8);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            BeamformingReportFrame::parse(&[0u8; 4]),
            Err(FrameError::TooShort)
        );
        let mut bytes = frame(4).encode();
        bytes[0] = 0x80; // beacon
        assert_eq!(
            BeamformingReportFrame::parse(&bytes),
            Err(FrameError::NotAnActionFrame)
        );
        let mut bytes = frame(4).encode();
        bytes[24] = 4; // category: public action
        assert_eq!(
            BeamformingReportFrame::parse(&bytes),
            Err(FrameError::NotABeamformingReport)
        );
    }

    #[test]
    fn truncated_payload_is_rejected_or_shorter() {
        let f = frame(16);
        let mut bytes = f.encode();
        // Chop half the angle payload: parser must either report fewer
        // subcarriers or a length error — never panic.
        bytes.truncate(bytes.len() - 40);
        match BeamformingReportFrame::parse(&bytes) {
            Ok(p) => assert!(p.feedback().len() < 16),
            Err(e) => assert!(matches!(e, FrameError::LengthMismatch { .. })),
        }
    }

    #[test]
    fn mu_exclusive_roundtrip_through_frame() {
        let f = frame(16).with_mu_exclusive(
            (0..16)
                .map(|t| vec![(t % 16) as i8 - 8, 7 - (t % 16) as i8])
                .collect(),
        );
        let bytes = f.encode();
        let parsed = BeamformingReportFrame::parse(&bytes).unwrap();
        assert_eq!(parsed.feedback().angles, f.feedback().angles);
        let delta = parsed.mu_exclusive().expect("exclusive report present");
        assert_eq!(delta, f.mu_exclusive().unwrap());
        // Plain frames still parse without one.
        let plain = BeamformingReportFrame::parse(&frame(16).encode()).unwrap();
        assert!(plain.mu_exclusive().is_none());
    }

    #[test]
    fn errors_display() {
        let e = FrameError::UnsupportedGrouping(2);
        assert!(e.to_string().contains("grouping"));
        let e = FrameError::LengthMismatch {
            available_bits: 10,
            bits_per_subcarrier: 48,
        };
        assert!(e.to_string().contains("48"));
    }
}
