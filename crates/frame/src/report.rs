//! The VHT Compressed Beamforming Report: angle bitstream packing.

use crate::bits::{BitReader, BitWriter};
use deepcsi_bfi::QuantizedAngles;
use deepcsi_phy::Codebook;

/// Packs the report body: per-stream average SNR bytes followed by the
/// per-subcarrier angle bitstream.
///
/// Within each subcarrier the standard orders the angles per column:
/// for `i = 1..=min(Nc, Nr−1)` first the φ block `φ_{i,i} … φ_{Nr−1,i}`
/// then the ψ block `ψ_{i+1,i} … ψ_{Nr,i}` (Table 8-53g ordering, e.g.
/// `φ11 φ21 ψ21 ψ31 φ22 ψ32` for Nr=3, Nc=2).
///
/// `asnr` carries one signed quarter-dB-per-step average-SNR byte per
/// stream.
///
/// # Panics
///
/// Panics if any angle set is inconsistent with the first one's
/// dimensions, or `asnr.len()` differs from Nc.
pub fn pack_report(angles: &[QuantizedAngles], asnr: &[i8], cb: Codebook) -> Vec<u8> {
    let mut w = BitWriter::new();
    if let Some(first) = angles.first() {
        assert_eq!(asnr.len(), first.n_ss, "one average-SNR byte per stream");
    }
    for &snr in asnr {
        w.put(snr as u8 as u32, 8);
    }
    let mut dims: Option<(usize, usize)> = None;
    for qa in angles {
        match dims {
            None => dims = Some((qa.m, qa.n_ss)),
            Some(d) => assert_eq!(d, (qa.m, qa.n_ss), "mixed angle dimensions"),
        }
        let m = qa.m;
        let imax = qa.n_ss.min(m - 1);
        let mut phi_pos = 0usize;
        let mut psi_pos = 0usize;
        for i in 1..=imax {
            let nblk = m - i;
            for _ in 0..nblk {
                w.put(qa.q_phi[phi_pos] as u32, cb.b_phi);
                phi_pos += 1;
            }
            for _ in 0..nblk {
                w.put(qa.q_psi[psi_pos] as u32, cb.b_psi);
                psi_pos += 1;
            }
        }
        assert_eq!(phi_pos, qa.q_phi.len(), "φ count mismatch while packing");
        assert_eq!(psi_pos, qa.q_psi.len(), "ψ count mismatch while packing");
    }
    w.finish()
}

/// Unpacks a report body produced by [`pack_report`].
///
/// Returns the per-stream average SNR bytes and the per-subcarrier angle
/// sets, or `None` when the buffer is too short for the declared
/// dimensions.
pub fn unpack_report(
    data: &[u8],
    m: usize,
    n_ss: usize,
    num_subcarriers: usize,
    cb: Codebook,
) -> Option<(Vec<i8>, Vec<QuantizedAngles>)> {
    let mut r = BitReader::new(data);
    let asnr: Vec<i8> = (0..n_ss)
        .map(|_| r.get(8).map(|v| v as u8 as i8))
        .collect::<Option<_>>()?;
    let imax = n_ss.min(m.saturating_sub(1));
    let mut out = Vec::with_capacity(num_subcarriers);
    for _ in 0..num_subcarriers {
        let mut q_phi = Vec::new();
        let mut q_psi = Vec::new();
        for i in 1..=imax {
            let nblk = m - i;
            for _ in 0..nblk {
                q_phi.push(r.get(cb.b_phi)? as u16);
            }
            for _ in 0..nblk {
                q_psi.push(r.get(cb.b_psi)? as u16);
            }
        }
        out.push(QuantizedAngles {
            m,
            n_ss,
            q_phi,
            q_psi,
        });
    }
    Some((asnr, out))
}

/// Size in bytes of a packed report for the given dimensions.
pub fn report_len(m: usize, n_ss: usize, num_subcarriers: usize, cb: Codebook) -> usize {
    let imax = n_ss.min(m.saturating_sub(1));
    let pairs: usize = (1..=imax).map(|i| m - i).sum();
    let bits = n_ss * 8 + num_subcarriers * pairs * (cb.b_phi + cb.b_psi) as usize;
    bits.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_angles(n: usize) -> Vec<QuantizedAngles> {
        (0..n)
            .map(|j| QuantizedAngles {
                m: 3,
                n_ss: 2,
                q_phi: vec![
                    (j * 3) as u16 % 512,
                    (j * 5 + 1) as u16 % 512,
                    (j * 7 + 2) as u16 % 512,
                ],
                q_psi: vec![
                    (j * 2) as u16 % 128,
                    (j * 3 + 1) as u16 % 128,
                    (j * 4 + 2) as u16 % 128,
                ],
            })
            .collect()
    }

    #[test]
    fn roundtrip_mu_high() {
        let angles = sample_angles(16);
        let asnr = vec![22, 17];
        let bytes = pack_report(&angles, &asnr, Codebook::MU_HIGH);
        let (snr2, back) =
            unpack_report(&bytes, 3, 2, 16, Codebook::MU_HIGH).expect("unpack failed");
        assert_eq!(snr2, asnr);
        assert_eq!(back, angles);
    }

    #[test]
    fn roundtrip_all_codebooks() {
        for cb in [
            Codebook::SU_LOW,
            Codebook::SU_HIGH,
            Codebook::MU_LOW,
            Codebook::MU_HIGH,
        ] {
            let angles: Vec<QuantizedAngles> = sample_angles(5)
                .into_iter()
                .map(|mut a| {
                    // Clamp indices into the narrower codebooks' range.
                    for q in a.q_phi.iter_mut() {
                        *q %= cb.phi_levels() as u16;
                    }
                    for q in a.q_psi.iter_mut() {
                        *q %= cb.psi_levels() as u16;
                    }
                    a
                })
                .collect();
            let bytes = pack_report(&angles, &[0, -8], cb);
            let (_, back) = unpack_report(&bytes, 3, 2, 5, cb).unwrap();
            assert_eq!(back, angles, "codebook {cb}");
        }
    }

    #[test]
    fn packed_length_matches_report_len() {
        let angles = sample_angles(234);
        let bytes = pack_report(&angles, &[10, 10], Codebook::MU_HIGH);
        assert_eq!(bytes.len(), report_len(3, 2, 234, Codebook::MU_HIGH));
        // 2 SNR bytes + 234 · 3·(9+7) bits = 2 + 1404 bytes.
        assert_eq!(bytes.len(), 2 + 234 * 48 / 8);
    }

    #[test]
    fn truncated_buffer_fails_cleanly() {
        let angles = sample_angles(8);
        let mut bytes = pack_report(&angles, &[0, 0], Codebook::MU_HIGH);
        bytes.truncate(bytes.len() - 1);
        assert!(unpack_report(&bytes, 3, 2, 8, Codebook::MU_HIGH).is_none());
    }

    #[test]
    fn negative_snr_survives() {
        let angles = sample_angles(1);
        let bytes = pack_report(&angles, &[-16, 5], Codebook::MU_HIGH);
        let (snr, _) = unpack_report(&bytes, 3, 2, 1, Codebook::MU_HIGH).unwrap();
        assert_eq!(snr, vec![-16, 5]);
    }

    #[test]
    #[should_panic(expected = "one average-SNR byte per stream")]
    fn wrong_snr_count_panics() {
        let angles = sample_angles(1);
        let _ = pack_report(&angles, &[0], Codebook::MU_HIGH);
    }

    #[test]
    fn single_stream_ordering() {
        // Nr=3, Nc=1: angles are φ11 φ21 ψ21 ψ31.
        let qa = QuantizedAngles {
            m: 3,
            n_ss: 1,
            q_phi: vec![5, 6],
            q_psi: vec![7, 8],
        };
        let bytes = pack_report(std::slice::from_ref(&qa), &[0], Codebook::MU_HIGH);
        let mut r = BitReader::new(&bytes);
        let _snr = r.get(8).unwrap();
        assert_eq!(r.get(9), Some(5));
        assert_eq!(r.get(9), Some(6));
        assert_eq!(r.get(7), Some(7));
        assert_eq!(r.get(7), Some(8));
    }
}
