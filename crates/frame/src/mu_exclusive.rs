//! The MU Exclusive Beamforming Report (IEEE 802.11ac §8.4.1.49).
//!
//! In MU feedback the beamformee appends per-subcarrier **delta SNRs** —
//! one 4-bit signed value per spatial stream per (grouped) tone, in 1 dB
//! steps relative to the per-stream average SNR of the main report. The
//! beamformer uses them to pick MU groupings; for DeepCSI they are just
//! more cleartext the monitor can read.

use crate::bits::{BitReader, BitWriter};

/// Range of a 4-bit two's-complement delta SNR \[dB\].
pub const DELTA_SNR_MIN: i8 = -8;
/// Upper end of the 4-bit delta SNR range \[dB\].
pub const DELTA_SNR_MAX: i8 = 7;

/// Packs per-tone, per-stream delta SNRs into the MU exclusive report
/// bitstream. `delta_snr[t][s]` is the delta of stream `s` at tone `t`,
/// clamped into the representable `[-8, 7]` dB range.
///
/// # Panics
///
/// Panics if rows have inconsistent stream counts.
pub fn pack_mu_exclusive(delta_snr: &[Vec<i8>]) -> Vec<u8> {
    let mut w = BitWriter::new();
    let n_ss = delta_snr.first().map(|r| r.len()).unwrap_or(0);
    for row in delta_snr {
        assert_eq!(row.len(), n_ss, "inconsistent stream count");
        for &d in row {
            let clamped = d.clamp(DELTA_SNR_MIN, DELTA_SNR_MAX);
            w.put((clamped as u8 & 0x0F) as u32, 4);
        }
    }
    w.finish()
}

/// Unpacks an MU exclusive report: `num_tones` rows of `n_ss` 4-bit
/// two's-complement delta SNRs. Returns `None` when the buffer is too
/// short.
pub fn unpack_mu_exclusive(data: &[u8], n_ss: usize, num_tones: usize) -> Option<Vec<Vec<i8>>> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(num_tones);
    for _ in 0..num_tones {
        let mut row = Vec::with_capacity(n_ss);
        for _ in 0..n_ss {
            let raw = r.get(4)? as u8;
            // Sign-extend 4 → 8 bits.
            let v = if raw & 0x8 != 0 {
                (raw | 0xF0) as i8
            } else {
                raw as i8
            };
            row.push(v);
        }
        out.push(row);
    }
    Some(out)
}

/// Size in bytes of a packed MU exclusive report.
pub fn mu_exclusive_len(n_ss: usize, num_tones: usize) -> usize {
    (num_tones * n_ss * 4).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_full_range() {
        let rows: Vec<Vec<i8>> = (0..16)
            .map(|t| vec![(t - 8) as i8, (7 - t) as i8])
            .collect();
        let bytes = pack_mu_exclusive(&rows);
        assert_eq!(bytes.len(), mu_exclusive_len(2, 16));
        let back = unpack_mu_exclusive(&bytes, 2, 16).expect("unpack");
        assert_eq!(back, rows);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let rows = vec![vec![-100i8, 100]];
        let bytes = pack_mu_exclusive(&rows);
        let back = unpack_mu_exclusive(&bytes, 2, 1).expect("unpack");
        assert_eq!(back[0], vec![DELTA_SNR_MIN, DELTA_SNR_MAX]);
    }

    #[test]
    fn sign_extension_is_correct() {
        // 0xF = −1, 0x8 = −8, 0x7 = +7.
        let rows = vec![vec![-1i8, -8, 7]];
        let bytes = pack_mu_exclusive(&rows);
        let back = unpack_mu_exclusive(&bytes, 3, 1).expect("unpack");
        assert_eq!(back[0], vec![-1, -8, 7]);
    }

    #[test]
    fn truncated_buffer_fails() {
        let rows: Vec<Vec<i8>> = vec![vec![0, 0]; 8];
        let mut bytes = pack_mu_exclusive(&rows);
        bytes.pop();
        assert!(unpack_mu_exclusive(&bytes, 2, 8).is_none());
    }

    #[test]
    fn single_stream_packing_density() {
        // 234 tones × 1 stream × 4 bits = 117 bytes.
        assert_eq!(mu_exclusive_len(1, 234), 117);
        assert_eq!(mu_exclusive_len(2, 234), 234);
    }

    #[test]
    fn empty_report() {
        let bytes = pack_mu_exclusive(&[]);
        assert!(bytes.is_empty());
        assert_eq!(unpack_mu_exclusive(&bytes, 2, 0), Some(vec![]));
    }
}
