//! LSB-first bit packing, as used by 802.11 information fields.

use bytes::{BufMut, BytesMut};

/// Writes values LSB-first into a growing byte buffer.
///
/// 802.11 information elements place the least-significant bit of each
/// field in the lowest free bit position of the stream.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    partial: u8,
    filled: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `bits` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 32`.
    pub fn put(&mut self, value: u32, bits: u8) {
        assert!(bits <= 32, "at most 32 bits per put");
        for i in 0..bits {
            let bit = ((value >> i) & 1) as u8;
            self.partial |= bit << self.filled;
            self.filled += 1;
            if self.filled == 8 {
                self.buf.put_u8(self.partial);
                self.partial = 0;
                self.filled = 0;
            }
        }
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.filled as usize
    }

    /// Finishes the stream, zero-padding the final byte.
    pub fn finish(mut self) -> Vec<u8> {
        if self.filled > 0 {
            self.buf.put_u8(self.partial);
        }
        self.buf.to_vec()
    }
}

/// Reads values LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Reads `bits` bits; returns `None` when the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 32`.
    pub fn get(&mut self, bits: u8) -> Option<u32> {
        assert!(bits <= 32, "at most 32 bits per get");
        if self.pos + bits as usize > self.data.len() * 8 {
            return None;
        }
        let mut out = 0u32;
        for i in 0..bits {
            let byte = self.data[self.pos / 8];
            let bit = (byte >> (self.pos % 8)) & 1;
            out |= (bit as u32) << i;
            self.pos += 1;
        }
        Some(out)
    }

    /// Remaining unread bits.
    pub fn remaining_bits(&self) -> usize {
        self.data.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0x1FF, 9);
        w.put(0, 1);
        w.put(0x7F, 7);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), Some(0b101));
        assert_eq!(r.get(9), Some(0x1FF));
        assert_eq!(r.get(1), Some(0));
        assert_eq!(r.get(7), Some(0x7F));
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        w.put(1, 1); // bit 0 of byte 0
        w.put(0, 1);
        w.put(1, 1); // bit 2
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0101]);
    }

    #[test]
    fn cross_byte_field() {
        let mut w = BitWriter::new();
        w.put(0b11111, 5);
        w.put(0b111111, 6); // spans byte boundary
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(5), Some(0b11111));
        assert_eq!(r.get(6), Some(0b111111));
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get(8), Some(0xFF));
        assert_eq!(r.get(1), None);
        assert_eq!(r.remaining_bits(), 0);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        w.put(0b11, 2);
        assert_eq!(w.bit_len(), 2);
        w.put(0xFF, 8);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn truncated_wide_read_returns_none() {
        let mut r = BitReader::new(&[0xAB, 0xCD]);
        assert_eq!(r.get(12), Some(0xDAB));
        assert_eq!(r.remaining_bits(), 4);
        assert_eq!(r.get(5), None, "5 bits > 4 remaining");
        assert_eq!(r.get(4), Some(0xC));
    }
}
