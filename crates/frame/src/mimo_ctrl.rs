//! The 3-byte VHT MIMO Control field (IEEE 802.11ac §8.4.1.48).

use crate::bits::{BitReader, BitWriter};
use deepcsi_phy::{Band, Codebook};
use serde::{Deserialize, Serialize};

/// Feedback Type bit: single-user or multi-user feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeedbackType {
    /// SU feedback (Feedback Type = 0).
    Su,
    /// MU feedback (Feedback Type = 1) — the DeepCSI setting.
    Mu,
}

/// The VHT MIMO Control field. Bit layout (LSB-first):
///
/// | bits  | field                       |
/// |-------|-----------------------------|
/// | 0–2   | Nc Index (`Nc − 1`)         |
/// | 3–5   | Nr Index (`Nr − 1`)         |
/// | 6–7   | Channel Width               |
/// | 8–9   | Grouping (Ng exponent)      |
/// | 10    | Codebook Information        |
/// | 11    | Feedback Type               |
/// | 12–14 | Remaining Feedback Segments |
/// | 15    | First Feedback Segment      |
/// | 16–17 | Reserved                    |
/// | 18–23 | Sounding Dialog Token       |
///
/// The paper reads exactly these bits from Wireshark captures to learn
/// (Nc, Nr, bandwidth, bφ/bψ) before reconstructing Ṽ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VhtMimoControl {
    /// Number of columns Nc of the fed-back matrix (= N_SS), 1..=8.
    pub nc: u8,
    /// Number of rows Nr (= M TX antennas), 1..=8.
    pub nr: u8,
    /// Sounded channel width.
    pub band: Band,
    /// Subcarrier grouping Ng ∈ {1, 2, 4}, encoded as 0, 1, 2.
    pub grouping: u8,
    /// Codebook Information bit.
    pub codebook_bit: u8,
    /// SU/MU feedback type.
    pub feedback_type: FeedbackType,
    /// Remaining feedback segments (0 when unsegmented).
    pub remaining_segments: u8,
    /// First feedback segment flag.
    pub first_segment: bool,
    /// Sounding dialog token copied from the NDP Announcement.
    pub token: u8,
}

impl VhtMimoControl {
    /// Control field for one of this repo's simulated feedbacks.
    pub fn for_feedback(nr: u8, nc: u8, band: Band, codebook: Codebook, token: u8) -> Self {
        let (is_mu, bit) = codebook
            .to_standard_bit()
            .expect("codebook must be one of the four standard codebooks");
        VhtMimoControl {
            nc,
            nr,
            band,
            grouping: 0,
            codebook_bit: bit,
            feedback_type: if is_mu {
                FeedbackType::Mu
            } else {
                FeedbackType::Su
            },
            remaining_segments: 0,
            first_segment: true,
            token,
        }
    }

    /// The quantization codebook implied by the feedback type and
    /// codebook bit.
    pub fn codebook(&self) -> Codebook {
        match self.feedback_type {
            FeedbackType::Su => Codebook::su_from_bit(self.codebook_bit),
            FeedbackType::Mu => Codebook::mu_from_bit(self.codebook_bit),
        }
    }

    /// Subcarrier grouping factor Ng.
    pub fn ng(&self) -> u8 {
        1 << self.grouping
    }

    /// Serialises to the 3-byte wire format.
    pub fn to_bytes(&self) -> [u8; 3] {
        let mut w = BitWriter::new();
        w.put((self.nc - 1) as u32, 3);
        w.put((self.nr - 1) as u32, 3);
        w.put(self.band.vht_width_field() as u32, 2);
        w.put(self.grouping as u32, 2);
        w.put(self.codebook_bit as u32, 1);
        w.put(
            match self.feedback_type {
                FeedbackType::Su => 0,
                FeedbackType::Mu => 1,
            },
            1,
        );
        w.put(self.remaining_segments as u32, 3);
        w.put(self.first_segment as u32, 1);
        w.put(0, 2); // reserved
        w.put(self.token as u32, 6);
        let v = w.finish();
        [v[0], v[1], v[2]]
    }

    /// Parses the 3-byte wire format.
    ///
    /// Returns `None` when the channel-width code is invalid (it cannot
    /// be: all four 2-bit values map to a width — kept for future-proofing
    /// against reserved widths).
    pub fn from_bytes(bytes: [u8; 3]) -> Option<Self> {
        let mut r = BitReader::new(&bytes);
        let nc = r.get(3)? as u8 + 1;
        let nr = r.get(3)? as u8 + 1;
        let band = Band::from_vht_width_field(r.get(2)? as u8)?;
        let grouping = r.get(2)? as u8;
        let codebook_bit = r.get(1)? as u8;
        let feedback_type = if r.get(1)? == 0 {
            FeedbackType::Su
        } else {
            FeedbackType::Mu
        };
        let remaining_segments = r.get(3)? as u8;
        let first_segment = r.get(1)? == 1;
        let _reserved = r.get(2)?;
        let token = r.get(6)? as u8;
        Some(VhtMimoControl {
            nc,
            nr,
            band,
            grouping,
            codebook_bit,
            feedback_type,
            remaining_segments,
            first_segment,
            token,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VhtMimoControl {
        VhtMimoControl::for_feedback(3, 2, Band::Mhz80, Codebook::MU_HIGH, 0x2A)
    }

    #[test]
    fn roundtrip_preserves_all_fields() {
        let c = sample();
        let parsed = VhtMimoControl::from_bytes(c.to_bytes()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn paper_setting_wire_bits() {
        let c = sample();
        let b = c.to_bytes();
        // Byte 0: Nc−1=1 (bits 0–2), Nr−1=2 (bits 3–5), width=2 (bits 6–7).
        assert_eq!(b[0] & 0b111, 1);
        assert_eq!((b[0] >> 3) & 0b111, 2);
        assert_eq!(b[0] >> 6, 2);
        // Byte 1: grouping=0, codebook=1 (bit 10), fb type MU=1 (bit 11),
        // first segment (bit 15).
        assert_eq!(b[1] & 0b11, 0);
        assert_eq!((b[1] >> 2) & 1, 1);
        assert_eq!((b[1] >> 3) & 1, 1);
        assert_eq!(b[1] >> 7, 1);
        // Byte 2: token in bits 18–23.
        assert_eq!(b[2] >> 2, 0x2A);
    }

    #[test]
    fn codebook_mapping() {
        let c = sample();
        assert_eq!(c.codebook(), Codebook::MU_HIGH);
        let su = VhtMimoControl::for_feedback(2, 1, Band::Mhz20, Codebook::SU_LOW, 0);
        assert_eq!(su.codebook(), Codebook::SU_LOW);
        assert_eq!(su.feedback_type, FeedbackType::Su);
    }

    #[test]
    fn grouping_factor() {
        let mut c = sample();
        assert_eq!(c.ng(), 1);
        c.grouping = 2;
        assert_eq!(c.ng(), 4);
    }

    #[test]
    fn all_dimension_combinations_roundtrip() {
        for nr in 1..=8u8 {
            for nc in 1..=nr {
                for band in [Band::Mhz20, Band::Mhz40, Band::Mhz80, Band::Mhz160] {
                    let c = VhtMimoControl {
                        nc,
                        nr,
                        band,
                        grouping: 1,
                        codebook_bit: 0,
                        feedback_type: FeedbackType::Su,
                        remaining_segments: 3,
                        first_segment: false,
                        token: 63,
                    };
                    assert_eq!(VhtMimoControl::from_bytes(c.to_bytes()), Some(c));
                }
            }
        }
    }
}
