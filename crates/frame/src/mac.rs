//! MAC addresses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A locally-administered address derived from a small station id —
    /// handy for simulated beamformees.
    pub fn station(id: u64) -> Self {
        MacAddr([
            0x02,
            0x00,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        self.0 == [0xFF; 6]
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing a MAC address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 6 {
            return Err(ParseMacError);
        }
        for (o, p) in octets.iter_mut().zip(parts) {
            *o = u8::from_str_radix(p, 16).map_err(|_| ParseMacError)?;
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = MacAddr::new([0x02, 0x42, 0xAC, 0x11, 0x00, 0x07]);
        let s = a.to_string();
        assert_eq!(s, "02:42:ac:11:00:07");
        assert_eq!(s.parse::<MacAddr>().unwrap(), a);
    }

    #[test]
    fn broadcast_is_detected() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::station(1).is_broadcast());
    }

    #[test]
    fn station_addresses_are_local_and_unique() {
        let a = MacAddr::station(1);
        let b = MacAddr::station(2);
        assert_ne!(a, b);
        assert_eq!(a.octets()[0] & 0x02, 0x02, "locally administered bit");
    }

    #[test]
    fn bad_strings_fail() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("02:00".parse::<MacAddr>().is_err());
        assert!("gg:00:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("01:02:03:04:05:06:07".parse::<MacAddr>().is_err());
    }
}
