//! IEEE 802.11ac VHT Compressed Beamforming frame codec.
//!
//! DeepCSI's observer is any Wi-Fi device in monitor mode: it captures the
//! VHT Compressed Beamforming **Action No Ack** frames the beamformees
//! send in clear text, reads the VHT MIMO Control field (Nr, Nc, channel
//! width, codebook) and unpacks the quantized (φ, ψ) angles. This crate
//! implements that frame format byte- and bit-exactly in both directions:
//!
//! * [`VhtMimoControl`] — the 3-byte control field (§8.4.1.48 of the
//!   standard).
//! * [`pack_report`] / [`unpack_report`] — the angle bitstream with the
//!   standard's per-subcarrier angle ordering (φ blocks then ψ blocks per
//!   column) and per-stream average-SNR prefix.
//! * [`BeamformingReportFrame`] — the full MAC frame: header, category,
//!   action, control field, report; [`BeamformingReportFrame::encode`]
//!   and [`BeamformingReportFrame::parse`].
//! * [`Monitor`] — a promiscuous capture point that filters beamforming
//!   reports by source address, mirroring the Wireshark workflow of §IV.
//!
//! # Example
//!
//! ```
//! use deepcsi_frame::{BeamformingReportFrame, MacAddr, Monitor};
//! use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
//! use deepcsi_phy::{Codebook, MimoConfig};
//!
//! let mimo = MimoConfig::new(3, 2, 2).unwrap();
//! let feedback = BeamformingFeedback {
//!     mimo,
//!     codebook: Codebook::MU_HIGH,
//!     subcarriers: vec![-2, 2],
//!     angles: vec![
//!         QuantizedAngles { m: 3, n_ss: 2, q_phi: vec![1, 2, 3], q_psi: vec![4, 5, 6] },
//!         QuantizedAngles { m: 3, n_ss: 2, q_phi: vec![7, 8, 9], q_psi: vec![10, 11, 12] },
//!     ],
//! };
//! let frame = BeamformingReportFrame::new(
//!     MacAddr::BROADCAST,
//!     MacAddr::new([2, 0, 0, 0, 0, 7]),
//!     MacAddr::BROADCAST,
//!     5,
//!     feedback,
//! );
//! let bytes = frame.encode();
//! let parsed = BeamformingReportFrame::parse(&bytes).unwrap();
//! assert_eq!(parsed.feedback().angles, frame.feedback().angles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod bits;
mod capture;
mod mac;
mod mimo_ctrl;
mod mu_exclusive;
mod report;

pub use action::{BeamformingReportFrame, FrameError};
pub use bits::{BitReader, BitWriter};
pub use capture::{CapturedReport, Monitor};
pub use mac::MacAddr;
pub use mimo_ctrl::{FeedbackType, VhtMimoControl};
pub use mu_exclusive::{
    mu_exclusive_len, pack_mu_exclusive, unpack_mu_exclusive, DELTA_SNR_MAX, DELTA_SNR_MIN,
};
pub use report::{pack_report, report_len, unpack_report};
