//! Monitor-mode capture of beamforming reports (the Wireshark role).

use crate::action::{BeamformingReportFrame, FrameError};
use crate::mac::MacAddr;
use deepcsi_bfi::BeamformingFeedback;
use serde::{Deserialize, Serialize};

/// One successfully captured beamforming report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapturedReport {
    /// Beamformee that sent the feedback (frame Addr2).
    pub source: MacAddr,
    /// Beamformer the feedback is destined to (frame Addr1).
    pub destination: MacAddr,
    /// Frame sequence number.
    pub sequence: u16,
    /// The decoded feedback.
    pub feedback: BeamformingFeedback,
}

/// A passive monitor that decodes every VHT Compressed Beamforming frame
/// it is handed, keeping per-source statistics.
///
/// This mirrors §III-C: "the angles can be easily collected by any Wi-Fi
/// compliant device by setting the Wi-Fi interface in monitor mode …
/// DeepCSI does not require the monitor device to be authenticated with
/// the target AP." Feedback grouping by beamformee is "a filter on the
/// packets source address" (§IV-A).
#[derive(Debug, Default)]
pub struct Monitor {
    reports: Vec<CapturedReport>,
    decode_errors: usize,
}

impl Monitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one captured frame; undecodable frames are counted, not
    /// stored.
    pub fn observe(&mut self, bytes: &[u8]) -> Result<&CapturedReport, FrameError> {
        match BeamformingReportFrame::parse(bytes) {
            Ok(frame) => {
                self.reports.push(CapturedReport {
                    source: frame.source(),
                    destination: frame.destination(),
                    sequence: frame.sequence(),
                    feedback: frame.into_feedback(),
                });
                Ok(self.reports.last().expect("just pushed"))
            }
            Err(e) => {
                self.decode_errors += 1;
                Err(e)
            }
        }
    }

    /// All captured reports, in arrival order.
    pub fn reports(&self) -> &[CapturedReport] {
        &self.reports
    }

    /// Reports filtered by beamformee source address — the paper's
    /// per-beamformee trace grouping.
    pub fn reports_from(&self, source: MacAddr) -> impl Iterator<Item = &CapturedReport> {
        self.reports.iter().filter(move |r| r.source == source)
    }

    /// Distinct beamformee addresses seen so far.
    pub fn sources(&self) -> Vec<MacAddr> {
        let mut out: Vec<MacAddr> = self.reports.iter().map(|r| r.source).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Number of frames that failed to decode.
    pub fn decode_errors(&self) -> usize {
        self.decode_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_bfi::QuantizedAngles;
    use deepcsi_phy::{Codebook, MimoConfig};

    fn frame_from(src: u64, seq: u16) -> Vec<u8> {
        let mimo = MimoConfig::new(3, 2, 2).unwrap();
        let fb = BeamformingFeedback {
            mimo,
            codebook: Codebook::MU_HIGH,
            subcarriers: vec![0, 1],
            angles: vec![
                QuantizedAngles {
                    m: 3,
                    n_ss: 2,
                    q_phi: vec![seq, 2, 3],
                    q_psi: vec![4, 5, 6],
                };
                2
            ],
        };
        BeamformingReportFrame::new(
            MacAddr::station(0),
            MacAddr::station(src),
            MacAddr::station(0),
            seq,
            fb,
        )
        .encode()
    }

    #[test]
    fn captures_and_filters_by_source() {
        let mut mon = Monitor::new();
        mon.observe(&frame_from(1, 10)).unwrap();
        mon.observe(&frame_from(2, 11)).unwrap();
        mon.observe(&frame_from(1, 12)).unwrap();
        assert_eq!(mon.reports().len(), 3);
        let from1: Vec<_> = mon.reports_from(MacAddr::station(1)).collect();
        assert_eq!(from1.len(), 2);
        assert_eq!(from1[0].sequence, 10);
        assert_eq!(from1[1].sequence, 12);
        assert_eq!(mon.sources().len(), 2);
    }

    #[test]
    fn garbage_counts_as_decode_error() {
        let mut mon = Monitor::new();
        assert!(mon.observe(&[1, 2, 3]).is_err());
        assert_eq!(mon.decode_errors(), 1);
        assert!(mon.reports().is_empty());
    }

    #[test]
    fn feedback_payload_is_preserved() {
        let mut mon = Monitor::new();
        mon.observe(&frame_from(5, 42)).unwrap();
        let r = &mon.reports()[0];
        assert_eq!(r.feedback.angles[0].q_phi[0], 42);
        assert_eq!(r.feedback.mimo.m_tx(), 3);
    }
}
