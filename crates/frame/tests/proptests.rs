//! Property-based tests: the frame codec must round-trip arbitrary angle
//! payloads bit-exactly and never panic on arbitrary input bytes.

use deepcsi_bfi::{BeamformingFeedback, QuantizedAngles};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_phy::{Codebook, MimoConfig};
use proptest::prelude::*;

fn quantized_angles(m: usize, n_ss: usize, cb: Codebook) -> impl Strategy<Value = QuantizedAngles> {
    let imax = n_ss.min(m - 1);
    let count: usize = (1..=imax).map(|i| m - i).sum();
    (
        proptest::collection::vec(0u16..cb.phi_levels() as u16, count),
        proptest::collection::vec(0u16..cb.psi_levels() as u16, count),
    )
        .prop_map(move |(q_phi, q_psi)| QuantizedAngles {
            m,
            n_ss,
            q_phi,
            q_psi,
        })
}

fn feedback(cb: Codebook) -> impl Strategy<Value = BeamformingFeedback> {
    (1usize..40).prop_flat_map(move |n_sc| {
        proptest::collection::vec(quantized_angles(3, 2, cb), n_sc).prop_map(move |angles| {
            BeamformingFeedback {
                mimo: MimoConfig::new(3, 2, 2).expect("valid"),
                codebook: cb,
                subcarriers: (0..n_sc as i32).collect(),
                angles,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_arbitrary_feedback(fb in feedback(Codebook::MU_HIGH), seq in 0u16..4096, src in 0u64..1000) {
        let frame = BeamformingReportFrame::new(
            MacAddr::station(0),
            MacAddr::station(src),
            MacAddr::station(0),
            seq,
            fb.clone(),
        );
        let parsed = BeamformingReportFrame::parse(&frame.encode()).expect("parse");
        prop_assert_eq!(parsed.sequence(), seq);
        prop_assert_eq!(parsed.source(), MacAddr::station(src));
        prop_assert_eq!(&parsed.feedback().angles, &fb.angles);
        prop_assert_eq!(parsed.feedback().codebook, fb.codebook);
    }

    #[test]
    fn roundtrip_coarse_codebook(fb in feedback(Codebook::MU_LOW)) {
        let frame = BeamformingReportFrame::new(
            MacAddr::station(0),
            MacAddr::station(9),
            MacAddr::station(0),
            1,
            fb.clone(),
        );
        let parsed = BeamformingReportFrame::parse(&frame.encode()).expect("parse");
        prop_assert_eq!(&parsed.feedback().angles, &fb.angles);
    }

    #[test]
    fn parser_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = BeamformingReportFrame::parse(&bytes);
    }

    #[test]
    fn parser_never_panics_on_corrupted_valid_frame(
        fb in feedback(Codebook::MU_HIGH),
        flip in 0usize..2048,
        bit in 0u8..8,
    ) {
        let frame = BeamformingReportFrame::new(
            MacAddr::station(0),
            MacAddr::station(1),
            MacAddr::station(0),
            7,
            fb,
        );
        let mut bytes = frame.encode();
        let idx = flip % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = BeamformingReportFrame::parse(&bytes);
    }
}
