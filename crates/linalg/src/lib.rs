//! Complex linear-algebra substrate for the DeepCSI reproduction.
//!
//! The beamforming-feedback pipeline of IEEE 802.11ac/ax works on small,
//! dense, complex-valued matrices: the per-subcarrier channel frequency
//! response `H_k` (M×N), its singular value decomposition, and the Givens
//! factors of the beamforming matrix `V_k`. This crate provides exactly the
//! primitives that pipeline needs, with no external dependencies:
//!
//! * [`C64`] — a `f64` complex number with the full arithmetic surface.
//! * [`CMatrix`] — a dense row-major complex matrix.
//! * [`herm_eig`] — Hermitian eigendecomposition via the complex Jacobi
//!   method (exact to machine precision for the small matrices used here).
//! * [`svd`] — full complex singular value decomposition built on
//!   [`herm_eig`], returning `A = U Σ V†` with singular values sorted in
//!   descending order.
//!
//! # Example
//!
//! ```
//! use deepcsi_linalg::{C64, CMatrix, svd};
//!
//! let a = CMatrix::from_rows(&[
//!     vec![C64::new(1.0, 0.5), C64::new(0.0, -1.0)],
//!     vec![C64::new(2.0, 0.0), C64::new(1.0, 1.0)],
//!     vec![C64::new(0.5, 0.5), C64::new(0.0, 0.0)],
//! ]);
//! let d = svd(&a);
//! let again = d.reconstruct();
//! assert!(a.sub(&again).fro_norm() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod eig;
mod matrix;
mod svd;

pub use complex::C64;
pub use eig::{herm_eig, HermEig};
pub use matrix::CMatrix;
pub use svd::{right_singular_vectors, svd, Svd};
