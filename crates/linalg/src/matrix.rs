//! Dense complex matrices.

use crate::C64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major complex matrix.
///
/// The beamforming pipeline works on small matrices (the per-subcarrier CFR
/// is M×N with M, N ≤ 4) so the representation favours simplicity and
/// cache-friendly row-major traversal over blocking.
///
/// # Example
///
/// ```
/// use deepcsi_linalg::{C64, CMatrix};
///
/// let eye = CMatrix::identity(3);
/// let a = CMatrix::from_fn(3, 3, |r, c| C64::new((r + c) as f64, 0.0));
/// assert_eq!(a.matmul(&eye), a);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the n×n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates an `rows×cols` matrix with ones on the main diagonal and
    /// zeros elsewhere (the `I_{c×d}` of the paper's notation).
    pub fn eye_rect(rows: usize, cols: usize) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows.min(cols) {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn<F: FnMut(usize, usize) -> C64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<C64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let data = rows.iter().flatten().copied().collect();
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns a view of the backing row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Transpose (without conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Hermitian (conjugate) transpose `A†`.
    pub fn hermitian(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == C64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }

    /// Element-wise difference `self − rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }

    /// Multiplies every element by a complex scalar.
    pub fn scale(&self, s: C64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<C64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[C64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the sub-matrix made of the first `n` columns.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.cols()`.
    pub fn first_cols(&self, n: usize) -> CMatrix {
        assert!(n <= self.cols, "first_cols beyond column count");
        CMatrix::from_fn(self.rows, n, |r, c| self[(r, c)])
    }

    /// Maximum element-wise modulus of `self − rhs`; useful in tests.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, rhs: &CMatrix) -> f64 {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Checks `A†A ≈ I` within tolerance `tol` (columns orthonormal).
    pub fn is_unitary(&self, tol: f64) -> bool {
        let g = self.hermitian().matmul(self);
        g.max_abs_diff(&CMatrix::identity(self.cols)) < tol
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    #[test]
    fn identity_is_neutral() {
        let a = CMatrix::from_fn(3, 3, |r, col| c(r as f64 + 1.0, col as f64 - 1.0));
        let eye = CMatrix::identity(3);
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn transpose_and_hermitian() {
        let a = CMatrix::from_rows(&[vec![c(1.0, 2.0), c(3.0, -1.0)]]);
        let t = a.transpose();
        assert_eq!(t.shape(), (2, 1));
        assert_eq!(t[(0, 0)], c(1.0, 2.0));
        let h = a.hermitian();
        assert_eq!(h[(0, 0)], c(1.0, -2.0));
        assert_eq!(h[(1, 0)], c(3.0, 1.0));
    }

    #[test]
    fn matmul_small_known() {
        let a = CMatrix::from_rows(&[vec![c(1.0, 0.0), c(0.0, 1.0)]]);
        let b = CMatrix::from_rows(&[vec![c(2.0, 0.0)], vec![c(0.0, -2.0)]]);
        let p = a.matmul(&b);
        // 1·2 + i·(−2i) = 2 + 2 = 4
        assert_eq!(p.shape(), (1, 1));
        assert!((p[(0, 0)] - c(4.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn fro_norm_matches_manual() {
        let a = CMatrix::from_rows(&[vec![c(3.0, 0.0), c(0.0, 4.0)]]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn eye_rect_shape() {
        let m = CMatrix::eye_rect(3, 2);
        assert_eq!(m[(0, 0)], C64::ONE);
        assert_eq!(m[(1, 1)], C64::ONE);
        assert_eq!(m[(2, 0)], C64::ZERO);
        assert_eq!(m[(2, 1)], C64::ZERO);
    }

    #[test]
    fn diag_builds_square() {
        let d = CMatrix::diag(&[c(1.0, 0.0), c(0.0, 2.0)]);
        assert_eq!(d[(0, 0)], c(1.0, 0.0));
        assert_eq!(d[(1, 1)], c(0.0, 2.0));
        assert_eq!(d[(0, 1)], C64::ZERO);
    }

    #[test]
    fn unitary_check() {
        // A 2×2 rotation is unitary.
        let th: f64 = 0.3;
        let u = CMatrix::from_rows(&[
            vec![c(th.cos(), 0.0), c(-th.sin(), 0.0)],
            vec![c(th.sin(), 0.0), c(th.cos(), 0.0)],
        ]);
        assert!(u.is_unitary(1e-12));
        let not_u = CMatrix::from_rows(&[vec![c(2.0, 0.0)]]);
        assert!(!not_u.is_unitary(1e-12));
    }

    #[test]
    fn first_cols_extracts_prefix() {
        let a = CMatrix::from_fn(2, 3, |r, col| c((r * 3 + col) as f64, 0.0));
        let p = a.first_cols(2);
        assert_eq!(p.shape(), (2, 2));
        assert_eq!(p[(1, 1)], c(4.0, 0.0));
    }

    #[test]
    fn row_and_col_access() {
        let a = CMatrix::from_fn(2, 2, |r, col| c(r as f64, col as f64));
        assert_eq!(a.row(1), &[c(1.0, 0.0), c(1.0, 1.0)]);
        assert_eq!(a.col(0), vec![c(0.0, 0.0), c(1.0, 0.0)]);
    }

    #[test]
    fn scale_and_sub() {
        let a = CMatrix::identity(2);
        let b = a.scale(c(0.0, 1.0));
        assert_eq!(b[(0, 0)], C64::I);
        let z = b.sub(&b);
        assert_eq!(z.fro_norm(), 0.0);
    }
}
