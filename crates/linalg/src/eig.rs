//! Hermitian eigendecomposition via the complex Jacobi method.

use crate::{CMatrix, C64};

/// Result of a Hermitian eigendecomposition `A = V Λ V†`.
///
/// Eigenvalues are real (Hermitian input) and sorted in **descending**
/// order; `vectors` holds the matching eigenvectors as columns and is
/// unitary to machine precision.
#[derive(Debug, Clone)]
pub struct HermEig {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Unitary matrix whose column `i` is the eigenvector of `values[i]`.
    pub vectors: CMatrix,
}

impl HermEig {
    /// Rebuilds `V Λ V†`; mainly useful for testing.
    pub fn reconstruct(&self) -> CMatrix {
        let lambda = CMatrix::diag(
            &self
                .values
                .iter()
                .map(|&v| C64::real(v))
                .collect::<Vec<_>>(),
        );
        self.vectors
            .matmul(&lambda)
            .matmul(&self.vectors.hermitian())
    }
}

/// Maximum number of Jacobi sweeps before giving up. For the ≤8×8 matrices
/// in this codebase convergence takes 3–6 sweeps.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a Hermitian matrix by cyclic complex
/// Jacobi rotations.
///
/// The input is symmetrised as `(A + A†)/2` first, so small asymmetries from
/// accumulated floating-point error are tolerated.
///
/// # Panics
///
/// Panics if `a` is not square.
///
/// # Example
///
/// ```
/// use deepcsi_linalg::{C64, CMatrix, herm_eig};
///
/// let a = CMatrix::from_rows(&[
///     vec![C64::new(2.0, 0.0), C64::new(0.0, 1.0)],
///     vec![C64::new(0.0, -1.0), C64::new(2.0, 0.0)],
/// ]);
/// let e = herm_eig(&a);
/// assert!((e.values[0] - 3.0).abs() < 1e-10);
/// assert!((e.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn herm_eig(a: &CMatrix) -> HermEig {
    assert_eq!(a.rows(), a.cols(), "herm_eig requires a square matrix");
    let n = a.rows();
    // Symmetrise to guard against tiny Hermitian violations.
    let mut m = CMatrix::from_fn(n, n, |r, c| (a[(r, c)] + a[(c, r)].conj()).scale(0.5));
    let mut v = CMatrix::identity(n);

    let scale = m.fro_norm().max(1.0);
    let tol = 1e-14 * scale;

    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off = off.max(m[(p, q)].abs());
            }
        }
        if off < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                let r = apq.abs();
                if r < tol {
                    continue;
                }
                // Factor out the phase so the 2×2 sub-problem is real
                // symmetric, then apply a classical Jacobi rotation.
                let phi = apq.arg();
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                // Zeroing the (p,q) entry requires tan(2θ) = 2r/(app−aqq);
                // atan2 keeps the angle well-defined when app ≈ aqq.
                let theta = 0.5 * (2.0 * r).atan2(app - aqq);
                let (s, c) = theta.sin_cos();
                // Unitary rotation G: columns p,q mix with phase `phi`.
                //   G[p,p]=c            G[p,q]=-s·e^{jφ}
                //   G[q,p]=s·e^{-jφ}    G[q,q]=c
                let eip = C64::cis(phi);
                let eim = eip.conj();
                let gpp = C64::real(c);
                let gpq = -C64::real(s) * eip;
                let gqp = C64::real(s) * eim;
                let gqq = C64::real(c);

                // m ← G† m G applied in place on rows/cols p and q.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = mkp * gpp + mkq * gqp;
                    m[(k, q)] = mkp * gpq + mkq * gqq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = gpp.conj() * mpk + gqp.conj() * mqk;
                    m[(q, k)] = gpq.conj() * mpk + gqq.conj() * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = vkp * gpp + vkq * gqp;
                    v[(k, q)] = vkp * gpq + vkq * gqq;
                }
            }
        }
    }

    // Collect eigenpairs and sort by descending eigenvalue.
    let mut pairs: Vec<(f64, Vec<C64>)> = (0..n).map(|i| (m[(i, i)].re, v.col(i))).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let values = pairs.iter().map(|(val, _)| *val).collect();
    let vectors = CMatrix::from_fn(n, n, |r, c| pairs[c].1[r]);
    HermEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = CMatrix::diag(&[C64::real(3.0), C64::real(1.0), C64::real(2.0)]);
        let e = herm_eig(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
        assert!(e.vectors.is_unitary(1e-10));
    }

    #[test]
    fn known_2x2_hermitian() {
        // [[2, i], [-i, 2]] has eigenvalues 3 and 1.
        let a = CMatrix::from_rows(&[vec![C64::real(2.0), C64::I], vec![-C64::I, C64::real(2.0)]]);
        let e = herm_eig(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!(a.sub(&e.reconstruct()).fro_norm() < 1e-10);
    }

    #[test]
    fn reconstruction_3x3() {
        // Build a Hermitian matrix from B†B.
        let b = CMatrix::from_rows(&[
            vec![C64::new(1.0, 0.4), C64::new(-0.2, 0.0), C64::new(0.0, 1.0)],
            vec![C64::new(0.5, -1.0), C64::new(2.0, 0.3), C64::new(0.7, 0.0)],
        ]);
        let a = b.hermitian().matmul(&b);
        let e = herm_eig(&a);
        assert!(a.sub(&e.reconstruct()).fro_norm() < 1e-9);
        assert!(e.vectors.is_unitary(1e-9));
        // PSD: eigenvalues non-negative.
        assert!(e.values.iter().all(|&v| v > -1e-10));
        // Descending order.
        assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn eigenvector_equation_holds() {
        let a = CMatrix::from_rows(&[
            vec![C64::real(4.0), C64::new(1.0, 2.0)],
            vec![C64::new(1.0, -2.0), C64::real(-1.0)],
        ]);
        let e = herm_eig(&a);
        for i in 0..2 {
            let x = CMatrix::from_fn(2, 1, |r, _| e.vectors[(r, i)]);
            let ax = a.matmul(&x);
            let lx = x.scale(C64::real(e.values[i]));
            assert!(ax.sub(&lx).fro_norm() < 1e-9, "eigenpair {i} fails");
        }
    }

    #[test]
    fn zero_matrix() {
        let a = CMatrix::zeros(3, 3);
        let e = herm_eig(&a);
        assert!(e.values.iter().all(|&v| v.abs() < 1e-14));
        assert!(e.vectors.is_unitary(1e-12));
    }
}
