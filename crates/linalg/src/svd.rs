//! Complex singular value decomposition.

use crate::{herm_eig, CMatrix, C64};

/// Result of a singular value decomposition `A = U Σ V†`.
///
/// `u` is n×n, `v` is m×m (both unitary) and `s` holds the
/// `min(n, m)` singular values in **descending** order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (n×n unitary).
    pub u: CMatrix,
    /// Singular values, descending, all non-negative.
    pub s: Vec<f64>,
    /// Right singular vectors (m×m unitary). `A = U Σ V†`.
    pub v: CMatrix,
}

impl Svd {
    /// Rebuilds `U Σ V†`; mainly useful for testing.
    pub fn reconstruct(&self) -> CMatrix {
        let n = self.u.rows();
        let m = self.v.rows();
        let mut sigma = CMatrix::zeros(n, m);
        for (i, &sv) in self.s.iter().enumerate() {
            sigma[(i, i)] = C64::real(sv);
        }
        self.u.matmul(&sigma).matmul(&self.v.hermitian())
    }
}

/// Relative tolerance used to decide numerical rank.
const RANK_TOL: f64 = 1e-12;

/// Computes the full SVD of a complex matrix.
///
/// The decomposition is built on the Hermitian eigendecomposition of the
/// smaller Gram matrix (`A†A` or `AA†`), which is exact to machine precision
/// for the small matrices the beamforming pipeline uses. Columns of `U`
/// (resp. `V`) beyond the numerical rank are completed to a unitary basis by
/// modified Gram–Schmidt, so the factors are always full and unitary.
///
/// # Example
///
/// ```
/// use deepcsi_linalg::{C64, CMatrix, svd};
///
/// let a = CMatrix::from_rows(&[
///     vec![C64::new(0.0, 2.0), C64::ZERO],
///     vec![C64::ZERO, C64::new(1.0, 0.0)],
/// ]);
/// let d = svd(&a);
/// assert!((d.s[0] - 2.0).abs() < 1e-12);
/// assert!((d.s[1] - 1.0).abs() < 1e-12);
/// ```
pub fn svd(a: &CMatrix) -> Svd {
    let (n, m) = a.shape();
    let k = n.min(m);

    if m <= n {
        // Eigendecompose A†A (m×m) → V, then derive U.
        let gram = a.hermitian().matmul(a);
        let eig = herm_eig(&gram);
        let v = eig.vectors;
        let s: Vec<f64> = eig
            .values
            .iter()
            .take(k)
            .map(|&l| l.max(0.0).sqrt())
            .collect();
        let u = left_from_right(a, &v, &s);
        Svd { u, s, v }
    } else {
        // Eigendecompose AA† (n×n) → U, then derive V.
        let gram = a.matmul(&a.hermitian());
        let eig = herm_eig(&gram);
        let u = eig.vectors;
        let s: Vec<f64> = eig
            .values
            .iter()
            .take(k)
            .map(|&l| l.max(0.0).sqrt())
            .collect();
        // V columns: v_i = A† u_i / σ_i.
        let v = left_from_right(&a.hermitian(), &u, &s);
        Svd { u, s, v }
    }
}

/// Returns only the full m×m matrix of right singular vectors of `A`
/// (columns ordered by descending singular value).
///
/// This is the `Z_k` of the paper's Eq. (3): the beamforming matrix `V_k`
/// is its first `N_SS` columns. Cheaper than [`svd`] because the left
/// factor is never formed.
pub fn right_singular_vectors(a: &CMatrix) -> CMatrix {
    let gram = a.hermitian().matmul(a);
    herm_eig(&gram).vectors
}

/// Builds the left factor from `A`, its right singular vectors and the
/// singular values: `u_i = A v_i / σ_i` for σ_i above the rank tolerance,
/// completing the basis with modified Gram–Schmidt for the rest.
fn left_from_right(a: &CMatrix, v: &CMatrix, s: &[f64]) -> CMatrix {
    let n = a.rows();
    let smax = s.first().copied().unwrap_or(0.0).max(1.0);
    let mut cols: Vec<Vec<C64>> = Vec::with_capacity(n);
    for (i, &sv) in s.iter().enumerate() {
        if sv > RANK_TOL * smax {
            let vi = CMatrix::from_fn(v.rows(), 1, |r, _| v[(r, i)]);
            let ui = a.matmul(&vi);
            cols.push((0..n).map(|r| ui[(r, 0)] / sv).collect());
        }
    }
    complete_basis(&mut cols, n);
    CMatrix::from_fn(n, n, |r, c| cols[c][r])
}

/// Extends a set of orthonormal columns in C^n to a full unitary basis via
/// modified Gram–Schmidt over the standard basis vectors.
fn complete_basis(cols: &mut Vec<Vec<C64>>, n: usize) {
    let mut e = 0usize;
    while cols.len() < n {
        assert!(e < n, "basis completion exhausted candidates");
        // Candidate: standard basis vector e_e.
        let mut cand = vec![C64::ZERO; n];
        cand[e] = C64::ONE;
        e += 1;
        // Orthogonalise against the existing columns (twice for stability).
        for _ in 0..2 {
            for col in cols.iter() {
                let proj: C64 = col
                    .iter()
                    .zip(cand.iter())
                    .map(|(&u, &x)| u.conj() * x)
                    .sum();
                for (ci, ui) in cand.iter_mut().zip(col.iter()) {
                    *ci -= proj * *ui;
                }
            }
        }
        let norm = cand.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-8 {
            for z in cand.iter_mut() {
                *z = *z / norm;
            }
            cols.push(cand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> C64 {
        C64::new(re, im)
    }

    #[test]
    fn diagonal_real_matrix() {
        let a = CMatrix::from_rows(&[vec![c(3.0, 0.0), C64::ZERO], vec![C64::ZERO, c(-2.0, 0.0)]]);
        let d = svd(&a);
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!(a.sub(&d.reconstruct()).fro_norm() < 1e-10);
    }

    #[test]
    fn wide_matrix_2x3() {
        // The shape of Hᵀ in the paper's sounding (N=2 rows, M=3 cols).
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.2), c(0.0, -1.0), c(0.5, 0.5)],
            vec![c(-0.3, 0.8), c(2.0, 0.0), c(0.1, -0.4)],
        ]);
        let d = svd(&a);
        assert_eq!(d.u.shape(), (2, 2));
        assert_eq!(d.v.shape(), (3, 3));
        assert_eq!(d.s.len(), 2);
        assert!(d.u.is_unitary(1e-9), "U not unitary");
        assert!(d.v.is_unitary(1e-9), "V not unitary");
        assert!(a.sub(&d.reconstruct()).fro_norm() < 1e-9);
        assert!(d.s[0] >= d.s[1] && d.s[1] >= 0.0);
    }

    #[test]
    fn tall_matrix_4x2() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(0.0, 1.0)],
            vec![c(0.0, -1.0), c(1.0, 0.0)],
            vec![c(0.5, 0.5), c(-0.5, 0.5)],
            vec![c(0.2, 0.0), c(0.0, 0.2)],
        ]);
        let d = svd(&a);
        assert_eq!(d.u.shape(), (4, 4));
        assert_eq!(d.v.shape(), (2, 2));
        assert!(d.u.is_unitary(1e-9));
        assert!(d.v.is_unitary(1e-9));
        assert!(a.sub(&d.reconstruct()).fro_norm() < 1e-9);
    }

    #[test]
    fn rank_deficient_matrix() {
        // Second row is a multiple of the first → rank 1.
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, 0.0), c(0.0, -1.0)],
            vec![c(2.0, 2.0), c(4.0, 0.0), c(0.0, -2.0)],
        ]);
        let d = svd(&a);
        assert!(d.s[1].abs() < 1e-9, "second singular value should vanish");
        assert!(d.u.is_unitary(1e-8));
        assert!(d.v.is_unitary(1e-8));
        assert!(a.sub(&d.reconstruct()).fro_norm() < 1e-8);
    }

    #[test]
    fn zero_matrix_gives_identity_factors() {
        let a = CMatrix::zeros(3, 2);
        let d = svd(&a);
        assert!(d.s.iter().all(|&sv| sv.abs() < 1e-12));
        assert!(d.u.is_unitary(1e-10));
        assert!(d.v.is_unitary(1e-10));
    }

    #[test]
    fn right_singular_vectors_match_full_svd_subspace() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.2), c(0.0, -1.0), c(0.5, 0.5)],
            vec![c(-0.3, 0.8), c(2.0, 0.0), c(0.1, -0.4)],
        ]);
        let z = right_singular_vectors(&a);
        assert!(z.is_unitary(1e-9));
        // Each column must be a right singular vector: ‖A z_i‖ = σ_i.
        let d = svd(&a);
        for i in 0..2 {
            let zi = CMatrix::from_fn(3, 1, |r, _| z[(r, i)]);
            let azi = a.matmul(&zi);
            assert!((azi.fro_norm() - d.s[i]).abs() < 1e-8, "column {i}");
        }
    }

    #[test]
    fn singular_values_invariant_under_left_phase() {
        // Multiplying A by a unit phase leaves the singular values unchanged.
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.5), c(0.3, -0.7)],
            vec![c(0.0, 1.2), c(-0.8, 0.1)],
        ]);
        let b = a.scale(C64::cis(1.234));
        let da = svd(&a);
        let db = svd(&b);
        for (x, y) in da.s.iter().zip(db.s.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}
