//! Complex number type used throughout the DeepCSI pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// `C64` is a plain value type (`Copy`) with the arithmetic operators,
/// polar-form helpers and the conjugation/modulus operations the
/// beamforming-feedback math requires.
///
/// # Example
///
/// ```
/// use deepcsi_linalg::C64;
///
/// let z = C64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((z.re).abs() < 1e-12);
/// assert!((z.im - 2.0).abs() < 1e-12);
/// assert!((z.abs() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from its Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{jθ}`, a unit-modulus phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Modulus (absolute value) `|z|`.
    ///
    /// Uses `hypot` for overflow-safe evaluation.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`C64::abs`] when a square root
    /// is not needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) of the number, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        C64::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        C64::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `z` is zero, mirroring `f64`
    /// division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales the number by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by definition
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!((z - z), C64::ZERO);
        assert!((z * z.inv() - C64::ONE).abs() < EPS);
    }

    #[test]
    fn modulus_and_phase() {
        let z = C64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        let p = C64::from_polar(5.0, z.arg());
        assert!((p - z).abs() < EPS);
    }

    #[test]
    fn conjugate_properties() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(-0.25, 4.0);
        assert_eq!(a.conj().conj(), a);
        assert!(((a * b).conj() - a.conj() * b.conj()).abs() < EPS);
        assert!((a * a.conj()).im.abs() < EPS);
    }

    #[test]
    fn exponential_matches_euler() {
        let theta = 0.7;
        let e = C64::new(0.0, theta).exp();
        assert!((e.re - theta.cos()).abs() < EPS);
        assert!((e.im - theta.sin()).abs() < EPS);
        assert_eq!(C64::cis(theta), C64::from_polar(1.0, theta));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-2.0, 3.0);
        let r = z.sqrt();
        assert!((r * r - z).abs() < 1e-10);
    }

    #[test]
    fn division_by_real() {
        let z = C64::new(2.0, -6.0);
        let h = z / 2.0;
        assert_eq!(h, C64::new(1.0, -3.0));
    }

    #[test]
    fn sum_iterator() {
        let total: C64 = (0..4).map(|i| C64::new(i as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", C64::new(1.0, -1.0)).is_empty());
        assert!(!format!("{:?}", C64::ZERO).is_empty());
    }
}
