//! Property-based tests for the complex linear-algebra substrate.

use deepcsi_linalg::{herm_eig, right_singular_vectors, svd, CMatrix, C64};
use proptest::prelude::*;

/// Strategy producing a bounded complex number.
fn c64() -> impl Strategy<Value = C64> {
    (-5.0f64..5.0, -5.0f64..5.0).prop_map(|(re, im)| C64::new(re, im))
}

/// Strategy producing a rows×cols matrix with bounded entries.
fn cmatrix(rows: usize, cols: usize) -> impl Strategy<Value = CMatrix> {
    proptest::collection::vec(c64(), rows * cols)
        .prop_map(move |data| CMatrix::from_fn(rows, cols, |r, c| data[r * cols + c]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_mul_is_commutative(a in c64(), b in c64()) {
        prop_assert!(((a * b) - (b * a)).abs() < 1e-9);
    }

    #[test]
    fn complex_mul_modulus_is_multiplicative(a in c64(), b in c64()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }

    #[test]
    fn conj_distributes_over_add(a in c64(), b in c64()) {
        prop_assert!(((a + b).conj() - (a.conj() + b.conj())).abs() < 1e-12);
    }

    #[test]
    fn hermitian_transpose_is_involution(m in cmatrix(3, 2)) {
        let back = m.hermitian().hermitian();
        prop_assert!(m.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn matmul_associative(a in cmatrix(2, 3), b in cmatrix(3, 2), c in cmatrix(2, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn herm_eig_reconstructs(b in cmatrix(2, 3)) {
        // B†B is Hermitian PSD by construction.
        let a = b.hermitian().matmul(&b);
        let e = herm_eig(&a);
        prop_assert!(a.sub(&e.reconstruct()).fro_norm() < 1e-8 * (1.0 + a.fro_norm()));
        prop_assert!(e.vectors.is_unitary(1e-8));
        prop_assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        prop_assert!(e.values.iter().all(|&v| v > -1e-8));
    }

    #[test]
    fn svd_reconstructs_wide(a in cmatrix(2, 3)) {
        let d = svd(&a);
        prop_assert!(d.u.is_unitary(1e-8));
        prop_assert!(d.v.is_unitary(1e-8));
        prop_assert!(a.sub(&d.reconstruct()).fro_norm() < 1e-7 * (1.0 + a.fro_norm()));
        prop_assert!(d.s.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        prop_assert!(d.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_reconstructs_tall(a in cmatrix(4, 2)) {
        let d = svd(&a);
        prop_assert!(d.u.is_unitary(1e-8));
        prop_assert!(d.v.is_unitary(1e-8));
        prop_assert!(a.sub(&d.reconstruct()).fro_norm() < 1e-7 * (1.0 + a.fro_norm()));
    }

    #[test]
    fn svd_fro_norm_matches_singular_values(a in cmatrix(3, 3)) {
        // ‖A‖_F² = Σ σ_i²
        let d = svd(&a);
        let ssq: f64 = d.s.iter().map(|s| s * s).sum();
        prop_assert!((ssq.sqrt() - a.fro_norm()).abs() < 1e-7 * (1.0 + a.fro_norm()));
    }

    #[test]
    fn right_singular_vectors_unitary(a in cmatrix(2, 3)) {
        let z = right_singular_vectors(&a);
        prop_assert_eq!(z.shape(), (3, 3));
        prop_assert!(z.is_unitary(1e-8));
    }

    #[test]
    fn per_tx_phase_rotates_right_vectors(a in cmatrix(2, 3), t0 in 0.0f64..std::f64::consts::TAU, t1 in 0.0f64..std::f64::consts::TAU, t2 in 0.0f64..std::f64::consts::TAU) {
        // The fingerprint-percolation mechanism: A·T (per-column unit phases)
        // has right singular vectors T†Z up to per-column phase, so the
        // singular values are identical and the subspaces match.
        let t = CMatrix::diag(&[C64::cis(t0), C64::cis(t1), C64::cis(t2)]);
        let at = a.matmul(&t);
        let da = svd(&a);
        let db = svd(&at);
        for (x, y) in da.s.iter().zip(db.s.iter()) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + x.abs()));
        }
    }
}
