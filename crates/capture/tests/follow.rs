//! `FollowSource` behaviour against a file that grows, is truncated,
//! and is rotated — the reconnect story a long-lived monitor needs.

use deepcsi_capture::{
    FollowSource, FrameSource, PcapWriter, RadiotapBuilder, SourcePoll, LINKTYPE_RADIOTAP,
};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique temp path per test (no tempfile crate in the workspace).
fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "deepcsi-follow-{}-{tag}-{seq}.pcap",
        std::process::id()
    ))
}

/// A pcap image holding `n` beamforming-candidate MPDUs tagged
/// `start..start + n`.
fn capture_image(start: u8, n: u8) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
    for i in 0..n {
        let mut pkt = RadiotapBuilder::new().antenna_signal(-45).build();
        let mut mpdu = vec![0u8; 40];
        mpdu[0] = 0xE0;
        mpdu[24] = 21;
        mpdu[26] = start + i;
        pkt.extend_from_slice(&mpdu);
        w.write_packet(u64::from(i) * 1_000, &pkt).unwrap();
    }
    w.finish().unwrap()
}

/// Polls until `Pending`, returning the tags of the frames delivered.
fn drain_tags(src: &mut FollowSource) -> Vec<u8> {
    let mut tags = Vec::new();
    loop {
        match src.poll_frame().expect("follow poll") {
            SourcePoll::Frame(f) => tags.push(f.mpdu[26]),
            SourcePoll::Pending => return tags,
            SourcePoll::End => panic!("follow sources never end"),
        }
    }
}

#[test]
fn growing_file_is_tailed_across_partial_writes() {
    let path = temp_path("grow");
    let image = capture_image(0, 4);
    let mut src = FollowSource::open(&path);

    // File does not exist yet.
    assert_eq!(drain_tags(&mut src), vec![]);

    // Header + first record + *half* of the second record.
    let split = 24 + (16 + record_len(&image, 0)) + 10;
    std::fs::write(&path, &image[..split]).unwrap();
    assert_eq!(drain_tags(&mut src), vec![0]);

    // The rest arrives: the buffered half-record completes.
    append(&path, &image[split..]);
    assert_eq!(drain_tags(&mut src), vec![1, 2, 3]);
    assert_eq!(src.counters().bytes_read, image.len() as u64);
    assert_eq!(src.counters().packets_seen, 4);

    std::fs::remove_file(&path).ok();
}

#[test]
fn truncation_restarts_from_the_new_beginning() {
    let path = temp_path("trunc");
    std::fs::write(&path, capture_image(0, 3)).unwrap();
    let mut src = FollowSource::open(&path);
    assert_eq!(drain_tags(&mut src), vec![0, 1, 2]);

    // The file shrinks to a fresh, shorter capture (e.g. logrotate's
    // copytruncate): the follower must restart from the new header.
    std::fs::write(&path, capture_image(10, 2)).unwrap();
    assert_eq!(drain_tags(&mut src), vec![10, 11]);
    assert_eq!(src.counters().packets_seen, 5);

    std::fs::remove_file(&path).ok();
}

#[test]
fn rotation_to_a_new_file_is_followed() {
    let path = temp_path("rotate");
    std::fs::write(&path, capture_image(0, 2)).unwrap();
    let mut src = FollowSource::open(&path);
    assert_eq!(drain_tags(&mut src), vec![0, 1]);

    // Classic rotation: the file is moved away and a new capture starts
    // at the same path (new inode).
    let rotated = temp_path("rotated-away");
    std::fs::rename(&path, &rotated).unwrap();
    assert_eq!(drain_tags(&mut src), vec![]); // gap tolerated
    std::fs::write(&path, capture_image(20, 3)).unwrap();
    assert_eq!(drain_tags(&mut src), vec![20, 21, 22]);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&rotated).ok();
}

#[test]
fn structural_error_triggers_one_restart_then_recovers() {
    let path = temp_path("poisoned-then-rotated");
    std::fs::write(&path, capture_image(0, 2)).unwrap();
    let mut src = FollowSource::open(&path);
    assert_eq!(drain_tags(&mut src), vec![0, 1]);

    // A mid-stream writer glitch: 16 bytes of 0xFF parse as a record
    // header with an absurd caplen — a structural error the follower
    // must treat as a possible truncate/regrow race, not a fatality.
    append(&path, &[0xFF; 16]);
    assert_eq!(drain_tags(&mut src), vec![]); // error → silent restart

    // Before the next poll the path is replaced by a fresh capture: the
    // restart decodes it from its header.
    std::fs::write(&path, capture_image(50, 3)).unwrap();
    assert_eq!(drain_tags(&mut src), vec![50, 51, 52]);

    std::fs::remove_file(&path).ok();
}

#[test]
fn persistent_corruption_is_surfaced_not_retried_forever() {
    let path = temp_path("corrupt");
    let mut image = capture_image(0, 2);
    image.extend_from_slice(&[0xFF; 16]); // poison tail
    std::fs::write(&path, &image).unwrap();
    let mut src = FollowSource::open(&path);

    // First pass: frames, then the poison → one silent restart.
    assert_eq!(drain_tags(&mut src), vec![0, 1]);
    // Second pass re-reads the unchanged file and hits the same spot:
    // now it is an error, not an infinite rescan loop.
    let mut polls = 0;
    let err = loop {
        polls += 1;
        assert!(polls < 10, "corrupt file never surfaced an error");
        match src.poll_frame() {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    assert!(matches!(
        err,
        deepcsi_capture::CaptureError::Oversize { .. }
    ));

    std::fs::remove_file(&path).ok();
}

/// Length of the packet data of record `idx` (walks the file image).
fn record_len(image: &[u8], idx: usize) -> usize {
    let mut off = 24;
    for _ in 0..idx {
        let caplen = u32::from_le_bytes(image[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16 + caplen;
    }
    u32::from_le_bytes(image[off + 8..off + 12].try_into().unwrap()) as usize
}

fn append(path: &PathBuf, bytes: &[u8]) {
    std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .unwrap()
        .write_all(bytes)
        .unwrap();
}
