//! Property tests for the capture layer: write→read round-trips over
//! arbitrary packet lengths/timestamps/endianness, chunked streaming
//! equivalence, and a malformed-capture corpus that must produce errors
//! — never a panic, never an absurd allocation.

use deepcsi_capture::{
    CaptureDecoder, CaptureError, FrameSource, PcapFileSource, PcapReader, PcapWriter,
    PcapngReader, PcapngWriter, Radiotap, SourcePoll, LINKTYPE_RADIOTAP, MAX_PACKET,
};
use proptest::prelude::*;

/// Arbitrary packet payloads + timestamps (bounded so second counters
/// fit the classic pcap u32 field).
fn packets() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    proptest::collection::vec(
        (
            0u64..4_000_000_000_000_000_000,
            proptest::collection::vec(any::<u8>(), 0..600),
        ),
        0..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pcap_roundtrip_all_variants(
        pkts in packets(),
        big_endian in any::<bool>(),
        nanos in any::<bool>(),
    ) {
        let mut w =
            PcapWriter::with_format(Vec::new(), LINKTYPE_RADIOTAP, big_endian, nanos).unwrap();
        for (ts, data) in &pkts {
            w.write_packet(*ts, data).unwrap();
        }
        let image = w.finish().unwrap();
        let got: Vec<_> = PcapReader::new(&image)
            .unwrap()
            .map(|r| r.expect("own output reads back"))
            .collect();
        prop_assert_eq!(got.len(), pkts.len());
        for ((ts, data), rec) in pkts.iter().zip(&got) {
            prop_assert_eq!(rec.data, &data[..]);
            prop_assert_eq!(rec.link_type, LINKTYPE_RADIOTAP);
            // µs files truncate sub-microsecond digits; ns files are exact.
            let expect = if nanos { *ts } else { ts / 1_000 * 1_000 };
            prop_assert_eq!(rec.ts_nanos, expect);
        }
    }

    #[test]
    fn pcapng_roundtrip_is_nanosecond_exact(pkts in packets()) {
        let mut w = PcapngWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
        for (ts, data) in &pkts {
            w.write_packet(*ts, data).unwrap();
        }
        let image = w.finish().unwrap();
        let got: Vec<_> = PcapngReader::new(&image)
            .unwrap()
            .map(|r| r.expect("own output reads back"))
            .collect();
        prop_assert_eq!(got.len(), pkts.len());
        for ((ts, data), rec) in pkts.iter().zip(&got) {
            prop_assert_eq!(rec.data, &data[..]);
            prop_assert_eq!(rec.ts_nanos, *ts);
        }
    }

    /// Feeding the stream in arbitrary chunk sizes must decode the same
    /// packets as one-shot reading.
    #[test]
    fn chunked_decoding_matches_oneshot(
        pkts in packets(),
        chunk in 1usize..97,
        ng in any::<bool>(),
    ) {
        let image = if ng {
            let mut w = PcapngWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
            for (ts, data) in &pkts {
                w.write_packet(*ts, data).unwrap();
            }
            w.finish().unwrap()
        } else {
            let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
            for (ts, data) in &pkts {
                w.write_packet(*ts, data).unwrap();
            }
            w.finish().unwrap()
        };
        let mut dec = CaptureDecoder::new();
        let mut got = Vec::new();
        for piece in image.chunks(chunk) {
            dec.push(piece);
            while let Some(p) = dec.next_packet().unwrap() {
                got.push(p);
            }
        }
        prop_assert_eq!(got.len(), pkts.len());
        for ((_, data), pkt) in pkts.iter().zip(&got) {
            prop_assert_eq!(&pkt.data, data);
        }
    }

    /// Arbitrary bytes must never panic any reader — error or clean end
    /// only.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(r) = PcapReader::new(&bytes) {
            for rec in r {
                let _ = rec;
            }
        }
        if let Ok(r) = PcapngReader::new(&bytes) {
            for rec in r {
                let _ = rec;
            }
        }
        let mut dec = CaptureDecoder::new();
        dec.push(&bytes);
        while let Ok(Some(_)) = dec.next_packet() {}
        let _ = Radiotap::parse(&bytes);
        let mut src = PcapFileSource::from_bytes(bytes);
        loop {
            match src.poll_frame() {
                Ok(SourcePoll::End) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// Corrupting any single bit of a valid capture must never panic —
    /// and the reader must either finish or stop at one error.
    #[test]
    fn bit_flipped_captures_never_panic(
        pkts in packets(),
        flip in 0usize..100_000,
        bit in 0u8..8,
        ng in any::<bool>(),
    ) {
        let mut image = if ng {
            let mut w = PcapngWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
            for (ts, data) in &pkts {
                w.write_packet(*ts, data).unwrap();
            }
            w.finish().unwrap()
        } else {
            let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
            for (ts, data) in &pkts {
                w.write_packet(*ts, data).unwrap();
            }
            w.finish().unwrap()
        };
        let idx = flip % image.len();
        image[idx] ^= 1 << bit;
        let mut src = PcapFileSource::from_bytes(image);
        loop {
            match src.poll_frame() {
                Ok(SourcePoll::End) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    /// Truncating a valid capture at any point must never panic and
    /// never yield more packets than were written.
    #[test]
    fn truncation_never_panics(pkts in packets(), cut in 0usize..100_000) {
        let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
        for (ts, data) in &pkts {
            w.write_packet(*ts, data).unwrap();
        }
        let mut image = w.finish().unwrap();
        image.truncate(cut % (image.len() + 1));
        if let Ok(r) = PcapReader::new(&image) {
            let n = r.filter(|r| r.is_ok()).count();
            prop_assert!(n <= pkts.len());
        }
    }
}

/// The corpus of specific structural lies, each of which must produce a
/// `CaptureError` (not a panic, not a giant allocation).
mod malformed_corpus {
    use super::*;

    fn valid_pcap() -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
        w.write_packet(1_000, &[0xE0; 64]).unwrap();
        w.write_packet(2_000, &[0xD0; 32]).unwrap();
        w.finish().unwrap()
    }

    fn valid_pcapng() -> Vec<u8> {
        let mut w = PcapngWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
        w.write_packet(1_000, &[0xE0; 64]).unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn truncated_pcap_global_header() {
        let image = valid_pcap();
        for cut in 0..24 {
            assert!(
                PcapReader::new(&image[..cut]).is_err(),
                "prefix of {cut} bytes must not parse as a header"
            );
        }
    }

    #[test]
    fn absurd_caplen_errors_before_allocating() {
        let mut image = valid_pcap();
        // First record's incl_len → just past the cap; the 16 bytes of
        // record header sit right after the 24-byte global header.
        image[24 + 8..24 + 12].copy_from_slice(&(MAX_PACKET + 1).to_le_bytes());
        let err = PcapReader::new(&image).unwrap().next().unwrap();
        assert!(matches!(err, Err(CaptureError::Oversize { .. })), "{err:?}");

        // The streaming decoder must refuse it too — *before* waiting
        // for (or buffering) gigabytes that will never come.
        let mut dec = CaptureDecoder::new();
        dec.push(&image[..40]);
        assert!(matches!(
            dec.next_packet(),
            Err(CaptureError::Oversize { .. })
        ));
    }

    #[test]
    fn absurd_snaplen_in_header_is_harmless() {
        // A lying *snaplen* (global header) must not pre-allocate
        // anything or reject the file — records are bounded per-record.
        let mut image = valid_pcap();
        image[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let recs: Vec<_> = PcapReader::new(&image).unwrap().collect();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn pcapng_lying_block_lengths() {
        let image = valid_pcapng();
        let epb_start = 28 + 32; // SHB + IDB

        // Leading length not a multiple of 4.
        let mut bad = image.clone();
        bad[epb_start + 4] ^= 0x02;
        assert!(PcapngReader::new(&bad).unwrap().any(|r| r.is_err()));

        // Leading length beyond the cap.
        let mut bad = image.clone();
        bad[epb_start + 4..epb_start + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            PcapngReader::new(&bad).unwrap().next(),
            Some(Err(CaptureError::Oversize { .. }))
        ));

        // Trailer disagreeing with the leading length.
        let mut bad = image.clone();
        let n = bad.len();
        bad[n - 4..].copy_from_slice(&12u32.to_le_bytes());
        assert!(PcapngReader::new(&bad).unwrap().any(|r| r.is_err()));

        // EPB caplen overrunning its block.
        let mut bad = image.clone();
        bad[epb_start + 20..epb_start + 24].copy_from_slice(&10_000u32.to_le_bytes());
        assert!(PcapngReader::new(&bad).unwrap().any(|r| r.is_err()));
    }

    #[test]
    fn pcapng_packet_before_any_interface() {
        // SHB directly followed by an EPB referencing interface 0: the
        // reference must error, not index out of bounds.
        let mut w = PcapngWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
        w.write_packet(0, &[1, 2, 3]).unwrap();
        let image = w.finish().unwrap();
        let mut no_idb = image[..28].to_vec(); // SHB only
        no_idb.extend_from_slice(&image[28 + 32..]); // skip the IDB
        assert!(PcapngReader::new(&no_idb).unwrap().any(|r| r.is_err()));
    }

    #[test]
    fn corrupt_radiotap_it_len_is_an_error() {
        // it_len pointing past the packet.
        let mut hdr = vec![0u8, 0, 0xFF, 0x7F];
        hdr.extend_from_slice(&0u32.to_le_bytes());
        assert!(Radiotap::parse(&hdr).is_err());
        // it_len below the fixed 8-byte prefix.
        let mut hdr = vec![0u8, 0, 7, 0];
        hdr.extend_from_slice(&0u32.to_le_bytes());
        assert!(Radiotap::parse(&hdr).is_err());
        // Present chain longer than it_len admits.
        let mut hdr = vec![0u8, 0, 8, 0];
        hdr.extend_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(Radiotap::parse(&hdr).is_err());
    }
}
