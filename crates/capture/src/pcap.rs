//! Classic pcap container: zero-copy reader and writer covering all four
//! on-disk variants (little/big endian × microsecond/nanosecond
//! timestamps).

use crate::error::{CaptureError, MAX_PACKET};
use crate::packet::{rd_u16, rd_u32, PacketRecord};
use std::io::{self, Write};

/// Microsecond-timestamp magic (`0xA1B2C3D4` in file byte order).
pub const MAGIC_MICROS: u32 = 0xA1B2_C3D4;
/// Nanosecond-timestamp magic (`0xA1B23C4D` in file byte order).
pub const MAGIC_NANOS: u32 = 0xA1B2_3C4D;

/// Global header length.
const HEADER_LEN: usize = 24;
/// Per-record header length.
const RECORD_LEN: usize = 16;

/// A decoded pcap global header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapHeader {
    /// File byte order.
    pub big_endian: bool,
    /// `true` when timestamps carry nanoseconds, `false` for
    /// microseconds.
    pub nanos: bool,
    /// Declared capture length cap. Informational only — records are
    /// bounded by [`MAX_PACKET`], never by this (files lie).
    pub snaplen: u32,
    /// The link type every record shares.
    pub link_type: u32,
}

impl PcapHeader {
    /// Parses the 24-byte global header. `Ok(None)` means more bytes are
    /// needed; a recognisable-but-wrong magic is an error.
    pub fn parse(d: &[u8]) -> Result<Option<(PcapHeader, usize)>, CaptureError> {
        if d.len() < 4 {
            return Ok(None);
        }
        let le = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
        let be = u32::from_be_bytes([d[0], d[1], d[2], d[3]]);
        let (big_endian, nanos) = match (le, be) {
            (MAGIC_MICROS, _) => (false, false),
            (MAGIC_NANOS, _) => (false, true),
            (_, MAGIC_MICROS) => (true, false),
            (_, MAGIC_NANOS) => (true, true),
            _ => return Err(CaptureError::BadMagic(le)),
        };
        if d.len() < HEADER_LEN {
            return Ok(None);
        }
        let major = rd_u16(d, 4, big_endian);
        if major != 2 {
            return Err(CaptureError::Malformed("unknown pcap major version"));
        }
        Ok(Some((
            PcapHeader {
                big_endian,
                nanos,
                snaplen: rd_u32(d, 16, big_endian),
                link_type: rd_u32(d, 20, big_endian),
            },
            HEADER_LEN,
        )))
    }

    /// Parses the record at the start of `d`. `Ok(None)` means the
    /// record is still incomplete (more bytes needed).
    pub fn parse_record<'a>(
        &self,
        d: &'a [u8],
    ) -> Result<Option<(PacketRecord<'a>, usize)>, CaptureError> {
        if d.len() < RECORD_LEN {
            return Ok(None);
        }
        let caplen = rd_u32(d, 8, self.big_endian);
        if caplen > MAX_PACKET {
            return Err(CaptureError::Oversize {
                claimed: u64::from(caplen),
                cap: MAX_PACKET,
            });
        }
        let end = RECORD_LEN + caplen as usize;
        if d.len() < end {
            return Ok(None);
        }
        let sec = rd_u32(d, 0, self.big_endian);
        let frac = rd_u32(d, 4, self.big_endian);
        let ts_nanos =
            u64::from(sec) * 1_000_000_000 + u64::from(frac) * if self.nanos { 1 } else { 1_000 };
        Ok(Some((
            PacketRecord {
                link_type: self.link_type,
                ts_nanos,
                orig_len: rd_u32(d, 12, self.big_endian),
                data: &d[RECORD_LEN..end],
            },
            end,
        )))
    }
}

/// Zero-copy iterator over a complete in-memory pcap file.
///
/// Yields every record borrowed from the input buffer; a truncated tail
/// (bytes that do not form a whole record) is reported as one final
/// error.
#[derive(Debug)]
pub struct PcapReader<'a> {
    header: PcapHeader,
    data: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> PcapReader<'a> {
    /// Wraps a complete pcap file image.
    pub fn new(data: &'a [u8]) -> Result<Self, CaptureError> {
        match PcapHeader::parse(data)? {
            Some((header, consumed)) => Ok(PcapReader {
                header,
                data,
                pos: consumed,
                failed: false,
            }),
            None => Err(CaptureError::Malformed("truncated pcap global header")),
        }
    }

    /// The decoded global header.
    pub fn header(&self) -> &PcapHeader {
        &self.header
    }
}

impl<'a> Iterator for PcapReader<'a> {
    type Item = Result<PacketRecord<'a>, CaptureError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.data.len() {
            return None;
        }
        match self.header.parse_record(&self.data[self.pos..]) {
            Ok(Some((rec, consumed))) => {
                self.pos += consumed;
                Some(Ok(rec))
            }
            Ok(None) => {
                // Finite input: an incomplete record is a truncated file.
                self.failed = true;
                Some(Err(CaptureError::Malformed("truncated pcap record")))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Streaming pcap writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    w: W,
    big_endian: bool,
    nanos: bool,
}

impl<W: Write> PcapWriter<W> {
    /// Starts a little-endian, microsecond-resolution capture — the
    /// variant every reader in the wild accepts.
    pub fn new(w: W, link_type: u32) -> io::Result<Self> {
        Self::with_format(w, link_type, false, false)
    }

    /// Starts a capture in an explicit variant (byte order × timestamp
    /// resolution) — the writer-side counterpart of the reader's
    /// four-variant support, and the round-trip test's lever.
    pub fn with_format(w: W, link_type: u32, big_endian: bool, nanos: bool) -> io::Result<Self> {
        let mut pw = PcapWriter {
            w,
            big_endian,
            nanos,
        };
        let magic = if nanos { MAGIC_NANOS } else { MAGIC_MICROS };
        pw.u32(magic)?;
        pw.u16(2)?; // version 2.4
        pw.u16(4)?;
        pw.u32(0)?; // thiszone
        pw.u32(0)?; // sigfigs
        pw.u32(MAX_PACKET)?; // snaplen
        pw.u32(link_type)?;
        Ok(pw)
    }

    /// Appends one packet record.
    ///
    /// # Errors
    ///
    /// Besides write failures: a packet over [`MAX_PACKET`] bytes, or a
    /// timestamp whose whole seconds overflow the format's 32-bit
    /// counter (year 2106) — refusing beats silently wrapping it.
    pub fn write_packet(&mut self, ts_nanos: u64, data: &[u8]) -> io::Result<()> {
        if data.len() as u64 > u64::from(MAX_PACKET) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "packet exceeds MAX_PACKET",
            ));
        }
        let sec = u32::try_from(ts_nanos / 1_000_000_000).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "timestamp seconds overflow the 32-bit pcap field",
            )
        })?;
        let frac = if self.nanos {
            (ts_nanos % 1_000_000_000) as u32
        } else {
            (ts_nanos % 1_000_000_000 / 1_000) as u32
        };
        self.u32(sec)?;
        self.u32(frac)?;
        self.u32(data.len() as u32)?;
        self.u32(data.len() as u32)?;
        self.w.write_all(data)
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }

    fn u16(&mut self, v: u16) -> io::Result<()> {
        let b = if self.big_endian {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.w.write_all(&b)
    }

    fn u32(&mut self, v: u32) -> io::Result<()> {
        let b = if self.big_endian {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        self.w.write_all(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(big_endian: bool, nanos: bool) {
        let mut w =
            PcapWriter::with_format(Vec::new(), crate::LINKTYPE_RADIOTAP, big_endian, nanos)
                .unwrap();
        w.write_packet(1_700_000_000_123_456_789, &[1, 2, 3, 4, 5])
            .unwrap();
        w.write_packet(1_700_000_001_000_000_000, &[]).unwrap();
        let bytes = w.finish().unwrap();

        let reader = PcapReader::new(&bytes).unwrap();
        assert_eq!(reader.header().big_endian, big_endian);
        assert_eq!(reader.header().nanos, nanos);
        let recs: Vec<_> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].data, &[1, 2, 3, 4, 5]);
        assert_eq!(recs[0].link_type, crate::LINKTYPE_RADIOTAP);
        let expect = if nanos {
            1_700_000_000_123_456_789
        } else {
            1_700_000_000_123_456_000 // truncated to µs
        };
        assert_eq!(recs[0].ts_nanos, expect);
        assert_eq!(recs[1].data.len(), 0);
    }

    #[test]
    fn all_four_variants_roundtrip() {
        for be in [false, true] {
            for ns in [false, true] {
                roundtrip(be, ns);
            }
        }
    }

    #[test]
    fn bad_magic_is_an_error() {
        assert!(matches!(
            PcapReader::new(&[0u8; 64]),
            Err(CaptureError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_tail_is_one_error() {
        let mut w = PcapWriter::new(Vec::new(), 127).unwrap();
        w.write_packet(0, &[9; 40]).unwrap();
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 10);
        let mut reader = PcapReader::new(&bytes).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn lying_caplen_errors_without_allocating() {
        let mut w = PcapWriter::new(Vec::new(), 127).unwrap();
        w.write_packet(0, &[0; 4]).unwrap();
        let mut bytes = w.finish().unwrap();
        // Rewrite incl_len to an absurd value.
        bytes[24 + 8..24 + 12].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = PcapReader::new(&bytes).unwrap();
        assert!(matches!(
            reader.next().unwrap(),
            Err(CaptureError::Oversize { .. })
        ));
    }
}
