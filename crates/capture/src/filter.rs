//! Cheap 802.11 pre-filter: drop everything that cannot be a VHT
//! compressed beamforming report before paying for full frame parsing.
//!
//! A monitor-mode interface sees *all* traffic — beacons, data, control
//! frames — of which beamforming reports are a sliver. This filter looks
//! at exactly three bytes (Frame Control, category, action) so the full
//! `BeamformingReportFrame::parse` only ever runs on real candidates.

/// Frame Control byte 0: management / Action (subtype 1101), version 0.
const FC_ACTION: u8 = 0xD0;
/// Frame Control byte 0: management / Action No Ack (subtype 1110).
const FC_ACTION_NO_ACK: u8 = 0xE0;
/// 802.11 category code for VHT action frames.
const CATEGORY_VHT: u8 = 21;
/// VHT action id for Compressed Beamforming.
const ACTION_COMPRESSED_BF: u8 = 0;
/// MAC header (24) + category + action: the minimum a candidate needs.
const MIN_CANDIDATE_LEN: usize = 26;

/// `true` when `mpdu` could be a VHT Compressed Beamforming report —
/// an Action / Action No Ack management frame carrying the VHT
/// category and Compressed Beamforming action.
///
/// False positives are fine (the full parser re-checks everything);
/// false negatives are not — the constants mirror the accepted set of
/// `deepcsi_frame::BeamformingReportFrame::parse` exactly.
pub fn is_beamforming_candidate(mpdu: &[u8]) -> bool {
    mpdu.len() >= MIN_CANDIDATE_LEN
        && matches!(mpdu[0], FC_ACTION | FC_ACTION_NO_ACK)
        && mpdu[24] == CATEGORY_VHT
        && mpdu[25] == ACTION_COMPRESSED_BF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate() -> Vec<u8> {
        let mut f = vec![0u8; 32];
        f[0] = FC_ACTION_NO_ACK;
        f[24] = CATEGORY_VHT;
        f[25] = ACTION_COMPRESSED_BF;
        f
    }

    #[test]
    fn accepts_both_action_subtypes() {
        let mut f = candidate();
        assert!(is_beamforming_candidate(&f));
        f[0] = FC_ACTION;
        assert!(is_beamforming_candidate(&f));
    }

    #[test]
    fn rejects_other_frames() {
        let mut beacon = candidate();
        beacon[0] = 0x80;
        assert!(!is_beamforming_candidate(&beacon));
        let mut public_action = candidate();
        public_action[24] = 4;
        assert!(!is_beamforming_candidate(&public_action));
        let mut other_vht_action = candidate();
        other_vht_action[25] = 1; // Group ID Management
        assert!(!is_beamforming_candidate(&other_vht_action));
        assert!(!is_beamforming_candidate(&candidate()[..20]));
        assert!(!is_beamforming_candidate(&[]));
    }
}
