//! pcapng container: zero-copy reader and writer over the block types a
//! packet capture needs — Section Header (SHB), Interface Description
//! (IDB) and Enhanced/Simple Packet (EPB/SPB). Unknown block types are
//! skipped; per-section byte order and per-interface timestamp
//! resolution are honoured.

use crate::error::{CaptureError, MAX_BLOCK, MAX_PACKET};
use crate::packet::{pad4, rd_u16, rd_u32, PacketRecord};
use std::io::{self, Write};

/// Section Header Block type (palindromic, so readable before the byte
/// order is known).
pub const BLOCK_SHB: u32 = 0x0A0D_0D0A;
/// Interface Description Block type.
pub const BLOCK_IDB: u32 = 0x0000_0001;
/// Simple Packet Block type.
pub const BLOCK_SPB: u32 = 0x0000_0003;
/// Enhanced Packet Block type.
pub const BLOCK_EPB: u32 = 0x0000_0006;

/// SHB byte-order magic.
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;
/// Size cap for blocks that are skipped rather than decoded (NRB, DSB,
/// vendor blocks): large TLS keylogs etc. are legitimate, but the
/// streaming decoder buffers a block to skip it, so a bound remains.
const MAX_SKIPPED_BLOCK: u32 = 16 * 1024 * 1024;
/// `if_tsresol` option code.
const OPT_IF_TSRESOL: u16 = 9;

/// Per-interface timestamp resolution (`if_tsresol`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    /// Ticks are `10^-r` seconds.
    Pow10(u8),
    /// Ticks are `2^-r` seconds.
    Pow2(u8),
}

impl Resolution {
    const DEFAULT: Resolution = Resolution::Pow10(6); // microseconds

    fn to_nanos(self, ticks: u64) -> u64 {
        let wide = match self {
            Resolution::Pow10(r) if r <= 9 => u128::from(ticks) * 10u128.pow(u32::from(9 - r)),
            Resolution::Pow10(r) => u128::from(ticks) / 10u128.pow(u32::from(r.min(28) - 9)),
            Resolution::Pow2(r) if r < 64 => (u128::from(ticks) * 1_000_000_000) >> r,
            Resolution::Pow2(_) => 0,
        };
        u64::try_from(wide).unwrap_or(u64::MAX)
    }
}

/// One declared capture interface.
#[derive(Debug, Clone, Copy)]
struct Interface {
    link_type: u32,
    snaplen: u32,
    tsresol: Resolution,
}

/// Decoder state for one pcapng stream: current section byte order and
/// its interface table. Shared by the zero-copy reader and the
/// incremental [`crate::CaptureDecoder`].
#[derive(Debug, Default)]
pub(crate) struct SectionState {
    started: bool,
    big_endian: bool,
    interfaces: Vec<Interface>,
}

/// What one block parse produced.
pub(crate) enum BlockItem<'a> {
    /// A packet record.
    Packet(PacketRecord<'a>),
    /// A structural block (SHB/IDB) or an unknown type — consumed, no
    /// packet.
    Control,
}

impl SectionState {
    /// Parses the block at the start of `d`. `Ok(None)` means the block
    /// is still incomplete (more bytes needed).
    pub(crate) fn parse_block<'a>(
        &mut self,
        d: &'a [u8],
    ) -> Result<Option<(BlockItem<'a>, usize)>, CaptureError> {
        if d.len() < 12 {
            return Ok(None);
        }
        // The SHB type is a palindrome, so it is recognisable (and must
        // come first) before any byte order is established.
        let raw_type = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
        let is_shb = raw_type == BLOCK_SHB;
        if !self.started && !is_shb {
            return Err(CaptureError::BadMagic(raw_type));
        }
        let big_endian = if is_shb {
            match rd_u32(d, 8, false) {
                BYTE_ORDER_MAGIC => false,
                m if m.swap_bytes() == BYTE_ORDER_MAGIC => true,
                _ => return Err(CaptureError::Malformed("bad SHB byte-order magic")),
            }
        } else {
            self.big_endian
        };
        let block_type = rd_u32(d, 0, big_endian);
        let total_len = rd_u32(d, 4, big_endian);
        // Blocks we decode are packet-sized; blocks we merely skip
        // (name resolution, decryption secrets, vendor blocks) are
        // legitimately large in real Wireshark captures, so they get a
        // roomier cap — still bounded, the streaming decoder buffers a
        // block before skipping it.
        let cap = match block_type {
            BLOCK_SHB | BLOCK_IDB | BLOCK_EPB | BLOCK_SPB => MAX_BLOCK,
            _ => MAX_SKIPPED_BLOCK,
        };
        if total_len > cap {
            return Err(CaptureError::Oversize {
                claimed: u64::from(total_len),
                cap,
            });
        }
        if total_len < 12 || !total_len.is_multiple_of(4) {
            return Err(CaptureError::Malformed("bad pcapng block length"));
        }
        let total = total_len as usize;
        if d.len() < total {
            return Ok(None);
        }
        if rd_u32(d, total - 4, big_endian) != total_len {
            return Err(CaptureError::Malformed("block trailer length mismatch"));
        }
        let body = &d[8..total - 4];
        let item = if is_shb {
            self.big_endian = big_endian;
            self.started = true;
            self.interfaces.clear();
            if body.len() < 16 {
                return Err(CaptureError::Malformed("SHB too short"));
            }
            if rd_u16(body, 4, big_endian) != 1 {
                return Err(CaptureError::Malformed("unknown pcapng major version"));
            }
            BlockItem::Control
        } else {
            match block_type {
                BLOCK_IDB => {
                    self.parse_idb(body)?;
                    BlockItem::Control
                }
                BLOCK_EPB => BlockItem::Packet(self.parse_epb(body)?),
                BLOCK_SPB => BlockItem::Packet(self.parse_spb(body)?),
                _ => BlockItem::Control,
            }
        };
        Ok(Some((item, total)))
    }

    fn iface(&self, id: u32) -> Result<&Interface, CaptureError> {
        self.interfaces
            .get(id as usize)
            .ok_or(CaptureError::Malformed(
                "packet references unknown interface",
            ))
    }

    fn parse_idb(&mut self, body: &[u8]) -> Result<(), CaptureError> {
        if body.len() < 8 {
            return Err(CaptureError::Malformed("IDB too short"));
        }
        let link_type = u32::from(rd_u16(body, 0, self.big_endian));
        let snaplen = rd_u32(body, 4, self.big_endian);
        let mut tsresol = Resolution::DEFAULT;
        // Options: (code u16, len u16, value padded to 4)*, terminated by
        // opt_endofopt or the end of the block body.
        let mut opts = &body[8..];
        while opts.len() >= 4 {
            let code = rd_u16(opts, 0, self.big_endian);
            let len = rd_u16(opts, 2, self.big_endian) as usize;
            if code == 0 {
                break;
            }
            let end = 4 + pad4(len);
            if 4 + len > opts.len() {
                return Err(CaptureError::Malformed("IDB option overruns block"));
            }
            if code == OPT_IF_TSRESOL && len == 1 {
                let v = opts[4];
                tsresol = if v & 0x80 != 0 {
                    Resolution::Pow2(v & 0x7F)
                } else {
                    Resolution::Pow10(v)
                };
            }
            opts = &opts[end.min(opts.len())..];
        }
        self.interfaces.push(Interface {
            link_type,
            snaplen,
            tsresol,
        });
        Ok(())
    }

    fn parse_epb<'a>(&self, body: &'a [u8]) -> Result<PacketRecord<'a>, CaptureError> {
        if body.len() < 20 {
            return Err(CaptureError::Malformed("EPB too short"));
        }
        let be = self.big_endian;
        let iface = self.iface(rd_u32(body, 0, be))?;
        let ticks = u64::from(rd_u32(body, 4, be)) << 32 | u64::from(rd_u32(body, 8, be));
        let caplen = rd_u32(body, 12, be);
        if caplen > MAX_PACKET {
            return Err(CaptureError::Oversize {
                claimed: u64::from(caplen),
                cap: MAX_PACKET,
            });
        }
        let end = 20 + caplen as usize;
        if end > body.len() {
            return Err(CaptureError::Malformed("EPB capture length overruns block"));
        }
        Ok(PacketRecord {
            link_type: iface.link_type,
            ts_nanos: iface.tsresol.to_nanos(ticks),
            orig_len: rd_u32(body, 16, be),
            data: &body[20..end],
        })
    }

    fn parse_spb<'a>(&self, body: &'a [u8]) -> Result<PacketRecord<'a>, CaptureError> {
        if body.len() < 4 {
            return Err(CaptureError::Malformed("SPB too short"));
        }
        // SPBs implicitly use interface 0 and carry no timestamp. The
        // data length is not stored: it is min(orig_len, snaplen), and
        // the block body may carry up to 3 extra pad bytes that must
        // not be delivered as packet data.
        let iface = self.iface(0)?;
        let orig_len = rd_u32(body, 0, self.big_endian);
        let snaplen = if iface.snaplen == 0 {
            usize::MAX // 0 = unlimited, per the spec
        } else {
            iface.snaplen as usize
        };
        let caplen = (body.len() - 4).min(orig_len as usize).min(snaplen);
        Ok(PacketRecord {
            link_type: iface.link_type,
            ts_nanos: 0,
            orig_len,
            data: &body[4..4 + caplen],
        })
    }
}

/// Zero-copy iterator over a complete in-memory pcapng file.
#[derive(Debug)]
pub struct PcapngReader<'a> {
    state: SectionState,
    data: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> PcapngReader<'a> {
    /// Wraps a complete pcapng file image. The first block is validated
    /// to be an SHB.
    pub fn new(data: &'a [u8]) -> Result<Self, CaptureError> {
        if data.len() >= 4 && u32::from_le_bytes([data[0], data[1], data[2], data[3]]) != BLOCK_SHB
        {
            return Err(CaptureError::BadMagic(u32::from_le_bytes([
                data[0], data[1], data[2], data[3],
            ])));
        }
        Ok(PcapngReader {
            state: SectionState::default(),
            data,
            pos: 0,
            failed: false,
        })
    }
}

impl<'a> Iterator for PcapngReader<'a> {
    type Item = Result<PacketRecord<'a>, CaptureError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.failed || self.pos >= self.data.len() {
                return None;
            }
            match self.state.parse_block(&self.data[self.pos..]) {
                Ok(Some((item, consumed))) => {
                    self.pos += consumed;
                    if let BlockItem::Packet(rec) = item {
                        return Some(Ok(rec));
                    }
                }
                Ok(None) => {
                    self.failed = true;
                    return Some(Err(CaptureError::Malformed("truncated pcapng block")));
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Streaming pcapng writer: one section, one interface, nanosecond
/// timestamps (`if_tsresol = 9`), little-endian.
#[derive(Debug)]
pub struct PcapngWriter<W: Write> {
    w: W,
}

impl<W: Write> PcapngWriter<W> {
    /// Writes the SHB + IDB preamble for a single-interface capture.
    pub fn new(mut w: W, link_type: u32) -> io::Result<Self> {
        // SHB: type, len, magic, version 1.0, section length -1, len.
        w.write_all(&BLOCK_SHB.to_le_bytes())?;
        w.write_all(&28u32.to_le_bytes())?;
        w.write_all(&BYTE_ORDER_MAGIC.to_le_bytes())?;
        w.write_all(&1u16.to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        w.write_all(&(-1i64).to_le_bytes())?;
        w.write_all(&28u32.to_le_bytes())?;
        // IDB: linktype, reserved, snaplen, if_tsresol=9 option, end.
        w.write_all(&BLOCK_IDB.to_le_bytes())?;
        w.write_all(&32u32.to_le_bytes())?;
        w.write_all(&(link_type as u16).to_le_bytes())?;
        w.write_all(&0u16.to_le_bytes())?;
        w.write_all(&MAX_PACKET.to_le_bytes())?;
        w.write_all(&OPT_IF_TSRESOL.to_le_bytes())?;
        w.write_all(&1u16.to_le_bytes())?;
        w.write_all(&[9, 0, 0, 0])?; // value + pad
        w.write_all(&0u32.to_le_bytes())?; // opt_endofopt
        w.write_all(&32u32.to_le_bytes())?;
        Ok(PcapngWriter { w })
    }

    /// Appends one Enhanced Packet Block on interface 0.
    pub fn write_packet(&mut self, ts_nanos: u64, data: &[u8]) -> io::Result<()> {
        if data.len() as u64 > u64::from(MAX_PACKET) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "packet exceeds MAX_PACKET",
            ));
        }
        let padded = pad4(data.len());
        let total = (8 + 20 + padded + 4) as u32;
        self.w.write_all(&BLOCK_EPB.to_le_bytes())?;
        self.w.write_all(&total.to_le_bytes())?;
        self.w.write_all(&0u32.to_le_bytes())?; // interface 0
        self.w.write_all(&((ts_nanos >> 32) as u32).to_le_bytes())?;
        self.w.write_all(&(ts_nanos as u32).to_le_bytes())?;
        self.w.write_all(&(data.len() as u32).to_le_bytes())?;
        self.w.write_all(&(data.len() as u32).to_le_bytes())?;
        self.w.write_all(data)?;
        self.w.write_all(&[0u8; 3][..padded - data.len()])?;
        self.w.write_all(&total.to_le_bytes())
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_nanosecond_timestamps() {
        let mut w = PcapngWriter::new(Vec::new(), crate::LINKTYPE_RADIOTAP).unwrap();
        w.write_packet(1_700_000_000_123_456_789, &[7; 13]).unwrap();
        w.write_packet(u64::from(u32::MAX) + 5, &[]).unwrap();
        let bytes = w.finish().unwrap();
        let recs: Vec<_> = PcapngReader::new(&bytes)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts_nanos, 1_700_000_000_123_456_789);
        assert_eq!(recs[0].data, &[7; 13]);
        assert_eq!(recs[0].link_type, crate::LINKTYPE_RADIOTAP);
        assert_eq!(recs[1].ts_nanos, u64::from(u32::MAX) + 5);
    }

    #[test]
    fn lying_block_length_is_an_error() {
        let mut w = PcapngWriter::new(Vec::new(), 127).unwrap();
        w.write_packet(0, &[1; 8]).unwrap();
        let mut bytes = w.finish().unwrap();
        // Corrupt the EPB's leading length (not a multiple of 4).
        bytes[60 + 4] ^= 0x01;
        assert!(PcapngReader::new(&bytes).unwrap().any(|r| r.is_err()));
    }

    #[test]
    fn trailer_mismatch_is_an_error() {
        let mut w = PcapngWriter::new(Vec::new(), 127).unwrap();
        w.write_packet(0, &[1; 8]).unwrap();
        let mut bytes = w.finish().unwrap();
        let n = bytes.len();
        bytes[n - 4] ^= 0xFF; // trailing total_length of the EPB
        assert!(PcapngReader::new(&bytes).unwrap().any(|r| r.is_err()));
    }

    #[test]
    fn large_skipped_blocks_are_tolerated() {
        // A 1 MiB vendor/secrets-style block between the IDB and the
        // packets must be skipped, not rejected as oversized.
        let mut w = PcapngWriter::new(Vec::new(), 127).unwrap();
        w.write_packet(7, &[9; 5]).unwrap();
        let image = w.finish().unwrap();
        let (preamble, epb) = image.split_at(28 + 32);
        let mut with_big = preamble.to_vec();
        let payload_len = 1024 * 1024;
        let total = (8 + payload_len + 4) as u32;
        with_big.extend_from_slice(&0x0000_0BADu32.to_le_bytes()); // unknown type
        with_big.extend_from_slice(&total.to_le_bytes());
        with_big.extend_from_slice(&vec![0x55u8; payload_len]);
        with_big.extend_from_slice(&total.to_le_bytes());
        with_big.extend_from_slice(epb);

        let recs: Vec<_> = PcapngReader::new(&with_big)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data, &[9; 5]);
    }

    #[test]
    fn spb_is_clipped_to_the_interface_snaplen() {
        // Hand-built section (our writer never emits SPBs): IDB with
        // snaplen 6, then an SPB whose 1000-byte packet was clipped to
        // 6 data bytes + 2 pad bytes. The pad must not be delivered.
        let mut image = Vec::new();
        image.extend_from_slice(&BLOCK_SHB.to_le_bytes());
        image.extend_from_slice(&28u32.to_le_bytes());
        image.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
        image.extend_from_slice(&1u16.to_le_bytes());
        image.extend_from_slice(&0u16.to_le_bytes());
        image.extend_from_slice(&(-1i64).to_le_bytes());
        image.extend_from_slice(&28u32.to_le_bytes());
        image.extend_from_slice(&BLOCK_IDB.to_le_bytes());
        image.extend_from_slice(&20u32.to_le_bytes());
        image.extend_from_slice(&127u16.to_le_bytes());
        image.extend_from_slice(&0u16.to_le_bytes());
        image.extend_from_slice(&6u32.to_le_bytes()); // snaplen
        image.extend_from_slice(&20u32.to_le_bytes());
        image.extend_from_slice(&BLOCK_SPB.to_le_bytes());
        image.extend_from_slice(&24u32.to_le_bytes());
        image.extend_from_slice(&1000u32.to_le_bytes()); // orig_len
        image.extend_from_slice(&[1, 2, 3, 4, 5, 6, 0xAA, 0xBB]); // data + pad
        image.extend_from_slice(&24u32.to_le_bytes());

        let recs: Vec<_> = PcapngReader::new(&image)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].data, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(recs[0].orig_len, 1000);
    }

    #[test]
    fn tsresol_pow2_converts() {
        assert_eq!(Resolution::Pow2(1).to_nanos(3), 1_500_000_000);
        assert_eq!(Resolution::Pow10(3).to_nanos(2), 2_000_000);
        assert_eq!(Resolution::Pow10(12).to_nanos(5_000), 5);
    }
}
