//! The capture-layer error type.

use std::fmt;
use std::io;

/// Largest packet record the capture layer will materialise. Far above
/// any 802.11 MPDU (11454 bytes with A-MSDU), so only lying length
/// fields ever trip it — and they trip it *before* any allocation.
pub const MAX_PACKET: u32 = 256 * 1024;

/// Largest pcapng block the streaming decoder will buffer. Blocks carry
/// one packet plus bounded options, so anything beyond this is a lying
/// block length, not data worth waiting for.
pub const MAX_BLOCK: u32 = MAX_PACKET + 4 * 1024;

/// Errors produced while decoding or tailing a capture.
#[derive(Debug)]
pub enum CaptureError {
    /// An I/O failure on the underlying file.
    Io(io::Error),
    /// The stream does not start with a known pcap/pcapng magic number.
    BadMagic(u32),
    /// Structurally invalid capture data; the message names the spot.
    Malformed(&'static str),
    /// A length field exceeds the bound the layer is willing to honour
    /// ([`MAX_PACKET`] / [`MAX_BLOCK`]); decoding stops without
    /// allocating.
    Oversize {
        /// The claimed length.
        claimed: u64,
        /// The enforced cap.
        cap: u32,
    },
    /// The capture's link type is not 802.11 (105) or radiotap (127).
    UnsupportedLinkType(u32),
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "capture I/O error: {e}"),
            CaptureError::BadMagic(m) => write!(f, "not a pcap/pcapng stream (magic {m:#010x})"),
            CaptureError::Malformed(what) => write!(f, "malformed capture: {what}"),
            CaptureError::Oversize { claimed, cap } => {
                write!(f, "length field claims {claimed} bytes (cap {cap})")
            }
            CaptureError::UnsupportedLinkType(lt) => {
                write!(f, "unsupported link type {lt} (need 105 or 127)")
            }
        }
    }
}

impl std::error::Error for CaptureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CaptureError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        CaptureError::Io(e)
    }
}
