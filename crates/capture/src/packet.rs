//! The packet record shared by both container formats, plus the
//! byte-order helpers their parsers share.

/// One captured packet, borrowed straight from the container's buffer
/// (zero-copy — `data` points into the bytes handed to the reader).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord<'a> {
    /// Link type of the interface the packet was captured on
    /// (105 = raw 802.11, 127 = radiotap).
    pub link_type: u32,
    /// Capture timestamp in nanoseconds since the epoch (best effort:
    /// converted from the container's native resolution).
    pub ts_nanos: u64,
    /// Original on-air length; ≥ `data.len()` when the snaplen clipped
    /// the capture.
    pub orig_len: u32,
    /// The captured bytes.
    pub data: &'a [u8],
}

/// Reads a `u16` at `off` in the given byte order. Caller guarantees
/// bounds.
pub(crate) fn rd_u16(d: &[u8], off: usize, big_endian: bool) -> u16 {
    let b = [d[off], d[off + 1]];
    if big_endian {
        u16::from_be_bytes(b)
    } else {
        u16::from_le_bytes(b)
    }
}

/// Reads a `u32` at `off` in the given byte order. Caller guarantees
/// bounds.
pub(crate) fn rd_u32(d: &[u8], off: usize, big_endian: bool) -> u32 {
    let b = [d[off], d[off + 1], d[off + 2], d[off + 3]];
    if big_endian {
        u32::from_be_bytes(b)
    } else {
        u32::from_le_bytes(b)
    }
}

/// `n` rounded up to the next multiple of 4 (pcapng block padding).
pub(crate) fn pad4(n: usize) -> usize {
    n.div_ceil(4) * 4
}
