//! Incremental capture decoding: bytes are pushed in whatever chunks the
//! producer yields (a growing file, a socket), whole packets come out.
//! This is what lets [`crate::FollowSource`] survive writers that stop
//! mid-record — a partial record simply stays buffered until the rest
//! arrives.

use crate::error::CaptureError;
use crate::pcap::PcapHeader;
use crate::pcapng::{BlockItem, SectionState, BLOCK_SHB};

/// One fully decoded packet, owned (copied out of the decode buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedPacket {
    /// Link type of the capture interface.
    pub link_type: u32,
    /// Capture timestamp, nanoseconds.
    pub ts_nanos: u64,
    /// Original on-air length.
    pub orig_len: u32,
    /// The captured bytes.
    pub data: Vec<u8>,
}

#[derive(Debug)]
enum Format {
    /// Not enough bytes yet to tell pcap from pcapng.
    Undetected,
    Pcap(PcapHeader),
    Pcapng(SectionState),
}

/// Push-based decoder for both container formats, auto-detected from
/// the first bytes.
#[derive(Debug)]
pub struct CaptureDecoder {
    buf: Vec<u8>,
    pos: usize,
    format: Format,
}

impl Default for CaptureDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl CaptureDecoder {
    /// An empty decoder awaiting its first bytes.
    pub fn new() -> Self {
        Self::with_bytes(Vec::new())
    }

    /// A decoder that adopts `bytes` as its initial buffer — no copy,
    /// so feeding it a whole file image costs nothing beyond the image.
    pub fn with_bytes(bytes: Vec<u8>) -> Self {
        CaptureDecoder {
            buf: bytes,
            pos: 0,
            format: Format::Undetected,
        }
    }

    /// Appends raw bytes from the producer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into packets.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Forgets everything — used when the underlying file was truncated
    /// or rotated and decoding must restart from a fresh header.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.pos = 0;
        self.format = Format::Undetected;
    }

    /// Decodes the next packet. `Ok(None)` means the buffered bytes do
    /// not yet hold a complete packet (push more and retry); errors are
    /// not recoverable — the stream is structurally broken.
    pub fn next_packet(&mut self) -> Result<Option<OwnedPacket>, CaptureError> {
        loop {
            self.compact();
            let d = &self.buf[self.pos..];
            match &mut self.format {
                Format::Undetected => {
                    if d.len() < 4 {
                        return Ok(None);
                    }
                    let le = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
                    if le == BLOCK_SHB {
                        self.format = Format::Pcapng(SectionState::default());
                    } else {
                        // PcapHeader::parse rejects unknown magics here.
                        match PcapHeader::parse(d)? {
                            Some((h, consumed)) => {
                                self.pos += consumed;
                                self.format = Format::Pcap(h);
                            }
                            None => return Ok(None),
                        }
                    }
                }
                Format::Pcap(h) => {
                    return match h.parse_record(d)? {
                        Some((rec, consumed)) => {
                            let pkt = OwnedPacket {
                                link_type: rec.link_type,
                                ts_nanos: rec.ts_nanos,
                                orig_len: rec.orig_len,
                                data: rec.data.to_vec(),
                            };
                            self.pos += consumed;
                            Ok(Some(pkt))
                        }
                        None => Ok(None),
                    };
                }
                Format::Pcapng(state) => match state.parse_block(d)? {
                    Some((item, consumed)) => {
                        let pkt = match item {
                            BlockItem::Packet(rec) => Some(OwnedPacket {
                                link_type: rec.link_type,
                                ts_nanos: rec.ts_nanos,
                                orig_len: rec.orig_len,
                                data: rec.data.to_vec(),
                            }),
                            BlockItem::Control => None,
                        };
                        self.pos += consumed;
                        match pkt {
                            Some(p) => return Ok(Some(p)),
                            None => continue, // structural block; keep going
                        }
                    }
                    None => return Ok(None),
                },
            }
        }
    }

    /// Drops consumed bytes once they dominate the buffer, keeping the
    /// decoder's footprint proportional to one in-flight record.
    fn compact(&mut self) {
        if self.pos > 64 * 1024 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use crate::pcapng::PcapngWriter;

    fn pcap_stream() -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new(), 127).unwrap();
        for i in 0..5u8 {
            w.write_packet(u64::from(i) * 1_000, &vec![i; 10 + usize::from(i)])
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn byte_at_a_time_pcap() {
        let stream = pcap_stream();
        let mut dec = CaptureDecoder::new();
        let mut got = Vec::new();
        for b in stream {
            dec.push(&[b]);
            while let Some(p) = dec.next_packet().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 5);
        assert_eq!(got[4].data, vec![4u8; 14]);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_pcapng() {
        let mut w = PcapngWriter::new(Vec::new(), 105).unwrap();
        w.write_packet(42, &[1, 2, 3]).unwrap();
        w.write_packet(43, &[4, 5]).unwrap();
        let stream = w.finish().unwrap();
        let mut dec = CaptureDecoder::new();
        let mut got = Vec::new();
        for chunk in stream.chunks(3) {
            dec.push(chunk);
            while let Some(p) = dec.next_packet().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].link_type, 105);
        assert_eq!(got[1].data, vec![4, 5]);
    }

    #[test]
    fn reset_recovers_after_rotation() {
        let mut dec = CaptureDecoder::new();
        let stream = pcap_stream();
        dec.push(&stream[..30]); // header + part of a record
        assert!(dec.next_packet().unwrap().is_none());
        dec.reset();
        dec.push(&stream);
        assert!(dec.next_packet().unwrap().is_some());
    }

    #[test]
    fn garbage_is_an_error_not_a_hang() {
        let mut dec = CaptureDecoder::new();
        dec.push(&[0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0]);
        assert!(dec.next_packet().is_err());
    }
}
