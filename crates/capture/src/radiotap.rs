//! Radiotap pseudo-header parsing (link type 127) and the minimal
//! encoder used to synthesise round-trip fixtures.
//!
//! The radiotap header is a little-endian TLV-ish preamble: an 8-byte
//! fixed part, a chain of 32-bit `it_present` words (bit 31 extends the
//! chain), then the fields for every set bit in declaration order, each
//! **naturally aligned relative to the start of the header**. Skipping
//! it correctly therefore needs the per-field size *and* alignment
//! table below — `it_len` alone locates the MPDU, but the fields we
//! surface (RSSI, channel, FCS flags) need the walk.

use crate::error::CaptureError;

/// Link type: raw 802.11 frames, no pseudo-header.
pub const LINKTYPE_IEEE802_11: u32 = 105;
/// Link type: radiotap pseudo-header followed by the 802.11 frame.
pub const LINKTYPE_RADIOTAP: u32 = 127;

/// `Flags` field bit: the MPDU includes a trailing 4-byte FCS.
const FLAG_FCS_AT_END: u8 = 0x10;
/// `Flags` field bit: the frame failed its FCS check.
const FLAG_BAD_FCS: u8 = 0x40;

/// (size, alignment) of the radiotap fields we can walk past, indexed by
/// present bit. `None` marks bits whose layout this parser does not
/// know — the walk stops there (every field we surface comes earlier).
const FIELD_LAYOUT: [Option<(usize, usize)>; 22] = [
    Some((8, 8)),  // 0 TSFT
    Some((1, 1)),  // 1 Flags
    Some((1, 1)),  // 2 Rate
    Some((4, 2)),  // 3 Channel (freq u16 + flags u16)
    Some((2, 2)),  // 4 FHSS
    Some((1, 1)),  // 5 dBm antenna signal
    Some((1, 1)),  // 6 dBm antenna noise
    Some((2, 2)),  // 7 Lock quality
    Some((2, 2)),  // 8 TX attenuation
    Some((2, 2)),  // 9 dB TX attenuation
    Some((1, 1)),  // 10 dBm TX power
    Some((1, 1)),  // 11 Antenna
    Some((1, 1)),  // 12 dB antenna signal
    Some((1, 1)),  // 13 dB antenna noise
    Some((2, 2)),  // 14 RX flags
    Some((2, 2)),  // 15 TX flags
    None,          // 16 (unassigned / vendor use)
    None,          // 17
    Some((8, 4)),  // 18 XChannel
    Some((3, 1)),  // 19 MCS
    Some((8, 4)),  // 20 A-MPDU status
    Some((12, 2)), // 21 VHT
];

/// The link-layer facts a radiotap header surfaces about one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Radiotap {
    /// Total pseudo-header length; the 802.11 MPDU starts here.
    pub header_len: usize,
    /// The `Flags` field, when present.
    pub flags: Option<u8>,
    /// Channel centre frequency in MHz, when present.
    pub channel_mhz: Option<u16>,
    /// Channel flags (band/modulation bits), when present.
    pub channel_flags: Option<u16>,
    /// Received signal strength in dBm, when present.
    pub antenna_signal_dbm: Option<i8>,
}

impl Radiotap {
    /// `true` when the captured MPDU carries a trailing 4-byte FCS that
    /// must be stripped before MAC-layer parsing.
    pub fn fcs_at_end(&self) -> bool {
        self.flags.is_some_and(|f| f & FLAG_FCS_AT_END != 0)
    }

    /// `true` when the capture hardware flagged a failed FCS check.
    pub fn fcs_bad(&self) -> bool {
        self.flags.is_some_and(|f| f & FLAG_BAD_FCS != 0)
    }

    /// Parses the radiotap header at the start of `d`.
    ///
    /// # Errors
    ///
    /// [`CaptureError::Malformed`] on a bad version, an `it_len` that
    /// does not fit the packet, or a present chain / field walk that
    /// overruns `it_len`.
    pub fn parse(d: &[u8]) -> Result<Radiotap, CaptureError> {
        if d.len() < 8 {
            return Err(CaptureError::Malformed(
                "radiotap header shorter than 8 bytes",
            ));
        }
        if d[0] != 0 {
            return Err(CaptureError::Malformed("unknown radiotap version"));
        }
        let it_len = usize::from(u16::from_le_bytes([d[2], d[3]]));
        if it_len < 8 || it_len > d.len() {
            return Err(CaptureError::Malformed("radiotap it_len out of range"));
        }
        // Present-word chain: bit 31 of each word announces another.
        // Only the first word's standard fields are surfaced (extension
        // words belong to vendor/extended namespaces), so the rest of
        // the chain is walked just to find where field data starts.
        let mut present = 0u32;
        let mut word_count = 0usize;
        let mut off = 4;
        loop {
            if off + 4 > it_len {
                return Err(CaptureError::Malformed(
                    "radiotap present chain overruns it_len",
                ));
            }
            let w = u32::from_le_bytes([d[off], d[off + 1], d[off + 2], d[off + 3]]);
            if word_count == 0 {
                present = w;
            }
            word_count += 1;
            off += 4;
            if w & (1 << 31) == 0 {
                break;
            }
            if word_count >= 8 {
                return Err(CaptureError::Malformed("radiotap present chain too long"));
            }
        }
        let mut out = Radiotap {
            header_len: it_len,
            ..Radiotap::default()
        };
        let mut cursor = off;
        for (bit, layout) in FIELD_LAYOUT.iter().enumerate() {
            if present & (1 << bit) == 0 {
                continue;
            }
            let Some((size, align)) = layout else {
                break; // unknown layout: cannot walk further
            };
            cursor = cursor.div_ceil(*align) * *align;
            if cursor + size > it_len {
                return Err(CaptureError::Malformed("radiotap field overruns it_len"));
            }
            match bit {
                1 => out.flags = Some(d[cursor]),
                3 => {
                    out.channel_mhz = Some(u16::from_le_bytes([d[cursor], d[cursor + 1]]));
                    out.channel_flags = Some(u16::from_le_bytes([d[cursor + 2], d[cursor + 3]]));
                }
                5 => out.antenna_signal_dbm = Some(d[cursor] as i8),
                _ => {}
            }
            cursor += size;
        }
        Ok(out)
    }
}

/// Builds radiotap headers for synthetic captures (the `write_pcap`
/// export path): always little-endian, fields emitted with the same
/// alignment rules the parser enforces.
#[derive(Debug, Clone, Copy, Default)]
pub struct RadiotapBuilder {
    flags: Option<u8>,
    channel: Option<(u16, u16)>,
    antenna_signal_dbm: Option<i8>,
}

impl RadiotapBuilder {
    /// An empty header (version + length + empty present word).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `Flags` field.
    pub fn flags(mut self, flags: u8) -> Self {
        self.flags = Some(flags);
        self
    }

    /// Sets the channel field (centre frequency MHz, channel flags).
    pub fn channel(mut self, mhz: u16, ch_flags: u16) -> Self {
        self.channel = Some((mhz, ch_flags));
        self
    }

    /// Sets the dBm antenna-signal (RSSI) field.
    pub fn antenna_signal(mut self, dbm: i8) -> Self {
        self.antenna_signal_dbm = Some(dbm);
        self
    }

    /// Encodes the header bytes (to be prepended to an 802.11 MPDU).
    pub fn build(self) -> Vec<u8> {
        let mut present = 0u32;
        let mut body: Vec<u8> = Vec::new();
        let base = 8; // version/pad/len + one present word
        if let Some(f) = self.flags {
            present |= 1 << 1;
            body.push(f);
        }
        if let Some((mhz, fl)) = self.channel {
            present |= 1 << 3;
            while !(base + body.len()).is_multiple_of(2) {
                body.push(0);
            }
            body.extend_from_slice(&mhz.to_le_bytes());
            body.extend_from_slice(&fl.to_le_bytes());
        }
        if let Some(dbm) = self.antenna_signal_dbm {
            present |= 1 << 5;
            body.push(dbm as u8);
        }
        let it_len = base + body.len();
        let mut out = Vec::with_capacity(it_len);
        out.push(0); // version
        out.push(0); // pad
        out.extend_from_slice(&(it_len as u16).to_le_bytes());
        out.extend_from_slice(&present.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }
}

/// Strips the link-layer framing off one captured packet, returning the
/// 802.11 MPDU plus the radiotap facts (empty for link type 105).
///
/// A trailing FCS announced by the radiotap `Flags` field is removed so
/// downstream MAC parsing sees exactly the frame body.
pub fn dot11_payload(link_type: u32, data: &[u8]) -> Result<(&[u8], Radiotap), CaptureError> {
    match link_type {
        LINKTYPE_IEEE802_11 => Ok((data, Radiotap::default())),
        LINKTYPE_RADIOTAP => {
            let rt = Radiotap::parse(data)?;
            let mut mpdu = &data[rt.header_len..];
            if rt.fcs_at_end() && mpdu.len() >= 4 {
                mpdu = &mpdu[..mpdu.len() - 4];
            }
            Ok((mpdu, rt))
        }
        other => Err(CaptureError::UnsupportedLinkType(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_parses_back() {
        let hdr = RadiotapBuilder::new()
            .flags(FLAG_FCS_AT_END)
            .channel(5180, 0x0140)
            .antenna_signal(-42)
            .build();
        let rt = Radiotap::parse(&hdr).unwrap();
        assert_eq!(rt.header_len, hdr.len());
        assert_eq!(rt.channel_mhz, Some(5180));
        assert_eq!(rt.channel_flags, Some(0x0140));
        assert_eq!(rt.antenna_signal_dbm, Some(-42));
        assert!(rt.fcs_at_end());
        assert!(!rt.fcs_bad());
    }

    #[test]
    fn alignment_is_honoured_after_odd_prefix() {
        // Flags (1 byte at offset 8) forces a pad before Channel, which
        // must land 2-aligned at offset 10.
        let hdr = RadiotapBuilder::new()
            .flags(0)
            .channel(2412, 0x00A0)
            .build();
        assert_eq!(hdr.len(), 14);
        assert_eq!(u16::from_le_bytes([hdr[10], hdr[11]]), 2412);
        let rt = Radiotap::parse(&hdr).unwrap();
        assert_eq!(rt.channel_mhz, Some(2412));
    }

    #[test]
    fn tsft_forces_8_alignment() {
        // Hand-built: present = TSFT | dBm signal. TSFT must start at
        // offset 8 (already aligned); signal follows at 16.
        let mut hdr = vec![0u8, 0, 18, 0];
        hdr.extend_from_slice(&((1u32 << 0) | (1 << 5)).to_le_bytes());
        hdr.extend_from_slice(&777u64.to_le_bytes());
        hdr.push((-55i8) as u8);
        hdr.push(0); // pad to it_len 18
        let rt = Radiotap::parse(&hdr).unwrap();
        assert_eq!(rt.antenna_signal_dbm, Some(-55));
        assert_eq!(rt.header_len, 18);
    }

    #[test]
    fn corrupt_it_len_is_an_error() {
        let mut hdr = RadiotapBuilder::new().antenna_signal(-30).build();
        hdr[2] = 200; // it_len way past the buffer
        hdr[3] = 0;
        assert!(Radiotap::parse(&hdr).is_err());
        let mut short = RadiotapBuilder::new().build();
        short[2] = 4; // it_len below the fixed part
        assert!(Radiotap::parse(&short).is_err());
    }

    #[test]
    fn fcs_is_stripped_from_mpdu() {
        let hdr = RadiotapBuilder::new().flags(FLAG_FCS_AT_END).build();
        let mut pkt = hdr.clone();
        pkt.extend_from_slice(&[0xE0, 0, 1, 2, 3, 4, 5, 6, 0xAA, 0xBB, 0xCC, 0xDD]);
        let (mpdu, rt) = dot11_payload(LINKTYPE_RADIOTAP, &pkt).unwrap();
        assert_eq!(mpdu.len(), 8);
        assert_eq!(mpdu[0], 0xE0);
        assert!(rt.fcs_at_end());
    }

    #[test]
    fn linktype_105_passes_through() {
        let raw = [0xD0u8, 0, 1, 2];
        let (mpdu, rt) = dot11_payload(LINKTYPE_IEEE802_11, &raw).unwrap();
        assert_eq!(mpdu, &raw);
        assert_eq!(rt, Radiotap::default());
        assert!(matches!(
            dot11_payload(1, &raw),
            Err(CaptureError::UnsupportedLinkType(1))
        ));
    }
}
