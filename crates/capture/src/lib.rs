//! # deepcsi-capture — capture-file ingestion for the serving engine
//!
//! DeepCSI's observer is "any Wi-Fi compliant device … in monitor mode"
//! (§III-C): the beamforming reports it fingerprints arrive as packets
//! in a capture — a pcap/pcapng file written by `tcpdump`, Wireshark or
//! a rotating sniffer daemon. This crate is that I/O boundary:
//!
//! * **Containers** — zero-copy readers *and* writers for classic pcap
//!   (all four variants: little/big endian × µs/ns timestamps —
//!   [`PcapReader`]/[`PcapWriter`]) and pcapng (SHB/IDB/EPB/SPB blocks,
//!   per-section byte order, `if_tsresol` — [`PcapngReader`]/
//!   [`PcapngWriter`]), plus an incremental [`CaptureDecoder`] that
//!   accepts bytes in arbitrary chunks.
//! * **Link layer** — a [`Radiotap`] parser for link types 105/127 that
//!   walks the variable-length preamble with correct per-field
//!   alignment and surfaces RSSI, channel and FCS flags, and a
//!   [`RadiotapBuilder`] for synthesising fixtures.
//! * **Pre-filter** — [`is_beamforming_candidate`] drops
//!   non-Action/non-VHT-beamforming frames on three bytes, so the full
//!   `deepcsi_frame::BeamformingReportFrame::parse` only runs on real
//!   candidates.
//! * **Sources** — the [`FrameSource`] trait pulls candidate frames
//!   from any backing: [`PcapFileSource`] for finite files,
//!   [`FollowSource`] for growing files with truncation/rotation
//!   recovery (`tail -f` for captures).
//!
//! Every length field is validated *before* allocation
//! ([`MAX_PACKET`]/[`MAX_BLOCK`]) and every decode path returns
//! [`CaptureError`] instead of panicking — this crate fronts arbitrary
//! on-disk bytes.
//!
//! ```
//! use deepcsi_capture::{PcapFileSource, FrameSource, SourcePoll, PcapWriter, RadiotapBuilder};
//!
//! // Write a one-packet radiotap capture: a stand-in Action No Ack
//! // MPDU carrying the VHT category + Compressed Beamforming action,
//! // so it passes the pre-filter.
//! let mut w = PcapWriter::new(Vec::new(), deepcsi_capture::LINKTYPE_RADIOTAP)?;
//! let mut pkt = RadiotapBuilder::new().antenna_signal(-40).build();
//! let mut mpdu = [0u8; 40];
//! mpdu[0] = 0xE0; // Action No Ack
//! mpdu[24] = 21;  // category: VHT
//! mpdu[25] = 0;   // action: Compressed Beamforming
//! pkt.extend_from_slice(&mpdu);
//! w.write_packet(0, &pkt)?;
//!
//! // …and pull candidate frames back out.
//! let mut source = PcapFileSource::from_bytes(w.finish()?);
//! let mut frames = 0;
//! while let SourcePoll::Frame(f) = source.poll_frame()? {
//!     println!("{} byte MPDU at {} ns", f.mpdu.len(), f.ts_nanos);
//!     frames += 1;
//! }
//! assert_eq!(frames, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod filter;
mod packet;
mod pcap;
mod pcapng;
mod radiotap;
mod source;
mod stream;

pub use error::{CaptureError, MAX_BLOCK, MAX_PACKET};
pub use filter::is_beamforming_candidate;
pub use packet::PacketRecord;
pub use pcap::{PcapHeader, PcapReader, PcapWriter, MAGIC_MICROS, MAGIC_NANOS};
pub use pcapng::{PcapngReader, PcapngWriter, BLOCK_EPB, BLOCK_IDB, BLOCK_SHB, BLOCK_SPB};
pub use radiotap::{
    dot11_payload, Radiotap, RadiotapBuilder, LINKTYPE_IEEE802_11, LINKTYPE_RADIOTAP,
};
pub use source::{
    CandidateFrame, CaptureCounters, FollowSource, FrameSource, PcapFileSource, SourcePoll,
};
pub use stream::{CaptureDecoder, OwnedPacket};
