//! Frame sources: the pull interface between a capture container and
//! the serving engine, with a finite file reader and a
//! `tail -f`-style follower that survives truncation and rotation.

use crate::error::CaptureError;
use crate::filter::is_beamforming_candidate;
use crate::radiotap::dot11_payload;
use crate::stream::{CaptureDecoder, OwnedPacket};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

/// One candidate frame delivered by a source: the raw 802.11 MPDU
/// (link-layer framing and FCS already stripped) plus link metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateFrame {
    /// The 802.11 MPDU bytes, ready for MAC-layer parsing.
    pub mpdu: Vec<u8>,
    /// Capture timestamp, nanoseconds.
    pub ts_nanos: u64,
    /// Received signal strength, when the capture recorded it.
    pub rssi_dbm: Option<i8>,
    /// Channel centre frequency in MHz, when recorded.
    pub channel_mhz: Option<u16>,
}

/// The result of polling a source for its next frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourcePoll {
    /// A beamforming candidate, ready for the engine.
    Frame(CandidateFrame),
    /// Nothing available right now; a live source may yield more later.
    Pending,
    /// The source is exhausted (finite sources only).
    End,
}

/// Capture-layer accounting, kept by every source so the serving layer
/// can reconcile `enqueued == seen − skipped − errored` end to end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureCounters {
    /// Container bytes consumed.
    pub bytes_read: u64,
    /// Packets decoded out of the container.
    pub packets_seen: u64,
    /// Packets dropped by the 802.11 pre-filter (not beamforming
    /// candidates).
    pub prefilter_skipped: u64,
    /// Packets whose link layer (radiotap) failed to decode, or frames
    /// the capture hardware flagged as FCS-bad.
    pub decode_errors: u64,
}

/// A pull-based stream of beamforming-candidate frames.
///
/// Implementations exist for finite captures ([`PcapFileSource`]), live
/// growing files ([`FollowSource`]) and in-memory replays
/// (`deepcsi_serve::ReplaySource`).
pub trait FrameSource {
    /// Delivers the next candidate frame, [`SourcePoll::Pending`] when
    /// a live source has nothing yet, or [`SourcePoll::End`].
    ///
    /// # Errors
    ///
    /// A [`CaptureError`] means the container is structurally broken
    /// (or the file unreadable); per-packet radiotap problems are
    /// counted and skipped, not raised.
    fn poll_frame(&mut self) -> Result<SourcePoll, CaptureError>;

    /// Cumulative capture-layer accounting.
    fn counters(&self) -> CaptureCounters;
}

/// Runs one decoded packet through link-layer stripping and the
/// pre-filter, updating `counters`. `None` means skipped or errored
/// (already accounted).
fn process_packet(pkt: &OwnedPacket, counters: &mut CaptureCounters) -> Option<CandidateFrame> {
    counters.packets_seen += 1;
    let (mpdu, rt) = match dot11_payload(pkt.link_type, &pkt.data) {
        Ok(x) => x,
        Err(_) => {
            counters.decode_errors += 1;
            return None;
        }
    };
    if rt.fcs_bad() {
        counters.decode_errors += 1;
        return None;
    }
    if !is_beamforming_candidate(mpdu) {
        counters.prefilter_skipped += 1;
        return None;
    }
    Some(CandidateFrame {
        mpdu: mpdu.to_vec(),
        ts_nanos: pkt.ts_nanos,
        rssi_dbm: rt.antenna_signal_dbm,
        channel_mhz: rt.channel_mhz,
    })
}

/// A finite capture file (pcap or pcapng, auto-detected).
#[derive(Debug)]
pub struct PcapFileSource {
    decoder: CaptureDecoder,
    counters: CaptureCounters,
    tail_reported: bool,
}

impl PcapFileSource {
    /// Reads the whole file up front; decoding is then pull-driven.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, CaptureError> {
        Ok(Self::from_bytes(std::fs::read(path)?))
    }

    /// Wraps an in-memory capture image (taken by value — the image
    /// becomes the decode buffer, no copy).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let bytes_read = bytes.len() as u64;
        PcapFileSource {
            decoder: CaptureDecoder::with_bytes(bytes),
            counters: CaptureCounters {
                bytes_read,
                ..CaptureCounters::default()
            },
            tail_reported: false,
        }
    }
}

impl FrameSource for PcapFileSource {
    fn poll_frame(&mut self) -> Result<SourcePoll, CaptureError> {
        loop {
            match self.decoder.next_packet()? {
                Some(pkt) => {
                    if let Some(frame) = process_packet(&pkt, &mut self.counters) {
                        return Ok(SourcePoll::Frame(frame));
                    }
                }
                None => {
                    // Finite input: leftover bytes are a truncated tail
                    // — one partial packet that was seen but failed to
                    // decode (counting both keeps the conservation law
                    // `seen == skipped + errored + delivered` intact).
                    if self.decoder.buffered() > 0 && !self.tail_reported {
                        self.tail_reported = true;
                        self.counters.packets_seen += 1;
                        self.counters.decode_errors += 1;
                    }
                    return Ok(SourcePoll::End);
                }
            }
        }
    }

    fn counters(&self) -> CaptureCounters {
        self.counters
    }
}

/// A `tail -f` source over a growing capture file — the reconnect /
/// rotation story for long-lived monitor deployments.
///
/// * **Growth** — appended bytes are decoded incrementally; a record the
///   writer has only half-flushed stays buffered until complete.
/// * **Truncation** — if the file shrinks below what was already read,
///   the follower starts over from the new beginning.
/// * **Rotation** — if the path is replaced by a new file (different
///   inode, or the file vanishes and reappears), the follower reopens
///   and decodes the fresh capture from its header.
/// * **Structural errors** — a truncate-and-regrow race the length and
///   inode checks cannot see leaves the decoder mid-stream in foreign
///   bytes; the resulting [`CaptureError`] triggers one restart from
///   the (presumed fresh) beginning. Only failing again at the same
///   file position is treated as persistent corruption and surfaced.
///   A restart re-reads the file, so frames before the damage may be
///   delivered twice — tailing trades exactly-once for liveness.
///
/// Counters are cumulative across reopens.
#[derive(Debug)]
pub struct FollowSource {
    path: PathBuf,
    file: Option<File>,
    read_offset: u64,
    #[cfg(unix)]
    inode: u64,
    decoder: CaptureDecoder,
    counters: CaptureCounters,
    /// `(inode, read_offset)` of the last structural decode failure —
    /// hitting the same spot again means the file itself is corrupt
    /// (kept across successful frames: a retry that re-delivers the
    /// frames before the damage must still recognise the damage).
    last_failure: Option<(u64, u64)>,
}

impl FollowSource {
    /// Largest number of bytes ingested per [`FrameSource::poll_frame`]
    /// call, so one poll cannot stall on an unboundedly fast writer.
    const READ_BUDGET: usize = 1 << 20;

    /// Starts following `path`. The file does not need to exist yet —
    /// polls report [`SourcePoll::Pending`] until it appears.
    pub fn open<P: AsRef<Path>>(path: P) -> Self {
        FollowSource {
            path: path.as_ref().to_path_buf(),
            file: None,
            read_offset: 0,
            #[cfg(unix)]
            inode: 0,
            decoder: CaptureDecoder::new(),
            counters: CaptureCounters::default(),
            last_failure: None,
        }
    }

    /// The current file's inode (0 when unknown or off-unix) — the
    /// stable half of the failure signature.
    fn current_inode(&self) -> u64 {
        #[cfg(unix)]
        {
            self.inode
        }
        #[cfg(not(unix))]
        {
            0
        }
    }

    /// Drops the current file handle and decoder state so the next poll
    /// starts from scratch (rotation/truncation recovery).
    fn restart(&mut self) {
        self.file = None;
        self.read_offset = 0;
        self.decoder.reset();
    }

    /// Ensures a file handle positioned at `read_offset`, detecting
    /// truncation and rotation. `false` when the file is not available.
    fn sync_file(&mut self) -> Result<bool, CaptureError> {
        let meta = match std::fs::metadata(&self.path) {
            Ok(m) => m,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // Rotated away; wait for the new file.
                self.restart();
                return Ok(false);
            }
            Err(e) => return Err(e.into()),
        };
        if meta.len() < self.read_offset {
            self.restart(); // truncated below our read point
        }
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            if self.file.is_some() && meta.ino() != self.inode {
                self.restart(); // replaced by a new file at the same path
            }
        }
        if self.file.is_none() {
            let file = File::open(&self.path)?;
            #[cfg(unix)]
            {
                use std::os::unix::fs::MetadataExt;
                self.inode = file.metadata()?.ino();
            }
            self.file = Some(file);
            self.read_offset = 0;
        }
        Ok(true)
    }

    /// Reads up to `budget` newly appended bytes into the decoder.
    /// Returns how many bytes arrived.
    fn ingest_new_bytes(&mut self, budget: usize) -> Result<usize, CaptureError> {
        if !self.sync_file()? {
            return Ok(0);
        }
        let file = self.file.as_mut().expect("sync_file opened it");
        let mut total = 0usize;
        let mut chunk = [0u8; 64 * 1024];
        while total < budget {
            let n = file.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            self.decoder.push(&chunk[..n]);
            self.read_offset += n as u64;
            self.counters.bytes_read += n as u64;
            total += n;
        }
        Ok(total)
    }
}

impl FrameSource for FollowSource {
    fn poll_frame(&mut self) -> Result<SourcePoll, CaptureError> {
        // The budget bounds the *whole* poll: a writer producing pure
        // non-candidate traffic at least as fast as we read must not be
        // able to keep one poll spinning forever. Budget exhausted ⇒
        // `Pending`, and the caller polls again.
        let mut budget = Self::READ_BUDGET;
        loop {
            // Drain already-buffered packets first.
            loop {
                match self.decoder.next_packet() {
                    Ok(Some(pkt)) => {
                        if let Some(frame) = process_packet(&pkt, &mut self.counters) {
                            return Ok(SourcePoll::Frame(frame));
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Likely a truncate-and-regrow race: restart
                        // from the top once; the same failure at the
                        // same spot is real corruption.
                        let signature = (self.current_inode(), self.read_offset);
                        if self.last_failure == Some(signature) {
                            return Err(e);
                        }
                        self.last_failure = Some(signature);
                        self.restart();
                        return Ok(SourcePoll::Pending);
                    }
                }
            }
            if budget == 0 {
                return Ok(SourcePoll::Pending);
            }
            let arrived = self.ingest_new_bytes(budget)?;
            if arrived == 0 {
                return Ok(SourcePoll::Pending);
            }
            budget -= arrived.min(budget);
        }
    }

    fn counters(&self) -> CaptureCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcap::PcapWriter;
    use crate::radiotap::{RadiotapBuilder, LINKTYPE_RADIOTAP};

    fn candidate_mpdu(tag: u8) -> Vec<u8> {
        let mut f = vec![0u8; 40];
        f[0] = 0xE0;
        f[24] = 21;
        f[25] = 0;
        f[26] = tag;
        f
    }

    fn capture_with(frames: &[Vec<u8>]) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
        for (i, mpdu) in frames.iter().enumerate() {
            let mut pkt = RadiotapBuilder::new().antenna_signal(-40).build();
            pkt.extend_from_slice(mpdu);
            w.write_packet(i as u64 * 1_000_000, &pkt).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn file_source_filters_and_counts() {
        let mut beacon = vec![0u8; 40];
        beacon[0] = 0x80;
        let image = capture_with(&[candidate_mpdu(1), beacon, candidate_mpdu(2)]);
        let mut src = PcapFileSource::from_bytes(image.clone());
        let mut frames = Vec::new();
        loop {
            match src.poll_frame().unwrap() {
                SourcePoll::Frame(f) => frames.push(f),
                SourcePoll::End => break,
                SourcePoll::Pending => unreachable!("finite source"),
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].mpdu[26], 1);
        assert_eq!(frames[0].rssi_dbm, Some(-40));
        let c = src.counters();
        assert_eq!(c.packets_seen, 3);
        assert_eq!(c.prefilter_skipped, 1);
        assert_eq!(c.decode_errors, 0);
        assert_eq!(c.bytes_read, image.len() as u64);
        // Repeated polls stay at End without re-counting.
        assert_eq!(src.poll_frame().unwrap(), SourcePoll::End);
        assert_eq!(src.counters(), c);
    }

    #[test]
    fn bad_fcs_frames_are_counted_as_errors() {
        let mut w = PcapWriter::new(Vec::new(), LINKTYPE_RADIOTAP).unwrap();
        let mut pkt = RadiotapBuilder::new().flags(0x40).build(); // bad FCS
        pkt.extend_from_slice(&candidate_mpdu(9));
        w.write_packet(0, &pkt).unwrap();
        let mut src = PcapFileSource::from_bytes(w.finish().unwrap());
        assert_eq!(src.poll_frame().unwrap(), SourcePoll::End);
        assert_eq!(src.counters().decode_errors, 1);
    }

    #[test]
    fn truncated_tail_counts_one_error() {
        let mut image = capture_with(&[candidate_mpdu(1), candidate_mpdu(2)]);
        image.truncate(image.len() - 7);
        let mut src = PcapFileSource::from_bytes(image);
        assert!(matches!(src.poll_frame().unwrap(), SourcePoll::Frame(_)));
        assert_eq!(src.poll_frame().unwrap(), SourcePoll::End);
        assert_eq!(src.counters().decode_errors, 1);
        // The partial tail packet is seen *and* errored, so the
        // conservation law still balances.
        assert_eq!(src.counters().packets_seen, 2);
    }
}
