//! DNN input assembly: Ṽ → `Nch × Nrow × Ncol` I/Q tensors (§III-C).

use deepcsi_bfi::BeamformingFeedback;
use deepcsi_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Selection of which parts of Ṽ feed the classifier.
///
/// The paper's ablations all map onto this:
/// * Fig. 12a (bandwidth) — `subcarrier_positions` restricted to a
///   sub-band.
/// * Fig. 12b (number of TX antennas) — `antennas` restricted.
/// * Fig. 15 (spatial stream) — `streams = [1]` instead of `[0]`.
///
/// Channels are the I/Q components of the selected Ṽ rows; the last TX
/// antenna's row is real by construction so it contributes only an I
/// channel (`Nch < 2M`, Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Ṽ columns (spatial streams) used, each becoming one image row.
    pub streams: Vec<usize>,
    /// Ṽ rows (TX antennas) used, each contributing I (and Q unless it is
    /// the last antenna) channels.
    pub antennas: Vec<usize>,
    /// Optional subcarrier *positions* (into the feedback's subcarrier
    /// list) to keep — the Fig. 12a sub-band selection. `None` keeps all.
    pub subcarrier_positions: Option<Vec<usize>>,
    /// Keep every `stride`-th subcarrier after selection (laptop-scale
    /// decimation; 1 = full resolution).
    pub stride: usize,
    /// Apply the phase-offset cleaning of \[36\] (Meneghello et al.) to Ṽ
    /// before tensorization: per Ṽ element series, fit and remove a
    /// constant + linear-in-k phase. This is the Fig. 16 baseline — it
    /// deletes part of the hardware fingerprint, which is the point.
    pub offset_cleaning: bool,
}

impl Default for InputSpec {
    fn default() -> Self {
        InputSpec {
            streams: vec![0],
            antennas: vec![0, 1, 2],
            subcarrier_positions: None,
            stride: 1,
            offset_cleaning: false,
        }
    }
}

/// Removes a fitted constant + linear-in-k phase from every Ṽ element
/// series (the CSI "sanitization" of \[36\], applied to the beamforming
/// feedback domain).
///
/// CFO/PPO contribute the intercept and SFO/PDD the slope of the phase
/// across subcarriers (Eq. (9)); so do the *device-specific* per-chain
/// phase intercepts and group delays — cleaning removes both nuisance and
/// fingerprint, which is why DeepCSI deliberately skips it.
pub fn clean_phase_offsets(series: &mut deepcsi_bfi::VSeries) {
    let n = series.len();
    if n < 2 {
        return;
    }
    let ks: Vec<f64> = series.subcarriers.iter().map(|&k| k as f64).collect();
    let (m, n_ss) = series.v[0].shape();
    for a in 0..m {
        for s in 0..n_ss {
            // Unwrapped phase across subcarriers.
            let mut phases = Vec::with_capacity(n);
            let mut prev = 0.0f64;
            let mut offset = 0.0f64;
            for (j, vk) in series.v.iter().enumerate() {
                let raw = vk[(a, s)].arg();
                if j > 0 {
                    let mut d = raw + offset - prev;
                    while d > std::f64::consts::PI {
                        offset -= std::f64::consts::TAU;
                        d -= std::f64::consts::TAU;
                    }
                    while d < -std::f64::consts::PI {
                        offset += std::f64::consts::TAU;
                        d += std::f64::consts::TAU;
                    }
                }
                let unwrapped = raw + offset;
                phases.push(unwrapped);
                prev = unwrapped;
            }
            // Least-squares line fit θ ≈ slope·k + intercept.
            let kn = n as f64;
            let mean_k = ks.iter().sum::<f64>() / kn;
            let mean_p = phases.iter().sum::<f64>() / kn;
            let mut num = 0.0;
            let mut den = 0.0;
            for (k, p) in ks.iter().zip(phases.iter()) {
                num += (k - mean_k) * (p - mean_p);
                den += (k - mean_k) * (k - mean_k);
            }
            let slope = if den > 0.0 { num / den } else { 0.0 };
            let intercept = mean_p - slope * mean_k;
            for (j, vk) in series.v.iter_mut().enumerate() {
                let corr = deepcsi_linalg::C64::cis(-(slope * ks[j] + intercept));
                let v = vk[(a, s)];
                vk[(a, s)] = v * corr;
            }
        }
    }
}

impl InputSpec {
    /// The paper's default view: stream 0, all 3 TX antennas, all
    /// subcarriers.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A decimated view for fast laptop-scale training.
    pub fn fast() -> Self {
        InputSpec {
            stride: 2,
            ..Self::default()
        }
    }

    /// Number of I/Q channels this spec produces for an AP with `m_tx`
    /// antennas.
    pub fn num_channels(&self, m_tx: usize) -> usize {
        self.antennas
            .iter()
            .map(|&a| if a + 1 == m_tx { 1 } else { 2 })
            .sum()
    }

    /// `true` when [`InputSpec::tensor`] can convert this feedback
    /// without panicking: every selected stream/antenna/subcarrier exists
    /// and at least one subcarrier survives selection. Online consumers
    /// (the serving engine) gate arbitrary over-the-air feedback on this
    /// before tensorizing.
    pub fn compatible(&self, fb: &BeamformingFeedback) -> bool {
        let streams_ok = self.streams.iter().all(|&s| s < fb.mimo.n_ss());
        let antennas_ok = self.antennas.iter().all(|&a| a < fb.mimo.m_tx());
        let subcarriers_ok = match &self.subcarrier_positions {
            Some(p) => !p.is_empty() && p.iter().all(|&i| i < fb.len()),
            None => !fb.is_empty(),
        };
        streams_ok && antennas_ok && subcarriers_ok
    }

    /// Converts one captured feedback into a classifier input tensor of
    /// shape `(Nch, Nrow, Ncol)`.
    ///
    /// # Panics
    ///
    /// Panics if a selected stream/antenna is out of range for the
    /// feedback's MIMO dimensions, or no subcarriers survive selection
    /// (see [`InputSpec::compatible`]).
    pub fn tensor(&self, fb: &BeamformingFeedback) -> Tensor {
        let mut series = fb.reconstruct();
        if self.offset_cleaning {
            clean_phase_offsets(&mut series);
        }
        self.tensor_from_series(&series, fb.mimo.m_tx(), fb.mimo.n_ss())
    }

    /// Converts an already-reconstructed Ṽ series into an input tensor —
    /// the hook the offset-cleaning baseline uses to pre-process Ṽ before
    /// tensorization.
    ///
    /// # Panics
    ///
    /// Same conditions as [`InputSpec::tensor`].
    pub fn tensor_from_series(
        &self,
        series: &deepcsi_bfi::VSeries,
        m: usize,
        n_ss: usize,
    ) -> Tensor {
        for &s in &self.streams {
            assert!(s < n_ss, "stream {s} out of range (n_ss={n_ss})");
        }
        for &a in &self.antennas {
            assert!(a < m, "antenna {a} out of range (m={m})");
        }
        let all_positions: Vec<usize> = match &self.subcarrier_positions {
            Some(p) => p.clone(),
            None => (0..series.len()).collect(),
        };
        let positions: Vec<usize> = all_positions
            .iter()
            .copied()
            .step_by(self.stride.max(1))
            .collect();
        assert!(!positions.is_empty(), "no subcarriers selected");

        let n_ch = self.num_channels(m);
        let n_row = self.streams.len();
        let n_col = positions.len();
        let mut t = Tensor::zeros(vec![n_ch, n_row, n_col]);
        let mut ch = 0usize;
        for &a in &self.antennas {
            let has_q = a + 1 != m;
            for (row, &s) in self.streams.iter().enumerate() {
                for (col, &p) in positions.iter().enumerate() {
                    let v = series.v[p][(a, s)];
                    *t.at3_mut(ch, row, col) = v.re as f32;
                    if has_q {
                        *t.at3_mut(ch + 1, row, col) = v.im as f32;
                    }
                }
            }
            ch += if has_q { 2 } else { 1 };
        }
        t
    }
}

/// A labelled sample set ready for `deepcsi-nn`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabeledSamples {
    /// Input tensors.
    pub x: Vec<Tensor>,
    /// Class labels (module ids).
    pub y: Vec<usize>,
}

impl LabeledSamples {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Appends another set.
    pub fn extend(&mut self, other: LabeledSamples) {
        self.x.extend(other.x);
        self.y.extend(other.y);
    }

    /// Appends one sample.
    pub fn push(&mut self, x: Tensor, y: usize) {
        self.x.push(x);
        self.y.push(y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepcsi_linalg::{CMatrix, C64};
    use deepcsi_phy::{Codebook, MimoConfig};

    fn sample_feedback(n_sc: usize) -> BeamformingFeedback {
        let mimo = MimoConfig::paper_default();
        let cfr: Vec<CMatrix> = (0..n_sc)
            .map(|j| {
                CMatrix::from_fn(3, 2, |r, c| {
                    C64::new(
                        ((j + r * 2 + c) as f64 * 0.7).sin(),
                        ((j * 3 + r + c * 5) as f64 * 0.3).cos(),
                    )
                })
            })
            .collect();
        let sc: Vec<i32> = (0..n_sc as i32).collect();
        BeamformingFeedback::from_cfr(&cfr, &sc, mimo, Codebook::MU_HIGH)
    }

    #[test]
    fn default_spec_shape() {
        let fb = sample_feedback(20);
        let t = InputSpec::default().tensor(&fb);
        // 3 antennas → I,Q,I,Q,I = 5 channels; 1 stream; 20 tones.
        assert_eq!(t.shape(), &[5, 1, 20]);
        assert!(t.is_finite());
    }

    #[test]
    fn last_antenna_row_is_real_only() {
        let fb = sample_feedback(8);
        let spec = InputSpec {
            antennas: vec![2],
            ..InputSpec::default()
        };
        let t = spec.tensor(&fb);
        assert_eq!(t.shape(), &[1, 1, 8]);
        // All values are the real part of the (canonical, non-negative)
        // last Ṽ row.
        assert!(t.as_slice().iter().all(|&v| v >= -1e-6));
    }

    #[test]
    fn stride_decimates_subcarriers() {
        let fb = sample_feedback(21);
        let spec = InputSpec {
            stride: 2,
            ..InputSpec::default()
        };
        let t = spec.tensor(&fb);
        assert_eq!(t.shape()[2], 11);
    }

    #[test]
    fn subband_selection_limits_columns() {
        let fb = sample_feedback(20);
        let spec = InputSpec {
            subcarrier_positions: Some((5..15).collect()),
            ..InputSpec::default()
        };
        let t = spec.tensor(&fb);
        assert_eq!(t.shape()[2], 10);
    }

    #[test]
    fn two_streams_make_two_rows() {
        let fb = sample_feedback(6);
        let spec = InputSpec {
            streams: vec![0, 1],
            ..InputSpec::default()
        };
        let t = spec.tensor(&fb);
        assert_eq!(t.shape(), &[5, 2, 6]);
    }

    #[test]
    fn channel_count_formula() {
        let spec = InputSpec::default();
        assert_eq!(spec.num_channels(3), 5);
        let spec2 = InputSpec {
            antennas: vec![0, 1],
            ..InputSpec::default()
        };
        assert_eq!(spec2.num_channels(3), 4);
        let spec1 = InputSpec {
            antennas: vec![0],
            ..InputSpec::default()
        };
        assert_eq!(spec1.num_channels(3), 2);
    }

    #[test]
    fn values_are_bounded_by_unitarity() {
        // Ṽ has orthonormal columns → entries in [−1, 1].
        let fb = sample_feedback(16);
        let t = InputSpec::default().tensor(&fb);
        assert!(t.as_slice().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    #[should_panic(expected = "stream 1 out of range")]
    fn stream_out_of_range_panics() {
        let mimo = MimoConfig::new(3, 1, 1).unwrap();
        let cfr = vec![CMatrix::from_fn(3, 1, |r, _| C64::new(r as f64 + 0.5, 0.2)); 4];
        let fb = BeamformingFeedback::from_cfr(&cfr, &[0, 1, 2, 3], mimo, Codebook::MU_HIGH);
        let spec = InputSpec {
            streams: vec![1],
            ..InputSpec::default()
        };
        let _ = spec.tensor(&fb);
    }

    #[test]
    fn labeled_samples_extend() {
        let mut a = LabeledSamples::default();
        a.push(Tensor::zeros(vec![1]), 0);
        let mut b = LabeledSamples::default();
        b.push(Tensor::zeros(vec![1]), 1);
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.y, vec![0, 1]);
    }
}
