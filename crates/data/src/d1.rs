//! The static dataset D1 (§IV-A).

use crate::generator::{generate_traces, GenConfig, TraceSpec};
use crate::trace::{Dataset, TraceKind};
use deepcsi_impair::DeviceId;

/// Generates dataset **D1**: for every module, the beamformees are placed
/// at position pairs 1..=9 (beamformee 1 stepping left, beamformee 2
/// stepping right, Fig. 6) with the AP fixed at A. Both beamformees run
/// N = N_SS = 2.
///
/// Yields `num_modules × 9 positions × 2 beamformees` traces (180 at the
/// paper's scale).
pub fn generate_d1(cfg: &GenConfig) -> Dataset {
    let mut specs = Vec::new();
    for module in 0..cfg.num_modules {
        for position in 1..=9usize {
            for beamformee in [1u8, 2u8] {
                specs.push(TraceSpec {
                    module: DeviceId(module),
                    beamformee,
                    n_rx: 2,
                    rx_position: position,
                    kind: TraceKind::D1Static { position },
                });
            }
        }
    }
    Dataset {
        traces: generate_traces(cfg, &specs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_structure_matches_paper() {
        let cfg = GenConfig {
            num_modules: 2,
            snapshots_per_trace: 2,
            ..GenConfig::default()
        };
        let ds = generate_d1(&cfg);
        // 2 modules × 9 positions × 2 beamformees.
        assert_eq!(ds.traces.len(), 36);
        assert_eq!(ds.modules().len(), 2);
        // Every (module, position, beamformee) combination appears once.
        for module in 0..2u32 {
            for pos in 1..=9usize {
                for bf in [1u8, 2u8] {
                    let count = ds
                        .filter(|t| {
                            t.module == DeviceId(module)
                                && t.beamformee == bf
                                && t.kind == TraceKind::D1Static { position: pos }
                        })
                        .count();
                    assert_eq!(count, 1, "module {module} pos {pos} bf {bf}");
                }
            }
        }
    }

    #[test]
    fn d1_snapshot_count() {
        let cfg = GenConfig {
            num_modules: 1,
            snapshots_per_trace: 3,
            ..GenConfig::default()
        };
        let ds = generate_d1(&cfg);
        assert_eq!(ds.num_snapshots(), 9 * 2 * 3);
    }
}
