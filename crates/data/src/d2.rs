//! The mobility dataset D2 (§IV-A).

use crate::generator::{generate_traces, GenConfig, TraceSpec};
use crate::trace::{Dataset, TraceKind};
use deepcsi_impair::DeviceId;

/// Generates dataset **D2**: per module, 4 traces with the AP fixed at A
/// (groups "fix1" and "fix2", two traces each) and 7 traces with the AP
/// manually carried along A-B-C-D-B-A (group "mob1" with four traces,
/// "mob2" with three), per Table II. The beamformees stay at position 3;
/// beamformee 1 runs N = N_SS = 1 and beamformee 2 runs N = N_SS = 2.
///
/// Yields `num_modules × 11 traces × 2 beamformees` traces (220 at the
/// paper's scale).
pub fn generate_d2(cfg: &GenConfig) -> Dataset {
    let mut specs = Vec::new();
    for module in 0..cfg.num_modules {
        let mut kinds: Vec<TraceKind> = Vec::new();
        for group in [1u8, 2u8] {
            for idx in 0..2u8 {
                kinds.push(TraceKind::D2Fixed { group, idx });
            }
        }
        for idx in 0..4u8 {
            kinds.push(TraceKind::D2Mobility { group: 1, idx });
        }
        for idx in 0..3u8 {
            kinds.push(TraceKind::D2Mobility { group: 2, idx });
        }
        for kind in kinds {
            for (beamformee, n_rx) in [(1u8, 1usize), (2u8, 2usize)] {
                specs.push(TraceSpec {
                    module: DeviceId(module),
                    beamformee,
                    n_rx,
                    rx_position: 3,
                    kind,
                });
            }
        }
    }
    Dataset {
        traces: generate_traces(cfg, &specs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2_structure_matches_table_ii() {
        let cfg = GenConfig {
            num_modules: 1,
            snapshots_per_trace: 2,
            ..GenConfig::default()
        };
        let ds = generate_d2(&cfg);
        // 11 traces × 2 beamformees.
        assert_eq!(ds.traces.len(), 22);
        let count =
            |f: &dyn Fn(&TraceKind) -> bool| ds.filter(|t| t.beamformee == 1 && f(&t.kind)).count();
        assert_eq!(
            count(&|k| matches!(k, TraceKind::D2Fixed { group: 1, .. })),
            2
        );
        assert_eq!(
            count(&|k| matches!(k, TraceKind::D2Fixed { group: 2, .. })),
            2
        );
        assert_eq!(
            count(&|k| matches!(k, TraceKind::D2Mobility { group: 1, .. })),
            4
        );
        assert_eq!(
            count(&|k| matches!(k, TraceKind::D2Mobility { group: 2, .. })),
            3
        );
    }

    #[test]
    fn beamformee_stream_counts_follow_the_paper() {
        let cfg = GenConfig {
            num_modules: 1,
            snapshots_per_trace: 1,
            ..GenConfig::default()
        };
        let ds = generate_d2(&cfg);
        for t in &ds.traces {
            let want = if t.beamformee == 1 { 1 } else { 2 };
            assert_eq!(t.snapshots[0].mimo.n_ss(), want);
        }
    }
}
