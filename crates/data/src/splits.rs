//! The paper's train/test set definitions (Tables I and II).

use crate::input::{InputSpec, LabeledSamples};
use crate::trace::{Dataset, Trace, TraceKind};
use serde::{Deserialize, Serialize};

/// Fraction of each shared-position trace used for training (the paper:
/// "the first 80% of the collected data is used for training and
/// validating the model, while the remaining 20% serves as test data").
const TRAIN_FRACTION: f64 = 0.8;
/// Fraction of the training data held out for validation ("the last 20%
/// of training data is used for model validation").
const VAL_FRACTION: f64 = 0.2;

/// The D1 training/testing position sets of Table I.
///
/// The table encodes positions graphically; the reconstruction below
/// matches the text: S1 trains on all nine positions, S2 trains on a
/// *balanced* (interleaved) subset of five so the classifier can
/// interpolate between adjacent trained positions, S3 trains on a
/// contiguous block of five — "the set with the largest difference
/// between training and testing positions".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum D1Set {
    /// Train and test on all positions (time-split 80/20).
    S1,
    /// Train on interleaved positions {1,3,5,7,9}, test on {2,4,6,8}.
    S2,
    /// Train on block {1..5}, test on {6..9}.
    S3,
}

impl D1Set {
    /// Beamformee positions used at training time.
    pub fn train_positions(self) -> Vec<usize> {
        match self {
            D1Set::S1 => (1..=9).collect(),
            D1Set::S2 => vec![1, 3, 5, 7, 9],
            D1Set::S3 => vec![1, 2, 3, 4, 5],
        }
    }

    /// Beamformee positions used at testing time.
    pub fn test_positions(self) -> Vec<usize> {
        match self {
            D1Set::S1 => (1..=9).collect(),
            D1Set::S2 => vec![2, 4, 6, 8],
            D1Set::S3 => vec![6, 7, 8, 9],
        }
    }
}

/// The D2 set definitions of Table II (plus the Fig. 17b sub-path
/// variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum D2Set {
    /// Train on mob1 (four mobility traces), test on mob2 (three).
    S4,
    /// Fig. 17b: train on the A-B-C-B half of mob1, test on the B-D-B
    /// segment of mob2.
    S4SubPath,
    /// Train on the static traces (fix1 + fix2), test on all mobility
    /// traces.
    S5,
    /// Train on all mobility traces, test on the static traces.
    S6,
}

/// A materialised train/validation/test split.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Split {
    /// Training samples.
    pub train: LabeledSamples,
    /// Validation samples (the tail of the training data).
    pub val: LabeledSamples,
    /// Test samples.
    pub test: LabeledSamples,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    TrainVal,
    Test,
}

/// One tensor-conversion job: a snapshot range of a trace going to one
/// destination.
struct Job<'a> {
    trace: &'a Trace,
    start: usize,
    end: usize,
    dest: Dest,
}

/// Runs the jobs in parallel (tensor reconstruction is the expensive
/// step) and assembles the split, carving validation data from the tail
/// of each training range.
fn assemble(jobs: Vec<Job<'_>>, spec: &InputSpec) -> Split {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16);
    let chunk = jobs.len().div_ceil(threads).max(1);
    let parts: Vec<Vec<(Dest, usize, LabeledSamples, usize)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move |_| {
                    shard
                        .iter()
                        .map(|job| {
                            let mut samples = LabeledSamples::default();
                            for i in job.start..job.end {
                                samples.push(
                                    spec.tensor(&job.trace.snapshots[i]),
                                    job.trace.module.0 as usize,
                                );
                            }
                            let n = samples.len();
                            (job.dest, job.start, samples, n)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tensorize worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    let mut split = Split::default();
    for (dest, _, samples, n) in parts.into_iter().flatten() {
        match dest {
            Dest::Test => split.test.extend(samples),
            Dest::TrainVal => {
                // Last VAL_FRACTION of each training range → validation.
                let n_train = ((n as f64) * (1.0 - VAL_FRACTION)).round() as usize;
                for (i, (x, y)) in samples.x.into_iter().zip(samples.y).enumerate() {
                    if i < n_train {
                        split.train.push(x, y);
                    } else {
                        split.val.push(x, y);
                    }
                }
            }
        }
    }
    split
}

/// Builds a D1 split with explicit position sets (used by the Fig. 10
/// training-position sweep).
pub fn d1_split_positions(
    ds: &Dataset,
    train_positions: &[usize],
    test_positions: &[usize],
    beamformees: &[u8],
    spec: &InputSpec,
) -> Split {
    let mut jobs = Vec::new();
    for trace in &ds.traces {
        let position = match trace.kind {
            TraceKind::D1Static { position } => position,
            _ => continue,
        };
        if !beamformees.contains(&trace.beamformee) {
            continue;
        }
        let n = trace.len();
        let in_train = train_positions.contains(&position);
        let in_test = test_positions.contains(&position);
        let cut = ((n as f64) * TRAIN_FRACTION).round() as usize;
        match (in_train, in_test) {
            (true, true) => {
                jobs.push(Job {
                    trace,
                    start: 0,
                    end: cut,
                    dest: Dest::TrainVal,
                });
                jobs.push(Job {
                    trace,
                    start: cut,
                    end: n,
                    dest: Dest::Test,
                });
            }
            (true, false) => jobs.push(Job {
                trace,
                start: 0,
                end: n,
                dest: Dest::TrainVal,
            }),
            (false, true) => jobs.push(Job {
                trace,
                start: 0,
                end: n,
                dest: Dest::Test,
            }),
            (false, false) => {}
        }
    }
    assemble(jobs, spec)
}

/// Builds the Table I split `set` for the given beamformee selection
/// (`&[1]`, `&[2]`, or `&[1, 2]` for the Fig. 9 "mixed" training).
pub fn d1_split(ds: &Dataset, set: D1Set, beamformees: &[u8], spec: &InputSpec) -> Split {
    d1_split_positions(
        ds,
        &set.train_positions(),
        &set.test_positions(),
        beamformees,
        spec,
    )
}

/// The Fig. 11 cross-beamformee experiment: train on one beamformee's
/// feedback (all positions, first 80%), test on the *other* beamformee's
/// feedback (last 20%).
pub fn d1_cross_beamformee(ds: &Dataset, train_bf: u8, test_bf: u8, spec: &InputSpec) -> Split {
    let mut jobs = Vec::new();
    for trace in &ds.traces {
        if !matches!(trace.kind, TraceKind::D1Static { .. }) {
            continue;
        }
        let n = trace.len();
        let cut = ((n as f64) * TRAIN_FRACTION).round() as usize;
        if trace.beamformee == train_bf {
            jobs.push(Job {
                trace,
                start: 0,
                end: cut,
                dest: Dest::TrainVal,
            });
        }
        if trace.beamformee == test_bf {
            jobs.push(Job {
                trace,
                start: cut,
                end: n,
                dest: Dest::Test,
            });
        }
    }
    assemble(jobs, spec)
}

/// Fraction of the A-B-C-D-B-A path length covered by the A-B-C-B
/// sub-path (0.8 + 0.8 + 0.8 of 4.8 m).
const SUBPATH_TRAIN_END: f64 = 0.5;
/// End fraction of the B-D-B segment (up to 4.0 of 4.8 m).
const SUBPATH_TEST_END: f64 = 4.0 / 4.8;

/// Builds the Table II split `set` for the given beamformee selection.
pub fn d2_split(ds: &Dataset, set: D2Set, beamformees: &[u8], spec: &InputSpec) -> Split {
    let mut jobs = Vec::new();
    for trace in &ds.traces {
        if !beamformees.contains(&trace.beamformee) {
            continue;
        }
        let n = trace.len();
        if n == 0 {
            continue;
        }
        let (is_fixed, mob_group) = match trace.kind {
            TraceKind::D2Fixed { .. } => (true, 0),
            TraceKind::D2Mobility { group, .. } => (false, group),
            TraceKind::D1Static { .. } => continue,
        };
        match set {
            D2Set::S4 => {
                if mob_group == 1 {
                    jobs.push(Job {
                        trace,
                        start: 0,
                        end: n,
                        dest: Dest::TrainVal,
                    });
                } else if mob_group == 2 {
                    jobs.push(Job {
                        trace,
                        start: 0,
                        end: n,
                        dest: Dest::Test,
                    });
                }
            }
            D2Set::S4SubPath => {
                // Snapshots are uniform over the traversal, so path
                // progress ≈ snapshot index fraction.
                if mob_group == 1 {
                    let end = ((n as f64) * SUBPATH_TRAIN_END).round() as usize;
                    jobs.push(Job {
                        trace,
                        start: 0,
                        end,
                        dest: Dest::TrainVal,
                    });
                } else if mob_group == 2 {
                    let start = ((n as f64) * SUBPATH_TRAIN_END).round() as usize;
                    let end = ((n as f64) * SUBPATH_TEST_END).round() as usize;
                    jobs.push(Job {
                        trace,
                        start,
                        end,
                        dest: Dest::Test,
                    });
                }
            }
            D2Set::S5 => {
                if is_fixed {
                    jobs.push(Job {
                        trace,
                        start: 0,
                        end: n,
                        dest: Dest::TrainVal,
                    });
                } else {
                    jobs.push(Job {
                        trace,
                        start: 0,
                        end: n,
                        dest: Dest::Test,
                    });
                }
            }
            D2Set::S6 => {
                if is_fixed {
                    jobs.push(Job {
                        trace,
                        start: 0,
                        end: n,
                        dest: Dest::Test,
                    });
                } else {
                    jobs.push(Job {
                        trace,
                        start: 0,
                        end: n,
                        dest: Dest::TrainVal,
                    });
                }
            }
        }
    }
    assemble(jobs, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenConfig;
    use crate::{generate_d1, generate_d2};

    fn tiny_d1() -> Dataset {
        generate_d1(&GenConfig {
            num_modules: 2,
            snapshots_per_trace: 10,
            ..GenConfig::default()
        })
    }

    fn tiny_d2() -> Dataset {
        generate_d2(&GenConfig {
            num_modules: 2,
            snapshots_per_trace: 12,
            ..GenConfig::default()
        })
    }

    #[test]
    fn table_i_position_sets() {
        assert_eq!(D1Set::S1.train_positions().len(), 9);
        assert_eq!(D1Set::S2.train_positions().len(), 5);
        assert_eq!(D1Set::S3.train_positions().len(), 5);
        // S2/S3 train and test sets are disjoint.
        for set in [D1Set::S2, D1Set::S3] {
            for p in set.test_positions() {
                assert!(!set.train_positions().contains(&p), "{set:?} overlaps");
            }
        }
        // S3 is the extrapolation set: max train position < min test.
        assert!(D1Set::S3.train_positions().iter().max() < D1Set::S3.test_positions().iter().min());
    }

    #[test]
    fn s1_is_a_time_split() {
        let ds = tiny_d1();
        let split = d1_split(&ds, D1Set::S1, &[1], &InputSpec::fast());
        // 2 modules × 9 positions × 10 snapshots = 180 per beamformee:
        // 80% train+val (of which 20% val), 20% test.
        assert_eq!(split.train.len() + split.val.len(), 144);
        assert_eq!(split.test.len(), 36);
        // Both modules appear in every part.
        for part in [&split.train, &split.val, &split.test] {
            let mut labels = part.y.clone();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels, vec![0, 1]);
        }
    }

    #[test]
    fn s3_test_positions_are_unseen() {
        let ds = tiny_d1();
        let split = d1_split(&ds, D1Set::S3, &[1], &InputSpec::fast());
        // 5 training positions × 2 modules × 10 snapshots.
        assert_eq!(split.train.len() + split.val.len(), 100);
        // 4 testing positions, full traces.
        assert_eq!(split.test.len(), 80);
    }

    #[test]
    fn mixed_beamformees_doubles_data() {
        let ds = tiny_d1();
        let single = d1_split(&ds, D1Set::S1, &[1], &InputSpec::fast());
        let mixed = d1_split(&ds, D1Set::S1, &[1, 2], &InputSpec::fast());
        assert_eq!(
            mixed.train.len() + mixed.val.len(),
            2 * (single.train.len() + single.val.len())
        );
    }

    #[test]
    fn cross_beamformee_split_separates_sources() {
        let ds = tiny_d1();
        let split = d1_cross_beamformee(&ds, 1, 2, &InputSpec::fast());
        // Train = bf1 80%, test = bf2 20%.
        assert_eq!(split.train.len() + split.val.len(), 144);
        assert_eq!(split.test.len(), 36);
    }

    #[test]
    fn d2_s4_uses_mobility_groups() {
        let ds = tiny_d2();
        let split = d2_split(&ds, D2Set::S4, &[2], &InputSpec::fast());
        // mob1: 4 traces × 12 snapshots × 2 modules = 96 train+val.
        assert_eq!(split.train.len() + split.val.len(), 96);
        // mob2: 3 traces × 12 × 2 = 72 test.
        assert_eq!(split.test.len(), 72);
    }

    #[test]
    fn d2_s5_s6_swap_train_and_test() {
        let ds = tiny_d2();
        let s5 = d2_split(&ds, D2Set::S5, &[2], &InputSpec::fast());
        let s6 = d2_split(&ds, D2Set::S6, &[2], &InputSpec::fast());
        assert_eq!(s5.train.len() + s5.val.len(), s6.test.len());
        assert_eq!(s6.train.len() + s6.val.len(), s5.test.len());
    }

    #[test]
    fn d2_subpath_takes_trace_fractions() {
        let ds = tiny_d2();
        let split = d2_split(&ds, D2Set::S4SubPath, &[2], &InputSpec::fast());
        // Train: first half of mob1 traces (6 of 12 snapshots each).
        assert_eq!(split.train.len() + split.val.len(), 2 * 4 * 6);
        // Test: (0.5, 0.8333] of mob2 traces (4 of 12 snapshots each).
        assert_eq!(split.test.len(), 2 * 3 * 4);
    }

    #[test]
    fn beamformee1_in_d2_has_single_stream_inputs() {
        let ds = tiny_d2();
        let split = d2_split(&ds, D2Set::S4, &[1], &InputSpec::fast());
        // Stream-0-only input still has 5 channels and works for NSS=1.
        assert_eq!(split.train.x[0].shape()[0], 5);
    }
}
