//! The trace-generation engine shared by the D1 and D2 generators.

use crate::trace::{Trace, TraceKind};
use deepcsi_bfi::BeamformingFeedback;
use deepcsi_channel::{
    AntennaArray, ChannelModel, ChannelSounder, Environment, MobilityPath, PersonMotion,
    SounderConfig,
};
use deepcsi_frame::{BeamformingReportFrame, MacAddr};
use deepcsi_impair::{apply_impairments, DeviceId, ImpairmentProfile, LinkState, RadioFingerprint};
use deepcsi_phy::{Codebook, MimoConfig, SubcarrierLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic data-collection campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Environment (room) id; the paper uses two rooms with the same
    /// layout.
    pub env_id: u64,
    /// Soundings recorded per trace (the 2-minute traces of the paper are
    /// sub-sampled to keep synthetic datasets laptop-sized).
    pub snapshots_per_trace: usize,
    /// Hardware-impairment magnitudes.
    pub profile: ImpairmentProfile,
    /// Feedback quantization codebook (the paper's AP uses bφ=9, bψ=7).
    pub codebook: Codebook,
    /// Route every feedback through a VHT frame encode→capture→parse
    /// round-trip, exercising the `deepcsi-frame` codec as a real monitor
    /// would.
    pub via_frames: bool,
    /// Number of AP modules to fingerprint (the paper has 10).
    pub num_modules: u32,
    /// Days since the fingerprint was profiled: ages every AP module's
    /// hardware fingerprint through [`RadioFingerprint::drifted`]
    /// (temperature/aging offsets re-sampled per day). `0` with
    /// [`GenConfig::drift_scale`] `0.0` is a bit-exact identity, so
    /// existing datasets are unchanged.
    pub drift_day: u32,
    /// Magnitude of the per-day drift (`0.0` = none; `1.0` = the full
    /// calibrated drift model).
    pub drift_scale: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            env_id: 0,
            snapshots_per_trace: 120,
            profile: ImpairmentProfile::default(),
            codebook: Codebook::MU_HIGH,
            via_frames: false,
            num_modules: 10,
            drift_day: 0,
            drift_scale: 0.0,
        }
    }
}

/// Full specification of one trace to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// AP module under test.
    pub module: DeviceId,
    /// Beamformee id (1 or 2).
    pub beamformee: u8,
    /// Beamformee antenna/stream count (N = N_SS): 2 for D1; per §IV-A,
    /// 1 for beamformee 1 and 2 for beamformee 2 in D2.
    pub n_rx: usize,
    /// Beamformee position index 1..=9 (Fig. 6).
    pub rx_position: usize,
    /// Trace kind (also selects static vs. mobility generation).
    pub kind: TraceKind,
}

/// Stable per-trace seed derived from the trace coordinates.
fn trace_seed(cfg: &GenConfig, spec: &TraceSpec) -> u64 {
    let kind_tag: u64 = match spec.kind {
        TraceKind::D1Static { position } => 0x1000 + position as u64,
        TraceKind::D2Fixed { group, idx } => 0x2000 + group as u64 * 16 + idx as u64,
        TraceKind::D2Mobility { group, idx } => 0x3000 + group as u64 * 16 + idx as u64,
    };
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        cfg.env_id,
        spec.module.0 as u64,
        spec.beamformee as u64,
        spec.n_rx as u64,
        spec.rx_position as u64,
        kind_tag,
    ] {
        h ^= v.wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Generates one trace end-to-end through the full pipeline:
/// channel → impairments → V → angles → quantization → (frames) →
/// captured feedback.
pub fn generate_trace(cfg: &GenConfig, spec: &TraceSpec) -> Trace {
    let env = Environment::fig6(cfg.env_id);
    let layout = SubcarrierLayout::vht80();
    let tones = layout.indices().to_vec();
    let model = ChannelModel::new(&env, layout);
    let seed = trace_seed(cfg, spec);

    let m_tx = 3; // the paper's AP sounds with M = 3 antennas
    let mimo = MimoConfig::new(m_tx, spec.n_rx, spec.n_rx).expect("valid MIMO dims");
    let tx_fp = RadioFingerprint::generate(spec.module, m_tx, &cfg.profile)
        .drifted(cfg.drift_day, cfg.drift_scale);
    let rx_fp = RadioFingerprint::generate_rx(spec.beamformee as u64, spec.n_rx, &cfg.profile);

    let spacing = env.half_wavelength();
    let tx_array = AntennaArray::new(env.ap_home(), 0.0, spacing, m_tx);
    let rx_pos = if spec.beamformee == 1 {
        env.beamformee1_position(spec.rx_position)
    } else {
        env.beamformee2_position(spec.rx_position)
    };
    let rx_array = AntennaArray::new(rx_pos, 0.0, spacing, spec.n_rx);

    let sounder_cfg = SounderConfig {
        interval_s: 0.6,
        snapshots: cfg.snapshots_per_trace,
    };
    let mut sounder = ChannelSounder::new(model, tx_array, rx_array, sounder_cfg, seed);
    if let TraceKind::D2Mobility { .. } = spec.kind {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0B11E);
        let path = MobilityPath::abcdba(&env, &mut rng);
        let person = PersonMotion::new(&mut rng);
        sounder = sounder.with_mobility(path, person);
    }

    let mut link = LinkState::new(&tx_fp, seed ^ 0x71ACE).with_pa_flips(cfg.profile.pa_flip_prob);
    let mut timestamps = Vec::with_capacity(cfg.snapshots_per_trace);
    let mut snapshots = Vec::with_capacity(cfg.snapshots_per_trace);
    let mut seq: u16 = 0;
    for (t, cfr) in sounder {
        let impaired = apply_impairments(&cfr, &tones, &tx_fp, &rx_fp, &cfg.profile, &mut link);
        let fb = BeamformingFeedback::from_cfr(&impaired, &tones, mimo, cfg.codebook);
        let fb = if cfg.via_frames {
            // Encode → sniff → parse: the observer's actual data path.
            let frame = BeamformingReportFrame::new(
                MacAddr::station(1000 + spec.module.0 as u64),
                MacAddr::station(spec.beamformee as u64),
                MacAddr::station(1000 + spec.module.0 as u64),
                seq,
                fb,
            );
            seq = seq.wrapping_add(1);
            BeamformingReportFrame::parse(&frame.encode())
                .expect("self-encoded frame must parse")
                .into_feedback()
        } else {
            fb
        };
        timestamps.push(t);
        snapshots.push(fb);
    }

    Trace {
        module: spec.module,
        beamformee: spec.beamformee,
        env_id: cfg.env_id,
        kind: spec.kind,
        timestamps,
        snapshots,
    }
}

/// Generates a batch of traces in parallel across worker threads.
pub(crate) fn generate_traces(cfg: &GenConfig, specs: &[TraceSpec]) -> Vec<Trace> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16);
    if threads <= 1 || specs.len() < 2 {
        return specs.iter().map(|s| generate_trace(cfg, s)).collect();
    }
    let chunk = specs.len().div_ceil(threads);
    let nested: Vec<Vec<Trace>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move |_| shard.iter().map(|s| generate_trace(cfg, s)).collect())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("generation worker panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");
    nested.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GenConfig {
        GenConfig {
            snapshots_per_trace: 4,
            ..GenConfig::default()
        }
    }

    fn spec() -> TraceSpec {
        TraceSpec {
            module: DeviceId(0),
            beamformee: 1,
            n_rx: 2,
            rx_position: 3,
            kind: TraceKind::D1Static { position: 3 },
        }
    }

    #[test]
    fn trace_has_requested_snapshots() {
        let t = generate_trace(&tiny_cfg(), &spec());
        assert_eq!(t.len(), 4);
        assert_eq!(t.timestamps.len(), 4);
        for fb in &t.snapshots {
            assert_eq!(fb.len(), 234);
            assert_eq!(fb.mimo.m_tx(), 3);
            assert_eq!(fb.mimo.n_ss(), 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_trace(&tiny_cfg(), &spec());
        let b = generate_trace(&tiny_cfg(), &spec());
        assert_eq!(a, b);
    }

    #[test]
    fn frames_roundtrip_is_lossless() {
        let mut cfg = tiny_cfg();
        let direct = generate_trace(&cfg, &spec());
        cfg.via_frames = true;
        let via = generate_trace(&cfg, &spec());
        // The frame codec must be transparent: identical angles.
        for (a, b) in direct.snapshots.iter().zip(via.snapshots.iter()) {
            assert_eq!(a.angles, b.angles);
        }
    }

    #[test]
    fn different_modules_differ() {
        let a = generate_trace(&tiny_cfg(), &spec());
        let mut s2 = spec();
        s2.module = DeviceId(5);
        let b = generate_trace(&tiny_cfg(), &s2);
        assert_ne!(a.snapshots[0].angles, b.snapshots[0].angles);
    }

    #[test]
    fn mobility_trace_spans_the_path() {
        let mut s = spec();
        s.kind = TraceKind::D2Mobility { group: 1, idx: 0 };
        let cfg = GenConfig {
            snapshots_per_trace: 6,
            ..GenConfig::default()
        };
        let t = generate_trace(&cfg, &s);
        assert_eq!(t.len(), 6);
        // Timestamps spread over the ≈19 s traversal rather than the
        // static 0.6 s interval.
        assert!(t.timestamps.last().unwrap() > &10.0);
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let cfg = tiny_cfg();
        let specs = vec![
            spec(),
            TraceSpec {
                module: DeviceId(1),
                ..spec()
            },
            TraceSpec {
                module: DeviceId(2),
                ..spec()
            },
        ];
        let par = generate_traces(&cfg, &specs);
        let ser: Vec<Trace> = specs.iter().map(|s| generate_trace(&cfg, s)).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn zero_drift_is_an_identity() {
        let base = generate_trace(&tiny_cfg(), &spec());
        let cfg = GenConfig {
            drift_day: 0,
            drift_scale: 0.0,
            ..tiny_cfg()
        };
        assert_eq!(base, generate_trace(&cfg, &spec()));
    }

    #[test]
    fn drifted_days_change_the_capture_but_not_its_shape() {
        let base = generate_trace(&tiny_cfg(), &spec());
        let cfg = GenConfig {
            drift_day: 30,
            drift_scale: 0.3,
            ..tiny_cfg()
        };
        let aged = generate_trace(&cfg, &spec());
        assert_eq!(aged.len(), base.len());
        assert_ne!(
            aged.snapshots[0].angles, base.snapshots[0].angles,
            "a month of drift must perturb the captured angles"
        );
    }

    #[test]
    fn single_stream_beamformee() {
        let s = TraceSpec {
            n_rx: 1,
            kind: TraceKind::D2Fixed { group: 1, idx: 0 },
            ..spec()
        };
        let t = generate_trace(&tiny_cfg(), &s);
        assert_eq!(t.snapshots[0].mimo.n_ss(), 1);
        assert_eq!(t.snapshots[0].angles[0].q_phi.len(), 2); // φ11 φ21
    }
}
