//! Trace and dataset containers.

use deepcsi_bfi::BeamformingFeedback;
use deepcsi_impair::DeviceId;
use serde::{Deserialize, Serialize};

/// What kind of measurement a trace is (mirrors §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceKind {
    /// D1: AP fixed at A, beamformees at position index 1..=9.
    D1Static {
        /// Beamformee position index (1..=9, Fig. 6 stars).
        position: usize,
    },
    /// D2: AP fixed at A ("fix1"/"fix2" groups of Table II).
    D2Fixed {
        /// Group id: 1 = fix1, 2 = fix2.
        group: u8,
        /// Trace index within the group.
        idx: u8,
    },
    /// D2: AP carried along A-B-C-D-B-A ("mob1"/"mob2" groups).
    D2Mobility {
        /// Group id: 1 = mob1, 2 = mob2.
        group: u8,
        /// Trace index within the group.
        idx: u8,
    },
}

/// One captured trace: the time series of beamforming feedbacks one
/// beamformee produced for one AP module in one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The AP's Wi-Fi module (the classification label).
    pub module: DeviceId,
    /// Which beamformee produced the feedback (1 or 2).
    pub beamformee: u8,
    /// The environment (room) id the trace was collected in.
    pub env_id: u64,
    /// Measurement kind.
    pub kind: TraceKind,
    /// Sounding timestamps \[s\].
    pub timestamps: Vec<f64>,
    /// The captured (quantized) feedback per sounding.
    pub snapshots: Vec<BeamformingFeedback>,
}

impl Trace {
    /// Number of soundings in the trace.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when the trace holds no soundings.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

/// A set of traces (D1, D2, or any filtered view).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The traces.
    pub traces: Vec<Trace>,
}

impl Dataset {
    /// Sorted list of distinct module ids present.
    pub fn modules(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.traces.iter().map(|t| t.module).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Traces matching a predicate.
    pub fn filter<'a, F: Fn(&Trace) -> bool + 'a>(
        &'a self,
        f: F,
    ) -> impl Iterator<Item = &'a Trace> {
        self.traces.iter().filter(move |t| f(t))
    }

    /// Total number of feedback snapshots across all traces.
    pub fn num_snapshots(&self) -> usize {
        self.traces.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_trace(module: u32, bf: u8, pos: usize) -> Trace {
        Trace {
            module: DeviceId(module),
            beamformee: bf,
            env_id: 0,
            kind: TraceKind::D1Static { position: pos },
            timestamps: vec![],
            snapshots: vec![],
        }
    }

    #[test]
    fn modules_are_deduped_and_sorted() {
        let ds = Dataset {
            traces: vec![
                dummy_trace(3, 1, 1),
                dummy_trace(1, 1, 1),
                dummy_trace(3, 2, 2),
            ],
        };
        assert_eq!(ds.modules(), vec![DeviceId(1), DeviceId(3)]);
    }

    #[test]
    fn filter_selects_by_predicate() {
        let ds = Dataset {
            traces: vec![
                dummy_trace(0, 1, 1),
                dummy_trace(0, 2, 1),
                dummy_trace(0, 1, 2),
            ],
        };
        let bf1: Vec<_> = ds.filter(|t| t.beamformee == 1).collect();
        assert_eq!(bf1.len(), 2);
    }

    #[test]
    fn empty_trace_reports_empty() {
        let t = dummy_trace(0, 1, 1);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
