//! Dataset persistence ("we pledge to share the 800 GB datasets" — the
//! synthetic equivalents are rather smaller).

use crate::trace::Dataset;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Serialisation error.
    Codec(bincode::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "dataset i/o error: {e}"),
            StoreError::Codec(e) => write!(f, "dataset codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<bincode::Error> for StoreError {
    fn from(e: bincode::Error) -> Self {
        StoreError::Codec(e)
    }
}

/// Saves a dataset to a binary file.
///
/// # Errors
///
/// Returns [`StoreError`] on filesystem or serialisation failure.
pub fn save_dataset<P: AsRef<Path>>(path: P, ds: &Dataset) -> Result<(), StoreError> {
    let file = File::create(path)?;
    bincode::serialize_into(BufWriter::new(file), ds)?;
    Ok(())
}

/// Loads a dataset saved by [`save_dataset`].
///
/// # Errors
///
/// Returns [`StoreError`] on filesystem or deserialisation failure.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset, StoreError> {
    let file = File::open(path)?;
    Ok(bincode::deserialize_from(BufReader::new(file))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_d1;
    use crate::generator::GenConfig;

    #[test]
    fn roundtrip_through_disk() {
        let ds = generate_d1(&GenConfig {
            num_modules: 1,
            snapshots_per_trace: 2,
            ..GenConfig::default()
        });
        let dir = std::env::temp_dir().join("deepcsi-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d1.bin");
        save_dataset(&path, &ds).unwrap();
        let back = load_dataset(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_dataset("/nonexistent/deepcsi.bin").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn corrupt_file_is_codec_error() {
        let dir = std::env::temp_dir().join("deepcsi-store-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a dataset").unwrap();
        let err = load_dataset(&path).unwrap_err();
        assert!(matches!(err, StoreError::Codec(_)));
        std::fs::remove_file(&path).ok();
    }
}
