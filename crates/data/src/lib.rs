//! Synthetic D1/D2 dataset generation and the paper's train/test splits.
//!
//! The paper evaluates on two captured datasets (§IV-A):
//!
//! * **D1 (static)** — 10 Compex modules × 9 beamformee position pairs ×
//!   2 beamformees, AP fixed at position A. 90 traces per beamformee.
//! * **D2 (mobility)** — 10 modules × (4 static + 7 mobility) traces, AP
//!   manually carried along A-B-C-D-B-A with a person nearby. Beamformee 1
//!   runs N = N_SS = 1, beamformee 2 runs N = N_SS = 2.
//!
//! This crate regenerates both datasets synthetically end-to-end through
//! the real pipeline: ray-traced CFR → hardware impairments → SVD →
//! Givens angles → quantization → (optionally) a VHT frame encode/parse
//! round-trip through `deepcsi-frame` — exactly what a monitor captures.
//!
//! It also implements the **S1–S6 split definitions of Tables I and II**
//! ([`D1Set`], [`D2Set`]) and the DNN input assembly of §III-C
//! ([`InputSpec`]: I/Q stacking into `Nch × Nrow × Ncol` tensors with
//! stream/antenna/sub-band selection).
//!
//! # Example
//!
//! ```no_run
//! use deepcsi_data::{generate_d1, GenConfig, d1_split, D1Set, InputSpec};
//!
//! let mut cfg = GenConfig::default();
//! cfg.snapshots_per_trace = 20; // tiny demo dataset
//! let ds = generate_d1(&cfg);
//! let split = d1_split(&ds, D1Set::S1, &[1], &InputSpec::default());
//! assert_eq!(split.train.x.len(), split.train.y.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod d1;
mod d2;
mod generator;
mod input;
mod splits;
mod store;
mod trace;

pub use d1::generate_d1;
pub use d2::generate_d2;
pub use generator::{generate_trace, GenConfig, TraceSpec};
pub use input::{clean_phase_offsets, InputSpec, LabeledSamples};
pub use splits::{
    d1_cross_beamformee, d1_split, d1_split_positions, d2_split, D1Set, D2Set, Split,
};
pub use store::{load_dataset, save_dataset, StoreError};
pub use trace::{Dataset, Trace, TraceKind};
