//! Property-based tests for dataset generation and input assembly.

use deepcsi_bfi::BeamformingFeedback;
use deepcsi_data::{clean_phase_offsets, InputSpec};
use deepcsi_linalg::{CMatrix, C64};
use deepcsi_phy::{Codebook, MimoConfig};
use proptest::prelude::*;

fn feedback(n_sc: usize, seed: u64) -> BeamformingFeedback {
    // Spectrally smooth CFR (slow variation across tones), like a real
    // multipath channel — phase unwrapping across tones is well-defined.
    let mimo = MimoConfig::paper_default();
    let cfr: Vec<CMatrix> = (0..n_sc)
        .map(|j| {
            CMatrix::from_fn(3, 2, |r, c| {
                let x = j as f64 * 0.06 + seed as f64 * 0.13 + r as f64 * 1.3 + c as f64 * 2.1;
                C64::new(1.0 + 0.4 * x.sin(), 0.4 * (x * 1.7).cos())
            })
        })
        .collect();
    let sc: Vec<i32> = (0..n_sc as i32).collect();
    BeamformingFeedback::from_cfr(&cfr, &sc, mimo, Codebook::MU_HIGH)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tensor_shape_matches_spec(n_sc in 8usize..64, stride in 1usize..4, seed in 0u64..100) {
        let fb = feedback(n_sc, seed);
        let spec = InputSpec { stride, ..InputSpec::default() };
        let t = spec.tensor(&fb);
        prop_assert_eq!(t.shape()[0], 5);
        prop_assert_eq!(t.shape()[1], 1);
        prop_assert_eq!(t.shape()[2], n_sc.div_ceil(stride));
        prop_assert!(t.is_finite());
    }

    #[test]
    fn tensor_values_bounded_by_unitarity(n_sc in 4usize..32, seed in 0u64..100) {
        let fb = feedback(n_sc, seed);
        let t = InputSpec::default().tensor(&fb);
        prop_assert!(t.as_slice().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn cleaning_is_contractive(n_sc in 8usize..48, seed in 0u64..100) {
        // Exact idempotency does not hold (phase unwrapping can resolve
        // differently after the first pass near ±π), but re-cleaning must
        // change the series far less than the first cleaning did.
        let fb = feedback(n_sc, seed);
        let raw = fb.reconstruct();
        let mut once = raw.clone();
        clean_phase_offsets(&mut once);
        let mut twice = once.clone();
        clean_phase_offsets(&mut twice);
        let delta = |a: &deepcsi_bfi::VSeries, b: &deepcsi_bfi::VSeries| -> f64 {
            a.v.iter().zip(b.v.iter()).map(|(x, y)| x.sub(y).fro_norm()).sum()
        };
        let first = delta(&raw, &once);
        let second = delta(&once, &twice);
        prop_assert!(
            second <= 0.5 * first + 1e-9,
            "second pass ({second}) not much smaller than first ({first})"
        );
    }

    #[test]
    fn cleaning_preserves_magnitudes(n_sc in 8usize..48, seed in 0u64..100) {
        let fb = feedback(n_sc, seed);
        let raw = fb.reconstruct();
        let mut cleaned = raw.clone();
        clean_phase_offsets(&mut cleaned);
        for (a, b) in raw.v.iter().zip(cleaned.v.iter()) {
            for m in 0..3 {
                for s in 0..2 {
                    prop_assert!((a[(m, s)].abs() - b[(m, s)].abs()).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn subband_then_stride_compose(n_sc in 24usize..64, seed in 0u64..50) {
        let fb = feedback(n_sc, seed);
        let positions: Vec<usize> = (4..n_sc - 4).collect();
        let spec = InputSpec {
            subcarrier_positions: Some(positions.clone()),
            stride: 2,
            ..InputSpec::default()
        };
        let t = spec.tensor(&fb);
        prop_assert_eq!(t.shape()[2], positions.len().div_ceil(2));
    }
}
