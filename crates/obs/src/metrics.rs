//! Machine-readable metrics export.
//!
//! A [`MetricsRegistry`] is a point-in-time collection of named metrics
//! — counters, gauges and histogram snapshots — that renders in two
//! formats from the same data:
//!
//! * [`MetricsRegistry::to_prometheus`] — Prometheus text-exposition
//!   format (`# HELP` / `# TYPE` / samples, cumulative `le` buckets for
//!   histograms), the thing a node-exporter-style scrape or a plain
//!   `curl`-on-a-file reads.
//! * [`MetricsRegistry::to_json_line`] — one flat JSON object on one
//!   line, for an append-only `.jsonl` time series that `jq` consumes.
//!
//! The registry is rebuilt for every emission (it is a snapshot, not a
//! live store); producers like `deepcsi_serve::Telemetry` own the live
//! atomics and render into a fresh registry each interval.

use crate::json::escape;
use std::fmt::Write as _;

/// A histogram snapshot: cumulative bucket counts at ascending upper
/// bounds, plus the sum and count of all observations.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// `(upper_bound, cumulative_count)` pairs with strictly ascending
    /// bounds. The implicit `+Inf` bucket is `count`; an explicit
    /// non-finite bound is not stored.
    pub buckets: Vec<(f64, u64)>,
    /// Sum of every observation (same unit as the bounds).
    pub sum: f64,
    /// Total observations.
    pub count: u64,
    /// Selected quantiles `(q, value)`, exported to the JSON line (the
    /// Prometheus side derives quantiles from the buckets instead).
    pub quantiles: Vec<(f64, f64)>,
}

/// A metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Distribution snapshot.
    Histogram(HistogramSnapshot),
}

/// One named metric with optional labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// A point-in-time collection of metrics, renderable as Prometheus
/// text or a JSON line.
///
/// ```
/// use deepcsi_obs::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter("frames_total", "Frames ingested.", 42);
/// reg.gauge("mean_batch", "Mean micro-batch size.", 7.5);
/// let text = reg.to_prometheus();
/// assert!(text.contains("frames_total 42"));
/// assert!(deepcsi_obs::parse_prometheus(&text).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds a counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push(name, help, Vec::new(), MetricValue::Counter(value));
    }

    /// Adds a gauge (non-finite values are clamped to 0 — the text
    /// formats cannot represent them and a scrape must never see NaN).
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.push(name, help, Vec::new(), MetricValue::Gauge(v));
    }

    /// Adds a labeled gauge (e.g. an `_info`-style metric carrying
    /// string dimensions).
    pub fn labeled_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let v = if value.is_finite() { value } else { 0.0 };
        self.push(name, help, labels, MetricValue::Gauge(v));
    }

    /// Adds a histogram snapshot.
    pub fn histogram(&mut self, name: &str, help: &str, snapshot: HistogramSnapshot) {
        self.push(name, help, Vec::new(), MetricValue::Histogram(snapshot));
    }

    fn push(&mut self, name: &str, help: &str, labels: Vec<(String, String)>, value: MetricValue) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        self.metrics.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            value,
        });
    }

    /// The metrics added so far.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Renders Prometheus text-exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", m.name, m.help.replace('\n', " "));
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_set(&m.labels, None), v);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_set(&m.labels, None),
                        fmt_f64(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    for &(le, cum) in &h.buckets {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            m.name,
                            label_set(&m.labels, Some(&fmt_f64(le))),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        m.name,
                        label_set(&m.labels, Some("+Inf")),
                        h.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        label_set(&m.labels, None),
                        fmt_f64(h.sum)
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        label_set(&m.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }

    /// Renders one flat JSON object (no trailing newline): counters and
    /// gauges as numbers, histograms as
    /// `{"count":…,"sum":…,"p50":…,…}`, string labels inlined as
    /// `<name>_<key>` string fields.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let mut field = |out: &mut String, key: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            escape(key, out);
            out.push_str("\":");
        };
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => {
                    field(&mut out, &m.name);
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    field(&mut out, &m.name);
                    out.push_str(&fmt_f64(*v));
                }
                MetricValue::Histogram(h) => {
                    field(&mut out, &m.name);
                    let _ = write!(out, "{{\"count\":{},\"sum\":{}", h.count, fmt_f64(h.sum));
                    for &(q, v) in &h.quantiles {
                        let _ = write!(
                            out,
                            ",\"p{:02}\":{}",
                            (q * 100.0).round() as u32,
                            fmt_f64(v)
                        );
                    }
                    out.push('}');
                }
            }
            for (k, v) in &m.labels {
                field(&mut out, &format!("{}_{}", m.name, k));
                out.push('"');
                escape(v, &mut out);
                out.push('"');
            }
        }
        out.push('}');
        out
    }
}

/// `{k="v",le="x"}` or the empty string.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let mut escaped = String::new();
        escape(v, &mut escaped);
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Formats a finite f64 the way both text formats accept (no `inf`, no
/// `NaN`, no exponent surprises for integral values).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

pub(crate) fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::prom::parse_prometheus;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter("deepcsi_ingested_total", "Frames handed to ingest.", 1000);
        reg.gauge("deepcsi_mean_batch", "Mean micro-batch size.", 12.5);
        reg.labeled_gauge(
            "deepcsi_engine_info",
            "Engine configuration.",
            &[("policy", "fixed"), ("precision", "f32")],
            1.0,
        );
        reg.histogram(
            "deepcsi_batch_latency_seconds",
            "Micro-batch latency.",
            HistogramSnapshot {
                buckets: vec![(0.001, 5), (0.01, 9), (0.1, 10)],
                sum: 0.042,
                count: 10,
                quantiles: vec![(0.5, 0.0009), (0.99, 0.02)],
            },
        );
        reg
    }

    #[test]
    fn prometheus_text_parses_and_has_expected_samples() {
        let text = sample_registry().to_prometheus();
        let samples = parse_prometheus(&text).expect("parse");
        let find = |n: &str| samples.iter().find(|s| s.name == n).expect(n);
        assert_eq!(find("deepcsi_ingested_total").value, 1000.0);
        assert_eq!(find("deepcsi_mean_batch").value, 12.5);
        let info = find("deepcsi_engine_info");
        assert!(info
            .labels
            .iter()
            .any(|(k, v)| k == "policy" && v == "fixed"));
        // Cumulative buckets end at the +Inf bucket == count.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "deepcsi_batch_latency_seconds_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf.value, 10.0);
        assert_eq!(find("deepcsi_batch_latency_seconds_count").value, 10.0);
    }

    #[test]
    fn json_line_is_valid_json_with_quantiles() {
        let line = sample_registry().to_json_line();
        let v = JsonValue::parse(&line).expect("json line parses");
        assert_eq!(
            v.get("deepcsi_ingested_total").unwrap().as_f64(),
            Some(1000.0)
        );
        let hist = v.get("deepcsi_batch_latency_seconds").unwrap();
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(10.0));
        assert_eq!(hist.get("p99").unwrap().as_f64(), Some(0.02));
        assert_eq!(
            v.get("deepcsi_engine_info_policy").unwrap().as_str(),
            Some("fixed")
        );
    }

    #[test]
    fn non_finite_gauges_are_clamped() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("bad", "a non-finite gauge", f64::NAN);
        let text = reg.to_prometheus();
        assert!(!text.contains("NaN"));
        assert!(parse_prometheus(&text).is_ok());
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("deepcsi_total"));
        assert!(valid_name("_x:y9"));
        assert!(!valid_name("9leading"));
        assert!(!valid_name("has space"));
        assert!(!valid_name(""));
    }
}
