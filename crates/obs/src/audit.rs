//! The per-verdict audit trail.
//!
//! An authentication system that accepts and rejects devices must be
//! able to answer, after the fact, *why device X was let in at 14:02*.
//! The [`AuditLog`] is that forensic record: every decided verdict
//! appends exactly one structured [`AuditEvent`] — source MAC, verdict,
//! policy, confidence trajectory, reports-to-verdict, precision,
//! timestamp — to a bounded in-memory ring (served live at
//! `/audit/tail?n=`) and, optionally, to an append-only JSONL file
//! (`--audit-file`) that survives the process.
//!
//! Design constraints, in order:
//!
//! 1. **Never stall a worker.** `append()` takes one short mutex for a
//!    ring push and a `BufWriter` write; file flushing happens on the
//!    caller's cadence ([`AuditLog::flush`]), not per event, and file
//!    write errors are counted, not propagated — losing an audit line
//!    beats stalling authentication.
//! 2. **Exactly one event per decided verdict.** The monotonically
//!    increasing [`AuditEvent::seq`] (assigned under the same lock as
//!    the push) makes gaps detectable: `appended()` equals the
//!    engine's `verdicts_decided` counter, and tests pin it.
//! 3. **Bounded memory.** The ring holds the last `capacity` events;
//!    the file, when configured, is the unbounded record.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::escape;

/// One decided verdict, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditEvent {
    /// Monotonic sequence number, assigned by [`AuditLog::append`]
    /// (the first event is `0`).
    pub seq: u64,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The reporting device's source identifier (MAC address).
    pub source: String,
    /// The verdict (`accept` / `reject` / policy-specific).
    pub verdict: String,
    /// The registry's expected device id for this source, if enrolled.
    pub expected: Option<u64>,
    /// The module (device id) the decision window converged on.
    pub module: Option<u64>,
    /// Fraction of windowed reports voting for the winning module.
    pub vote_fraction: f64,
    /// Exponential moving average of the winning confidence — the
    /// confidence trajectory's current point.
    pub confidence: f64,
    /// Reports observed by the window when the verdict fired.
    pub observations: u64,
    /// Reports from first sighting to verdict (the early-exit metric).
    pub reports_to_verdict: Option<u64>,
    /// Decision policy name.
    pub policy: String,
    /// Inference precision (`f32` / `int8`).
    pub precision: String,
}

impl AuditEvent {
    /// One-line JSON rendering (no trailing newline). `None` fields
    /// serialize as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"seq\":");
        let _ = write!(out, "{}", self.seq);
        let _ = write!(out, ",\"unix_ms\":{}", self.unix_ms);
        out.push_str(",\"source\":\"");
        escape(&self.source, &mut out);
        out.push_str("\",\"verdict\":\"");
        escape(&self.verdict, &mut out);
        out.push('"');
        let opt = |out: &mut String, key: &str, v: Option<u64>| {
            match v {
                Some(v) => {
                    let _ = write!(out, ",\"{key}\":{v}");
                }
                None => {
                    let _ = write!(out, ",\"{key}\":null");
                }
            };
        };
        opt(&mut out, "expected", self.expected);
        opt(&mut out, "module", self.module);
        let _ = write!(out, ",\"vote_fraction\":{}", fmt_f64(self.vote_fraction));
        let _ = write!(out, ",\"confidence\":{}", fmt_f64(self.confidence));
        let _ = write!(out, ",\"observations\":{}", self.observations);
        opt(&mut out, "reports_to_verdict", self.reports_to_verdict);
        out.push_str(",\"policy\":\"");
        escape(&self.policy, &mut out);
        out.push_str("\",\"precision\":\"");
        escape(&self.precision, &mut out);
        out.push_str("\"}");
        out
    }
}

/// Non-finite values would be invalid JSON; clamp like the metrics
/// formats do.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

struct AuditInner {
    ring: VecDeque<AuditEvent>,
    writer: Option<BufWriter<File>>,
}

/// The bounded, thread-safe verdict log. See the module docs
/// for the contract.
pub struct AuditLog {
    inner: Mutex<AuditInner>,
    capacity: usize,
    appended: AtomicU64,
    write_errors: AtomicU64,
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("capacity", &self.capacity)
            .field("appended", &self.appended.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AuditLog {
    /// An in-memory-only log retaining the last `capacity` events.
    pub fn new(capacity: usize) -> AuditLog {
        assert!(capacity > 0, "audit ring needs room for at least one event");
        AuditLog {
            inner: Mutex::new(AuditInner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                writer: None,
            }),
            capacity,
            appended: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        }
    }

    /// A log that additionally appends every event as one JSONL line to
    /// `path` (created or truncated).
    ///
    /// # Errors
    ///
    /// Returns the file-creation error.
    pub fn with_file(capacity: usize, path: &Path) -> std::io::Result<AuditLog> {
        let log = AuditLog::new(capacity);
        let file = File::create(path)?;
        log.inner.lock().unwrap_or_else(|p| p.into_inner()).writer = Some(BufWriter::new(file));
        Ok(log)
    }

    /// Appends one event, assigning its `seq`, and returns that
    /// sequence number. Pops the oldest ring entry when full; file
    /// write failures are counted in [`AuditLog::write_errors`] rather
    /// than surfaced.
    pub fn append(&self, mut event: AuditEvent) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let seq = self.appended.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        if let Some(w) = inner.writer.as_mut() {
            let line = event.to_json();
            if w.write_all(line.as_bytes())
                .and_then(|()| w.write_all(b"\n"))
                .is_err()
            {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(event);
        seq
    }

    /// Total events ever appended (not capped by the ring capacity).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// File write failures so far (0 when no file is configured).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// The last `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<AuditEvent> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Flushes the JSONL writer, if any (call on shutdown and on the
    /// metrics-emission cadence).
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(w) = inner.writer.as_mut() {
            if w.flush().is_err() {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn event(source: &str) -> AuditEvent {
        AuditEvent {
            seq: 0,
            unix_ms: 1_700_000_000_000,
            source: source.to_string(),
            verdict: "accept".to_string(),
            expected: Some(3),
            module: Some(3),
            vote_fraction: 0.875,
            confidence: 0.91,
            observations: 16,
            reports_to_verdict: Some(9),
            policy: "confidence".to_string(),
            precision: "f32".to_string(),
        }
    }

    #[test]
    fn events_render_parseable_json_with_nulls() {
        let mut e = event("aa:bb:cc:dd:ee:ff");
        e.expected = None;
        e.reports_to_verdict = None;
        let v = JsonValue::parse(&e.to_json()).expect("audit json");
        assert_eq!(v.get("source").unwrap().as_str(), Some("aa:bb:cc:dd:ee:ff"));
        assert_eq!(v.get("verdict").unwrap().as_str(), Some("accept"));
        assert_eq!(v.get("vote_fraction").unwrap().as_f64(), Some(0.875));
        assert!(v.get("expected").unwrap().as_f64().is_none()); // null
        assert!(v.get("reports_to_verdict").is_some());
    }

    #[test]
    fn ring_assigns_seq_and_caps_memory() {
        let log = AuditLog::new(4);
        for i in 0..10 {
            let seq = log.append(event(&format!("dev-{i}")));
            assert_eq!(seq, i);
        }
        assert_eq!(log.appended(), 10);
        let tail = log.tail(100);
        assert_eq!(tail.len(), 4); // capacity, not appended
        assert_eq!(tail.first().unwrap().seq, 6);
        assert_eq!(tail.last().unwrap().seq, 9);
        // tail(n) returns the newest n, oldest first.
        let two = log.tail(2);
        assert_eq!(two.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn file_sink_writes_one_parseable_line_per_event() {
        let dir = std::env::temp_dir().join("deepcsi-audit-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("audit-{}.jsonl", std::process::id()));
        let log = AuditLog::with_file(8, &path).expect("create audit file");
        for i in 0..5 {
            log.append(event(&format!("dev-{i}")));
        }
        log.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            let v = JsonValue::parse(line).expect("jsonl line");
            assert_eq!(v.get("seq").unwrap().as_f64(), Some(i as f64));
        }
        assert_eq!(log.write_errors(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_appends_never_skip_or_reuse_a_seq() {
        let log = std::sync::Arc::new(AuditLog::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    log.append(event(&format!("t{t}-{i}")));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.appended(), 200);
        let tail = log.tail(64);
        assert_eq!(tail.len(), 64);
        // Ring order is append order: seqs are strictly increasing.
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
