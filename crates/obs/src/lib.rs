//! # deepcsi-obs — the observability substrate
//!
//! The serving engine answers "who is this device?" at line rate; this
//! crate answers "where did the time go?". It is dependency-free (like
//! the rest of the workspace: no crates.io, only `std`) and deliberately
//! knows nothing about CSI, engines or neural networks — the other
//! crates *feed* it:
//!
//! * **Span tracing** ([`Tracer`] / [`ThreadTracer`]) — every pipeline
//!   stage (`decode`, `queue_wait`, `tensorize`, `infer`,
//!   `policy_apply`, plus one span per `InferOp` when profiling) records
//!   begin/duration events into a lock-free per-thread ring buffer,
//!   behind an atomic [`TraceConfig::sample_every`] gate so the hot path
//!   pays an increment-and-compare when a batch is *not* sampled.
//!   Flushed events go to a [`TraceSink`]; the built-in collector
//!   renders them as Chrome `trace_event` JSON
//!   ([`write_chrome_trace`]) that `chrome://tracing` / Perfetto load
//!   directly, and [`parse_chrome_trace`] reads back (the round-trip is
//!   CI-checked).
//! * **Per-op profiling** ([`Profiler`] / [`OpStat`]) — carried by a
//!   `deepcsi_nn::InferCtx`, it records wall time and activation bytes
//!   moved for every frozen op, aggregated into the per-layer table the
//!   mixed-precision autotuner consumes.
//! * **Metrics export** ([`MetricsRegistry`]) — counters, gauges and
//!   histogram snapshots render as Prometheus text-exposition format
//!   ([`MetricsRegistry::to_prometheus`]) and as one-object-per-line
//!   JSON ([`MetricsRegistry::to_json_line`]); [`parse_prometheus`]
//!   validates an exposition (names, finite values) without a
//!   Prometheus server in the loop.
//!
//! PR 7 adds the **live observability plane** on top of the same
//! substrate:
//!
//! * **Embedded HTTP server** ([`ObsServer`] / [`http_get`]) — a
//!   dependency-free, bounded, `GET`-only HTTP/1.1 scrape surface so
//!   metrics, health and the audit tail are readable from a *running*
//!   engine, not just from files after the fact.
//! * **SLO monitoring** ([`SloMonitor`] / [`SloConfig`]) — sliding-
//!   window burn rates over p99 batch latency, drop rate, reject rate
//!   and capture reconciliation, driving the `/healthz` `ok → degraded
//!   → failing` state machine and structured [`SloBreach`] events.
//! * **Audit trail** ([`AuditLog`] / [`AuditEvent`]) — one structured
//!   JSONL event per decided verdict, in a bounded ring (served at
//!   `/audit/tail`) plus an optional append-only file.
//!
//! The `obs-check` binary wraps the two parsers for CI smoke steps:
//! `obs-check --prom metrics.prom --trace trace.json` exits non-zero
//! when either artifact fails to parse, and `obs-check --scrape ADDR`
//! validates a live plane over loopback.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod chrome;
mod http;
mod json;
mod metrics;
mod profile;
mod prom;
mod slo;
mod span;

pub use audit::{AuditEvent, AuditLog};
pub use chrome::{parse_chrome_trace, write_chrome_trace, ParsedSpan};
pub use http::{
    http_get, HttpHandler, HttpRequest, HttpResponse, ObsServer, ObsServerConfig, ServerCounters,
};
pub use json::JsonValue;
pub use metrics::{HistogramSnapshot, Metric, MetricValue, MetricsRegistry};
pub use profile::{format_op_table, merge_op_stats, OpStat, Profiler};
pub use prom::{parse_prometheus, PromSample};
pub use slo::{HealthReport, HealthState, RuleStatus, SloBreach, SloConfig, SloMonitor, SloSample};
pub use span::{SpanEvent, ThreadTracer, TraceConfig, TraceSink, Tracer};
