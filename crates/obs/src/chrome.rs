//! Chrome `trace_event` export — the JSON format `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly — plus the matching
//! reader, so a trace round-trips through this crate without a browser
//! in the loop (the CI smoke step leans on that).
//!
//! Spans are emitted as complete events (`"ph": "X"`) with microsecond
//! timestamps, one pipeline stage per line:
//!
//! ```json
//! {"traceEvents":[
//! {"name":"infer","cat":"deepcsi","ph":"X","ts":12.3,"dur":4.5,"pid":1,"tid":2}
//! ]}
//! ```

use crate::json::{escape, JsonValue};
use crate::span::SpanEvent;
use std::io::{self, Write};

/// A span read back from a Chrome trace (names are owned — the original
/// `&'static str` identity is gone after serialization).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSpan {
    /// Span name.
    pub name: String,
    /// Thread id.
    pub tid: u32,
    /// Start in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl ParsedSpan {
    /// `true` when this parsed span matches a recorded event
    /// (timestamps compared at the microsecond resolution the format
    /// stores).
    pub fn matches(&self, e: &SpanEvent) -> bool {
        self.name == e.name
            && self.tid == e.tid
            && self.start_ns / 1_000 == e.start_ns / 1_000
            && self.dur_ns / 1_000 == e.dur_ns / 1_000
    }
}

/// Writes spans as a Chrome `trace_event` JSON document.
pub fn write_chrome_trace<W: Write>(mut w: W, events: &[SpanEvent]) -> io::Result<()> {
    writeln!(w, "{{\"traceEvents\":[")?;
    for (i, e) in events.iter().enumerate() {
        let mut name = String::new();
        escape(e.name, &mut name);
        let comma = if i + 1 == events.len() { "" } else { "," };
        // ts/dur are microseconds (fractional for sub-µs spans), the
        // unit the trace viewers expect.
        writeln!(
            w,
            "{{\"name\":\"{name}\",\"cat\":\"deepcsi\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}}}{comma}",
            e.start_ns as f64 / 1_000.0,
            e.dur_ns as f64 / 1_000.0,
            e.tid,
        )?;
    }
    writeln!(w, "]}}")
}

/// Parses a Chrome `trace_event` document back into spans.
///
/// Accepts both container forms the format allows — an object with a
/// `traceEvents` array, or a bare array — and skips event phases other
/// than `"X"` (a foreign tool may add metadata events).
///
/// # Errors
///
/// A human-readable description of the first structural problem: not
/// JSON, missing `traceEvents`, an event without a name, a negative or
/// non-finite timestamp.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<ParsedSpan>, String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let events = match (&doc, doc.get("traceEvents")) {
        (_, Some(JsonValue::Array(a))) => a.as_slice(),
        (JsonValue::Array(a), None) => a.as_slice(),
        _ => return Err("document has no traceEvents array".to_string()),
    };
    let mut spans = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        let phase = e.get("ph").and_then(JsonValue::as_str).unwrap_or("X");
        if phase != "X" {
            continue;
        }
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} has no name"))?;
        let ts = e
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} ({name}) has no ts"))?;
        let dur = e.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0);
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i} ({name}) has a negative timestamp"));
        }
        let tid = e.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0);
        spans.push(ParsedSpan {
            name: name.to_string(),
            tid: tid as u32,
            start_ns: (ts * 1_000.0).round() as u64,
            dur_ns: (dur * 1_000.0).round() as u64,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: "queue_wait",
                tid: 0,
                start_ns: 1_000,
                dur_ns: 2_500,
            },
            SpanEvent {
                name: "infer",
                tid: 1,
                start_ns: 4_000,
                dur_ns: 150_000,
            },
            SpanEvent {
                name: "policy_apply",
                tid: 1,
                start_ns: 160_000,
                dur_ns: 750,
            },
        ]
    }

    #[test]
    fn trace_round_trips() {
        let events = sample_events();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).expect("write");
        let text = String::from_utf8(buf).expect("utf8");
        let parsed = parse_chrome_trace(&text).expect("parse");
        assert_eq!(parsed.len(), events.len());
        for (p, e) in parsed.iter().zip(&events) {
            assert!(p.matches(e), "{p:?} vs {e:?}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).expect("write");
        let parsed = parse_chrome_trace(std::str::from_utf8(&buf).unwrap()).expect("parse");
        assert!(parsed.is_empty());
    }

    #[test]
    fn bare_array_and_foreign_phases_are_accepted() {
        let text = r#"[
            {"name":"meta","ph":"M","ts":0},
            {"name":"infer","ph":"X","ts":10.0,"dur":5.0,"tid":3}
        ]"#;
        let parsed = parse_chrome_trace(text).expect("parse");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "infer");
        assert_eq!(parsed[0].tid, 3);
        assert_eq!(parsed[0].start_ns, 10_000);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"other\":1}").is_err());
        assert!(parse_chrome_trace(r#"{"traceEvents":[{"ph":"X","ts":1}]}"#).is_err());
        assert!(parse_chrome_trace(r#"{"traceEvents":[{"name":"x","ph":"X","ts":-4}]}"#).is_err());
    }
}
