//! Online SLO monitoring: sliding-window burn rates over the engine's
//! cumulative telemetry, driving a three-state health machine.
//!
//! Post-mortem metrics files tell you *that* fingerprint confidence
//! drifted; an operator needs to know *while it drifts*. The
//! [`SloMonitor`] is the live half: every tick the plane feeds it one
//! [`SloSample`] of **cumulative** counters plus the cumulative batch
//! latency histogram, and the monitor evaluates windowed (not
//! lifetime) rates against declarative [`SloConfig`] thresholds:
//!
//! | rule | windowed quantity |
//! |---|---|
//! | `p99_batch_latency` | p99 of batches observed inside the window |
//! | `drop_rate` | Δdropped / Δingested |
//! | `reject_rate` | Δrejected / Δ(classified + rejected) |
//! | `capture_reconcile` | ticks in the window with a failed reconcile |
//!
//! Windowing is what makes it a *burn-rate* monitor: a latency spike an
//! hour ago must not keep `/healthz` red, and lifetime averages would
//! dilute a live incident into invisibility. The windowed p99 is
//! computed by differencing the cumulative histogram snapshots at the
//! window edges — no per-batch samples are retained.
//!
//! State machine: `ok → degraded` on the first breaching evaluation,
//! `degraded → failing` after [`SloConfig::failing_after`] consecutive
//! breaching evaluations, and back to `ok` on the first clean one
//! (the sliding window already provides the hysteresis; a breach stays
//! visible for up to `window` ticks after the underlying pressure
//! stops). Each rule's ok→breaching edge appends a structured
//! [`SloBreach`] event to a bounded log for the audit/ops trail.
//!
//! The monitor is deliberately pull-driven and allocation-light: it
//! owns a ring of `window` samples and does arithmetic — no threads, no
//! clocks, no I/O — so a test can drive `observe()` tick by tick and
//! assert the exact transition tick.

use crate::json::escape;
use crate::metrics::HistogramSnapshot;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

/// The `/healthz` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// No SLO rule is breaching.
    Ok,
    /// At least one rule breached on the latest evaluation.
    Degraded,
    /// Rules have breached for [`SloConfig::failing_after`] consecutive
    /// evaluations.
    Failing,
}

impl HealthState {
    /// The lowercase wire name (`"ok"` / `"degraded"` / `"failing"`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Ok => "ok",
            HealthState::Degraded => "degraded",
            HealthState::Failing => "failing",
        }
    }
}

/// One tick's worth of **cumulative** engine telemetry. Counters are
/// since-start totals (the monitor differences them itself); only
/// `capture_reconciled` is an instantaneous judgement.
#[derive(Debug, Clone)]
pub struct SloSample {
    /// Cumulative batch-latency histogram snapshot (seconds).
    pub latency: HistogramSnapshot,
    /// Reports handed to ingest, cumulative.
    pub ingested: u64,
    /// Reports shed by backpressure, cumulative.
    pub dropped: u64,
    /// Reports rejected by the decision policy, cumulative.
    pub rejected: u64,
    /// Reports classified (accepted into a device window), cumulative.
    pub classified: u64,
    /// Whether capture-vs-engine counter reconciliation currently holds.
    pub capture_reconciled: bool,
}

impl SloSample {
    /// The all-zero baseline the first real sample is differenced
    /// against.
    fn zero() -> SloSample {
        SloSample {
            latency: HistogramSnapshot {
                buckets: Vec::new(),
                sum: 0.0,
                count: 0,
                quantiles: Vec::new(),
            },
            ingested: 0,
            dropped: 0,
            rejected: 0,
            classified: 0,
            capture_reconciled: true,
        }
    }
}

/// Declarative SLO thresholds. All rates are evaluated over the
/// sliding window, not over process lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Sliding-window length in ticks (samples retained).
    pub window: usize,
    /// Windowed p99 batch latency above this breaches
    /// `p99_batch_latency`.
    pub max_p99_batch_latency: Duration,
    /// Windowed `dropped/ingested` above this breaches `drop_rate`.
    pub max_drop_ratio: f64,
    /// Windowed `rejected/(classified+rejected)` above this breaches
    /// `reject_rate` (the reject-anomaly guard: a fleet suddenly
    /// failing authentication is an incident even at good latency).
    pub max_reject_ratio: f64,
    /// More than this many failed-reconcile ticks in the window
    /// breaches `capture_reconcile`. The default tolerates one: a tick
    /// that races the engine's capture-counter mirror mid-poll can see
    /// a transiently inconsistent state that is not an incident.
    pub max_reconcile_failures: u64,
    /// Consecutive breaching evaluations before `degraded` escalates to
    /// `failing`.
    pub failing_after: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window: 12,
            max_p99_batch_latency: Duration::from_millis(250),
            max_drop_ratio: 0.05,
            max_reject_ratio: 0.5,
            max_reconcile_failures: 1,
            failing_after: 5,
        }
    }
}

/// A structured breach event: recorded when a rule transitions from
/// clean to breaching.
#[derive(Debug, Clone, PartialEq)]
pub struct SloBreach {
    /// Monitor tick (1-based observe() count) at which the rule began
    /// breaching.
    pub tick: u64,
    /// Rule name (`p99_batch_latency`, `drop_rate`, `reject_rate`,
    /// `capture_reconcile`).
    pub rule: &'static str,
    /// The windowed value that breached.
    pub value: f64,
    /// The configured threshold it exceeded.
    pub threshold: f64,
    /// Overall health state after this evaluation.
    pub state: HealthState,
}

impl SloBreach {
    /// One-line JSON rendering for logs and the `/healthz` payload.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"tick\":{},\"rule\":\"{}\",\"value\":{},\"threshold\":{},\"state\":\"{}\"}}",
            self.tick,
            self.rule,
            fmt_ratio(self.value),
            fmt_ratio(self.threshold),
            self.state.as_str()
        );
        out
    }
}

/// One rule's windowed value vs threshold in a [`HealthReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStatus {
    /// Rule name.
    pub rule: &'static str,
    /// Windowed value at the latest evaluation.
    pub value: f64,
    /// Configured threshold.
    pub threshold: f64,
    /// Whether the rule is currently breaching.
    pub breaching: bool,
}

/// The outcome of one [`SloMonitor::observe`] evaluation — what
/// `/healthz` serves.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Overall state.
    pub state: HealthState,
    /// Monitor tick of this evaluation (1-based).
    pub tick: u64,
    /// Consecutive breaching evaluations ending at this tick.
    pub consecutive_breaching: u64,
    /// Every rule's windowed value vs threshold.
    pub rules: Vec<RuleStatus>,
}

impl HealthReport {
    /// JSON rendering for the `/healthz` endpoint.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"state\":\"{}\",\"tick\":{},\"consecutive_breaching\":{},\"rules\":[",
            self.state.as_str(),
            self.tick,
            self.consecutive_breaching
        );
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut rule = String::new();
            escape(r.rule, &mut rule);
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"value\":{},\"threshold\":{},\"breaching\":{}}}",
                rule,
                fmt_ratio(r.value),
                fmt_ratio(r.threshold),
                r.breaching
            );
        }
        out.push_str("]}");
        out
    }
}

/// The sliding-window burn-rate monitor. See the module docs
/// for the rule set and state machine.
#[derive(Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    ring: VecDeque<SloSample>,
    state: HealthState,
    consecutive_breaching: u64,
    ticks: u64,
    breaching_rules: Vec<&'static str>,
    events: VecDeque<SloBreach>,
}

/// Bound on the retained breach-event log.
const MAX_EVENTS: usize = 256;

impl SloMonitor {
    /// A monitor in the `ok` state with an empty window.
    pub fn new(cfg: SloConfig) -> SloMonitor {
        assert!(cfg.window >= 1, "SLO window must hold at least one tick");
        assert!(cfg.failing_after >= 1, "failing_after must be >= 1");
        SloMonitor {
            cfg,
            ring: VecDeque::new(),
            state: HealthState::Ok,
            consecutive_breaching: 0,
            ticks: 0,
            breaching_rules: Vec::new(),
            events: VecDeque::new(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Current state without a new evaluation.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Breach events recorded so far (bounded; oldest dropped first).
    pub fn events(&self) -> impl Iterator<Item = &SloBreach> {
        self.events.iter()
    }

    /// Feeds one cumulative sample, slides the window, evaluates every
    /// rule, advances the state machine and returns the health report.
    pub fn observe(&mut self, sample: SloSample) -> HealthReport {
        self.ticks += 1;
        self.ring.push_back(sample);
        while self.ring.len() > self.cfg.window {
            self.ring.pop_front();
        }
        // The window baseline: the sample just before the oldest
        // retained one — all-zero until the ring has ever been full.
        let zero = SloSample::zero();
        let oldest = if self.ring.len() < self.cfg.window || self.ring.len() == 1 {
            &zero
        } else {
            &self.ring[0]
        };
        let newest = self.ring.back().expect("ring is never empty here");

        let p99 = windowed_p99(&newest.latency, &oldest.latency);
        let d_ingested = newest.ingested.saturating_sub(oldest.ingested);
        let d_dropped = newest.dropped.saturating_sub(oldest.dropped);
        let d_rejected = newest.rejected.saturating_sub(oldest.rejected);
        let d_classified = newest.classified.saturating_sub(oldest.classified);
        let drop_rate = ratio(d_dropped, d_ingested);
        let reject_rate = ratio(d_rejected, d_classified + d_rejected);
        let reconcile_failures = self.ring.iter().filter(|s| !s.capture_reconciled).count() as u64;

        let rules = vec![
            RuleStatus {
                rule: "p99_batch_latency",
                value: p99,
                threshold: self.cfg.max_p99_batch_latency.as_secs_f64(),
                breaching: p99 > self.cfg.max_p99_batch_latency.as_secs_f64(),
            },
            RuleStatus {
                rule: "drop_rate",
                value: drop_rate,
                threshold: self.cfg.max_drop_ratio,
                breaching: drop_rate > self.cfg.max_drop_ratio,
            },
            RuleStatus {
                rule: "reject_rate",
                value: reject_rate,
                threshold: self.cfg.max_reject_ratio,
                breaching: reject_rate > self.cfg.max_reject_ratio,
            },
            RuleStatus {
                rule: "capture_reconcile",
                value: reconcile_failures as f64,
                threshold: self.cfg.max_reconcile_failures as f64,
                breaching: reconcile_failures > self.cfg.max_reconcile_failures,
            },
        ];

        let any_breaching = rules.iter().any(|r| r.breaching);
        if any_breaching {
            self.consecutive_breaching += 1;
        } else {
            self.consecutive_breaching = 0;
        }
        self.state = if self.consecutive_breaching == 0 {
            HealthState::Ok
        } else if self.consecutive_breaching >= self.cfg.failing_after {
            HealthState::Failing
        } else {
            HealthState::Degraded
        };

        // Record an event on each rule's clean → breaching edge.
        for r in rules.iter().filter(|r| r.breaching) {
            if !self.breaching_rules.contains(&r.rule) {
                self.events.push_back(SloBreach {
                    tick: self.ticks,
                    rule: r.rule,
                    value: r.value,
                    threshold: r.threshold,
                    state: self.state,
                });
                while self.events.len() > MAX_EVENTS {
                    self.events.pop_front();
                }
            }
        }
        self.breaching_rules = rules
            .iter()
            .filter(|r| r.breaching)
            .map(|r| r.rule)
            .collect();

        HealthReport {
            state: self.state,
            tick: self.ticks,
            consecutive_breaching: self.consecutive_breaching,
            rules,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    num as f64 / den.max(1) as f64
}

/// Formats a finite value for embedding in JSON (NaN/inf would be
/// invalid JSON; the monitor never produces them but defence is cheap).
fn fmt_ratio(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// The p99 of the observations made *between* two cumulative histogram
/// snapshots, as the upper bound of the bucket containing the q=0.99
/// rank. Conservative: reports the bound, never interpolates below an
/// observation. Returns 0 when the window holds no observations.
fn windowed_p99(newest: &HistogramSnapshot, oldest: &HistogramSnapshot) -> f64 {
    // Cumulative count the older snapshot had at-or-below bound `b`.
    // Bucket layouts may differ between snapshots (log-linear grids
    // grow), so map by bound value, not by index.
    let old_at = |b: f64| -> u64 {
        oldest
            .buckets
            .iter()
            .take_while(|&&(ob, _)| ob <= b)
            .last()
            .map_or(0, |&(_, c)| c)
    };
    let total = newest.count.saturating_sub(oldest.count);
    if total == 0 {
        return 0.0;
    }
    let rank = ((total as f64) * 0.99).ceil() as u64;
    for &(b, cum) in &newest.buckets {
        if cum.saturating_sub(old_at(b)) >= rank {
            return b;
        }
    }
    // Rank falls in the implicit +Inf bucket: report the largest finite
    // bound (or the mean when the histogram has no buckets at all).
    newest
        .buckets
        .last()
        .map_or(newest.sum / newest.count.max(1) as f64, |&(b, _)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn hist(buckets: Vec<(f64, u64)>, sum: f64, count: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets,
            sum,
            count,
            quantiles: Vec::new(),
        }
    }

    fn quiet(ingested: u64) -> SloSample {
        SloSample {
            latency: hist(vec![(0.001, ingested), (0.01, ingested)], 0.0, ingested),
            ingested,
            dropped: 0,
            rejected: 0,
            classified: ingested,
            capture_reconciled: true,
        }
    }

    fn cfg() -> SloConfig {
        SloConfig {
            window: 4,
            max_p99_batch_latency: Duration::from_millis(100),
            max_drop_ratio: 0.05,
            max_reject_ratio: 0.5,
            max_reconcile_failures: 0,
            failing_after: 3,
        }
    }

    #[test]
    fn healthy_stream_stays_ok() {
        let mut mon = SloMonitor::new(cfg());
        for i in 1..=10 {
            let r = mon.observe(quiet(i * 100));
            assert_eq!(r.state, HealthState::Ok, "tick {i}");
        }
        assert_eq!(mon.events().count(), 0);
    }

    #[test]
    fn drop_pressure_walks_ok_degraded_failing_then_recovers() {
        let mut mon = SloMonitor::new(cfg());
        assert_eq!(mon.observe(quiet(100)).state, HealthState::Ok);
        // Drops start: 50% of new ingest is shed.
        let mut s = quiet(200);
        s.dropped = 50;
        assert_eq!(mon.observe(s.clone()).state, HealthState::Degraded);
        s.ingested = 300;
        assert_eq!(mon.observe(s.clone()).state, HealthState::Degraded);
        s.ingested = 400;
        let r = mon.observe(s.clone());
        // failing_after = 3
        assert_eq!(r.state, HealthState::Failing);
        // One breach event for the rule's clean → breaching edge.
        let events: Vec<_> = mon.events().collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].rule, "drop_rate");
        assert_eq!(events[0].tick, 2);
        // Pressure stops; once the window slides past the incident the
        // state returns to ok.
        for i in 5..=12 {
            s.ingested = i * 100;
            mon.observe(s.clone());
        }
        assert_eq!(mon.state(), HealthState::Ok);
    }

    #[test]
    fn latency_spike_breaches_p99_and_is_forgotten_after_window() {
        let mut mon = SloMonitor::new(cfg());
        mon.observe(quiet(100));
        // 100 new batches all at ~0.5 s.
        let spike = SloSample {
            latency: hist(vec![(0.001, 100), (0.01, 100), (1.0, 200)], 50.0, 200),
            ingested: 200,
            dropped: 0,
            rejected: 0,
            classified: 200,
            capture_reconciled: true,
        };
        let r = mon.observe(spike.clone());
        assert_eq!(r.state, HealthState::Degraded);
        let p99 = r
            .rules
            .iter()
            .find(|r| r.rule == "p99_batch_latency")
            .unwrap();
        assert!(p99.breaching && p99.value >= 0.5, "p99 {}", p99.value);
        // No further slow batches: after `window` quiet ticks the spike
        // has slid out and p99 is clean again.
        let mut after = spike;
        for _ in 0..5 {
            after.ingested += 100;
            mon.observe(after.clone());
        }
        assert_eq!(mon.state(), HealthState::Ok);
    }

    #[test]
    fn reject_anomaly_and_reconcile_rules_fire() {
        let mut mon = SloMonitor::new(cfg());
        let mut s = quiet(100);
        s.rejected = 80;
        s.classified = 20;
        s.capture_reconciled = false;
        let r = mon.observe(s);
        assert_eq!(r.state, HealthState::Degraded);
        let breaching: Vec<_> = r
            .rules
            .iter()
            .filter(|r| r.breaching)
            .map(|r| r.rule)
            .collect();
        assert!(breaching.contains(&"reject_rate"), "{breaching:?}");
        assert!(breaching.contains(&"capture_reconcile"), "{breaching:?}");
        assert_eq!(mon.events().count(), 2);
    }

    #[test]
    fn report_and_breach_render_valid_json() {
        let mut mon = SloMonitor::new(cfg());
        let mut s = quiet(100);
        s.dropped = 50;
        let report = mon.observe(s);
        let v = JsonValue::parse(&report.to_json()).expect("health json");
        assert_eq!(v.get("state").unwrap().as_str(), Some("degraded"));
        let rules = v.get("rules").unwrap().as_array().unwrap();
        assert_eq!(rules.len(), 4);
        let breach = mon.events().next().expect("one breach");
        let b = JsonValue::parse(&breach.to_json()).expect("breach json");
        assert_eq!(b.get("rule").unwrap().as_str(), Some("drop_rate"));
    }

    #[test]
    fn windowed_p99_differences_cumulative_snapshots() {
        // Old snapshot: 100 obs all <= 1ms. New: +100 obs at <= 1s.
        let old = hist(vec![(0.001, 100), (0.01, 100)], 0.1, 100);
        let new = hist(vec![(0.001, 100), (0.01, 100), (1.0, 200)], 50.0, 200);
        let p99 = windowed_p99(&new, &old);
        assert_eq!(p99, 1.0);
        // Lifetime p99 over the same new snapshot would still be 1.0
        // here, but differencing against new-as-old yields no data.
        assert_eq!(windowed_p99(&new, &new), 0.0);
    }
}
