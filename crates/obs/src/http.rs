//! An embedded HTTP/1.1 observability server.
//!
//! [`ObsServer`] is the scrape surface of the live observability plane:
//! a hand-rolled, dependency-free `GET`-only HTTP/1.1 server built on
//! `std::net` — like the rest of the workspace it uses no crates.io
//! code. It is deliberately **not** a general web server; it exists so
//! a Prometheus scraper, a `curl`, or a CI check can read metrics out
//! of a running engine without any file in between, and it is hardened
//! so that *no* client behaviour can wedge the process it observes:
//!
//! * **Bounded connections** — a fixed pool of
//!   [`ObsServerConfig::max_connections`] worker threads serves
//!   requests; when every worker is busy and the (equally bounded)
//!   hand-off queue is full, new connections get an immediate
//!   `503 Service Unavailable` and are closed. Nothing queues without
//!   bound, and the accept loop never blocks on a client.
//! * **Read/write timeouts** — every connection socket carries
//!   [`ObsServerConfig::read_timeout`] / `write_timeout`; a client that
//!   stops sending (or reading) is dropped, releasing its worker.
//! * **Request-size caps** — request heads larger than
//!   [`ObsServerConfig::max_request_bytes`] are rejected with `431`,
//!   and requests carrying a body are rejected with `413` — a scrape
//!   endpoint has no business receiving payloads.
//! * **Panic containment** — a handler panic is caught and answered
//!   with `500`; the worker keeps serving.
//!
//! The server knows nothing about engines or metrics: it takes one
//! routing closure `Fn(&HttpRequest) -> HttpResponse` and runs it for
//! every well-formed `GET`. [`http_get`] is the matching loopback
//! client, used by `obs-check --scrape` and the tests so CI needs no
//! `curl`.
//!
//! ```no_run
//! use deepcsi_obs::{http_get, HttpResponse, ObsServer, ObsServerConfig};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let server = ObsServer::bind(
//!     "127.0.0.1:0",
//!     ObsServerConfig::default(),
//!     Arc::new(|req| match req.path.as_str() {
//!         "/healthz" => HttpResponse::json(r#"{"state":"ok"}"#),
//!         _ => HttpResponse::not_found(),
//!     }),
//! )
//! .expect("bind");
//! let addr = server.local_addr().to_string();
//! let (status, body) = http_get(&addr, "/healthz", Duration::from_secs(2)).expect("get");
//! assert_eq!((status, body.contains("ok")), (200, true));
//! server.shutdown();
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Bounds and timeouts for an [`ObsServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsServerConfig {
    /// Concurrent connections served (the worker-pool size). Further
    /// connections beyond this *and* an equally sized hand-off queue
    /// receive an immediate `503`.
    pub max_connections: usize,
    /// Per-connection socket read timeout (request head must arrive
    /// within it).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (a client that stops reading
    /// the response is dropped).
    pub write_timeout: Duration,
    /// Maximum accepted request-head size in bytes; larger heads are
    /// answered with `431`.
    pub max_request_bytes: usize,
}

impl Default for ObsServerConfig {
    fn default() -> Self {
        ObsServerConfig {
            max_connections: 4,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_request_bytes: 8 * 1024,
        }
    }
}

/// A parsed (GET) request: method, path, and decoded query pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The request method (`GET` for everything a handler sees).
    pub method: String,
    /// The path component of the request target (no query string).
    pub path: String,
    /// `key=value` pairs from the query string, in order. Keys without
    /// a `=` parse as `(key, "")`.
    pub query: Vec<(String, String)>,
}

impl HttpRequest {
    /// The first query value for `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The first query value for `key` parsed as `u64` (`None` when
    /// absent or unparseable).
    pub fn query_u64(&self, key: &str) -> Option<u64> {
        self.query(key).and_then(|v| v.parse().ok())
    }
}

/// A response: status code, content type and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` with a plain-text body (the Prometheus exposition
    /// content type, which is text).
    pub fn text(body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A `200 OK` with a JSON body.
    pub fn json(body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: 200,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// The same response with a different status code (e.g. a JSON body
    /// on a `503`).
    pub fn with_status(mut self, status: u16) -> HttpResponse {
        self.status = status;
        self
    }

    /// A `404 Not Found`.
    pub fn not_found() -> HttpResponse {
        HttpResponse::text("not found\n").with_status(404)
    }

    fn status_reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    /// Serializes status line + headers + body. Always
    /// `Connection: close` — one request per connection keeps the
    /// bounded-worker accounting exact.
    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            Self::status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The routing closure an [`ObsServer`] runs for every well-formed
/// `GET` request.
pub type HttpHandler = dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync;

/// Counters the server keeps about its own behaviour (exposed so the
/// plane can publish scrape-plane health next to engine health).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted and handed to a worker.
    pub accepted: AtomicU64,
    /// Connections turned away with `503` (pool and queue full).
    pub rejected: AtomicU64,
    /// Requests answered (any status).
    pub responses: AtomicU64,
}

/// The embedded observability HTTP server. See the module docs for
/// the hardening contract.
pub struct ObsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<ServerCounters>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9644"`, or port `0` for an
    /// ephemeral port — read it back with [`ObsServer::local_addr`])
    /// and starts the accept loop plus `cfg.max_connections` worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error (address in use, permission, …).
    pub fn bind(
        addr: &str,
        cfg: ObsServerConfig,
        handler: Arc<HttpHandler>,
    ) -> std::io::Result<ObsServer> {
        assert!(cfg.max_connections > 0, "need at least one connection");
        assert!(cfg.max_request_bytes > 0, "request cap must be positive");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept lets the loop notice the stop flag without
        // a self-connect trick.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ServerCounters::default());
        // Bounded hand-off: accepted sockets wait here for a worker; a
        // full queue means every worker is busy *and* a queue's worth of
        // requests already waits, so new connections are turned away.
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.max_connections);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..cfg.max_connections)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let cfg = cfg.clone();
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("obs-http-{i}"))
                    .spawn(move || worker_loop(&rx, &cfg, handler.as_ref(), &counters))
                    .expect("spawn obs-http worker")
            })
            .collect();
        let accept = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("obs-http-accept".to_string())
                .spawn(move || accept_loop(&listener, &stop, &tx, &counters))
                .expect("spawn obs-http accept loop")
        };
        Ok(ObsServer {
            local_addr,
            stop,
            accept: Some(accept),
            workers,
            counters,
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's own accept/reject/response counters.
    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// Stops accepting, drains the workers and joins every thread.
    /// In-flight requests finish (bounded by the socket timeouts).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join(); // dropping the sender ends the workers
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    tx: &SyncSender<TcpStream>,
    counters: &ServerCounters,
) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => match tx.try_send(stream) {
                Ok(()) => {
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Full(mut stream)) => {
                    // Pool and queue saturated: turn the client away
                    // without ever blocking the accept loop for long.
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
                    let _ = HttpResponse::text("busy\n")
                        .with_status(503)
                        .write_to(&mut stream);
                    drain_and_close(stream);
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    cfg: &ObsServerConfig,
    handler: &HttpHandler,
    counters: &ServerCounters,
) {
    loop {
        // Hold the receiver lock only for the dequeue, not the serve.
        let stream = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
            Ok(s) => s,
            Err(_) => return, // accept loop gone: shutdown
        };
        serve_connection(stream, cfg, handler, counters);
    }
}

/// Serves exactly one request on `stream` and closes it. Every failure
/// mode maps to a status code; none of them propagates.
fn serve_connection(
    mut stream: TcpStream,
    cfg: &ObsServerConfig,
    handler: &HttpHandler,
    counters: &ServerCounters,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let response = match read_request(&mut stream, cfg.max_request_bytes) {
        Ok(req) if req.method != "GET" => HttpResponse::text("GET only\n").with_status(405),
        Ok(req) => {
            // A handler panic answers 500 and the worker lives on.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&req)))
                .unwrap_or_else(|_| HttpResponse::text("handler panicked\n").with_status(500))
        }
        Err(resp) => resp,
    };
    // Count before the bytes leave the process: a client that has read
    // its response must already see it in `responses` (tests and the
    // plane's own gauges rely on that ordering).
    counters.responses.fetch_add(1, Ordering::Relaxed);
    let _ = response.write_to(&mut stream);
    drain_and_close(stream);
}

/// Half-closes the write side, then reads until the client closes (or
/// a short timeout). Closing a socket with unread request bytes in its
/// receive buffer sends an RST, which can discard the response we just
/// wrote before the client reads it — draining first guarantees the
/// client always sees its status line, including the `503` path.
fn drain_and_close(mut stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 256];
    for _ in 0..4 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Reads and parses one request head (through the blank line), mapping
/// every malformed/oversized/slow input to an error response.
fn read_request(stream: &mut TcpStream, cap: usize) -> Result<HttpRequest, HttpResponse> {
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > cap {
            return Err(HttpResponse::text("request head too large\n").with_status(431));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpResponse::text("truncated request\n").with_status(400)),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpResponse::text("request timeout\n").with_status(408));
            }
            Err(_) => return Err(HttpResponse::text("read error\n").with_status(400)),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpResponse::text("non-UTF-8 request head\n").with_status(400))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => return Err(HttpResponse::text("malformed request line\n").with_status(400)),
    };
    // A scrape endpoint accepts no payloads: any declared body is
    // rejected outright, so a client cannot stream data at a worker.
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length")
            && value.trim().parse::<u64>().ok().is_some_and(|n| n > 0)
        {
            return Err(HttpResponse::text("request bodies not accepted\n").with_status(413));
        }
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        query,
    })
}

/// Byte offset of the head (everything before the `\r\n\r\n`), if the
/// terminator has arrived.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A minimal loopback HTTP GET — the client half of [`ObsServer`],
/// used by `obs-check --scrape` and the tests so CI needs no `curl`.
/// Returns `(status, body)`; connection and socket timeouts are all
/// `timeout`.
///
/// # Errors
///
/// Returns connect/read/write errors and malformed status lines as
/// `std::io::Error`.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let sock_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    let status: u16 = head
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server(cfg: ObsServerConfig) -> ObsServer {
        ObsServer::bind(
            "127.0.0.1:0",
            cfg,
            Arc::new(|req: &HttpRequest| match req.path.as_str() {
                "/ok" => HttpResponse::text("hello"),
                "/json" => HttpResponse::json(r#"{"n":1}"#),
                "/tail" => {
                    let n = req.query_u64("n").unwrap_or(0);
                    HttpResponse::json(format!(r#"{{"n":{n}}}"#))
                }
                "/panic" => panic!("handler bug"),
                _ => HttpResponse::not_found(),
            }),
        )
        .expect("bind ephemeral")
    }

    #[test]
    fn serves_routes_queries_and_404s() {
        let server = echo_server(ObsServerConfig::default());
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);
        assert_eq!(http_get(&addr, "/ok", t).unwrap(), (200, "hello".into()));
        assert_eq!(
            http_get(&addr, "/tail?n=7", t).unwrap(),
            (200, r#"{"n":7}"#.into())
        );
        assert_eq!(http_get(&addr, "/missing", t).unwrap().0, 404);
        server.shutdown();
    }

    #[test]
    fn handler_panic_answers_500_and_server_survives() {
        let server = echo_server(ObsServerConfig::default());
        let addr = server.local_addr().to_string();
        let t = Duration::from_secs(2);
        assert_eq!(http_get(&addr, "/panic", t).unwrap().0, 500);
        // The worker that caught the panic still serves.
        assert_eq!(http_get(&addr, "/ok", t).unwrap().0, 200);
        server.shutdown();
    }

    #[test]
    fn non_get_and_bodies_are_rejected() {
        let server = echo_server(ObsServerConfig::default());
        let addr = server.local_addr();
        let send = |payload: &str| -> u16 {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            s.write_all(payload.as_bytes()).unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out.split_ascii_whitespace()
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(send("POST /ok HTTP/1.1\r\n\r\n"), 405);
        assert_eq!(send("GET /ok HTTP/1.1\r\nContent-Length: 10\r\n\r\n"), 413);
        assert_eq!(send("garbage\r\n\r\n"), 400);
        server.shutdown();
    }

    #[test]
    fn oversized_request_heads_are_rejected() {
        let server = echo_server(ObsServerConfig {
            max_request_bytes: 256,
            ..ObsServerConfig::default()
        });
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(4096));
        s.write_all(huge.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 431"), "got {out:?}");
        server.shutdown();
    }

    #[test]
    fn slow_client_times_out_instead_of_wedging_a_worker() {
        let server = echo_server(ObsServerConfig {
            max_connections: 1,
            read_timeout: Duration::from_millis(100),
            ..ObsServerConfig::default()
        });
        let addr = server.local_addr();
        // Opens a connection and never sends a full request head.
        let mut idle = TcpStream::connect(addr).unwrap();
        idle.write_all(b"GET /ok HT").unwrap();
        // Let the single worker dequeue the idle client first, so the
        // next connection waits in the hand-off queue rather than being
        // turned away with 503.
        std::thread::sleep(Duration::from_millis(50));
        // The single worker must shed the idle client and serve this.
        let (status, body) =
            http_get(&addr.to_string(), "/ok", Duration::from_secs(5)).expect("served after shed");
        assert_eq!((status, body.as_str()), (200, "hello"));
        let mut out = String::new();
        let _ = idle.read_to_string(&mut out); // 408 or reset; either is fine
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_all_answered() {
        let server = Arc::new(echo_server(ObsServerConfig::default()));
        let addr = server.local_addr().to_string();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..25 {
                    // Overload shows up as 503, never as a hang or error.
                    match http_get(&addr, "/ok", Duration::from_secs(5)) {
                        Ok((200, _)) => ok += 1,
                        Ok((503, _)) => {}
                        other => panic!("unexpected scrape outcome {other:?}"),
                    }
                }
                ok
            }));
        }
        let served: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(served > 0, "no request ever succeeded");
        let c = server.counters();
        assert!(c.responses.load(Ordering::Relaxed) >= u64::from(served));
    }
}
