//! A Prometheus text-exposition parser/validator.
//!
//! Covers the subset [`crate::MetricsRegistry::to_prometheus`] emits —
//! `# HELP`/`# TYPE` comments and `name{labels} value` samples — which
//! is also the subset any conformant scraper must accept. Its job is
//! validation without a Prometheus server in the loop: the CI smoke
//! step parses the file `deepcsi-served --metrics-file` wrote and fails
//! on bad names, bad label syntax or non-finite values.

use crate::metrics::valid_name;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Sample name (for histograms, includes the `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label `(key, value)` pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// The value. `+Inf`-valued samples are represented as
    /// [`f64::INFINITY`]; NaN is rejected during parsing.
    pub value: f64,
}

/// Parses a text exposition, validating as it goes.
///
/// # Errors
///
/// A message naming the first offending line: invalid metric/label
/// name, malformed label set, unparsable or NaN value.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        samples.push(sample);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<PromSample, String> {
    // name[{labels}] value
    let (head, value_text) = line
        .rsplit_once(|c: char| c.is_whitespace())
        .ok_or_else(|| format!("no value in {line:?}"))?;
    let head = head.trim();
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if !valid_name(&name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let value = match value_text {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("unparsable value {v:?}"))?,
    };
    if value.is_nan() {
        return Err(format!("NaN value for {name}"));
    }
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {body:?}"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) || key.contains(':') {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value in {body:?}"));
        }
        // Scan to the closing quote, honoring backslash escapes.
        let bytes = rest.as_bytes();
        let mut i = 1;
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err(format!("unterminated label value in {body:?}")),
                Some(b'"') => break,
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'"') => value.push('"'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'n') => value.push('\n'),
                        _ => return Err(format!("bad escape in label value in {body:?}")),
                    }
                    i += 2;
                }
                Some(_) => {
                    let s = &rest[i..];
                    let ch = s.chars().next().expect("non-empty");
                    value.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        labels.push((key, value));
        rest = rest[i + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' between labels in {body:?}"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let text = "\
# HELP x_total things
# TYPE x_total counter
x_total 5
lat_bucket{le=\"0.01\"} 3
lat_bucket{le=\"+Inf\"} 4
info{policy=\"fixed\",precision=\"int8\"} 1
";
        let samples = parse_prometheus(text).expect("parse");
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].name, "x_total");
        assert_eq!(samples[0].value, 5.0);
        assert_eq!(
            samples[1].labels,
            vec![("le".to_string(), "0.01".to_string())]
        );
        assert_eq!(samples[2].value, 4.0);
        assert_eq!(samples[2].labels[0].1, "+Inf");
        assert_eq!(samples[3].labels.len(), 2);
    }

    #[test]
    fn rejects_nan_bad_names_and_broken_labels() {
        assert!(parse_prometheus("x NaN").is_err());
        assert!(parse_prometheus("9bad 1").is_err());
        assert!(parse_prometheus("x{le=\"0.1\" 1").is_err());
        assert!(parse_prometheus("x{le=0.1} 1").is_err());
        assert!(parse_prometheus("x{le=\"0.1} 1").is_err());
        assert!(parse_prometheus("x").is_err());
    }

    #[test]
    fn escaped_label_values_round_trip() {
        let samples = parse_prometheus("x{k=\"a\\\"b\\\\c\"} 1").expect("parse");
        assert_eq!(samples[0].labels[0].1, "a\"b\\c");
    }
}
