//! Per-op inference profiling.
//!
//! A [`Profiler`] rides inside a `deepcsi_nn::InferCtx`: when one is
//! attached, `FrozenModel::infer_batch` wraps every op with a timestamp
//! pair and reports `(op index, name, wall time, activation bytes
//! moved)` here. The profiler aggregates per op position — the
//! per-layer table the mixed-precision autotuner needs to decide which
//! layers are worth quantizing — and, when built with a tracer, also
//! emits one span per op into the sampled trace so kernels show up on
//! the Chrome timeline under the engine's `infer` stage.
//!
//! With no profiler attached the hot path pays a single `Option`
//! branch per inference call; nothing is timed.

use crate::span::ThreadTracer;
use std::time::Instant;

/// Aggregated cost of one op position across every profiled batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpStat {
    /// Op name (as reported by `InferOp::name`).
    pub name: &'static str,
    /// Inference calls that executed this op.
    pub calls: u64,
    /// Total wall time, nanoseconds.
    pub ns: u64,
    /// Activation bytes moved (input plane read + output plane
    /// written). Weight traffic is not counted — it is a property of
    /// the model, not the batch.
    pub bytes: u64,
    /// Samples processed across those calls.
    pub samples: u64,
}

impl OpStat {
    /// Mean nanoseconds per processed sample (0 when unused).
    pub fn ns_per_sample(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.ns as f64 / self.samples as f64
        }
    }
}

/// Accumulates per-op wall time and bytes, optionally emitting per-op
/// spans into a trace.
#[derive(Debug, Default)]
pub struct Profiler {
    stats: Vec<OpStat>,
    trace: Option<ThreadTracer>,
    /// Whether the current batch emits spans (decided once per batch by
    /// the tracer's sampling gate — aggregation is always on).
    batch_sampled: bool,
}

impl Profiler {
    /// A profiler that only aggregates (no span emission).
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// A profiler that additionally emits one span per op into `trace`
    /// for sampled batches.
    pub fn with_tracer(trace: ThreadTracer) -> Profiler {
        Profiler {
            stats: Vec::new(),
            trace: Some(trace),
            batch_sampled: false,
        }
    }

    /// Called by the inference loop at the start of each batch: decides
    /// whether this batch's ops emit spans.
    pub fn batch_begin(&mut self) {
        self.batch_sampled = self.trace.as_ref().is_some_and(|t| t.sample());
    }

    /// Records one executed op. `start` is the instant taken just
    /// before `apply`; the end is now. `bytes` is the activation
    /// traffic (in + out planes), `samples` the batch size.
    pub fn record_op(
        &mut self,
        index: usize,
        name: &'static str,
        start: Instant,
        bytes: u64,
        samples: u64,
    ) {
        let end = Instant::now();
        if index >= self.stats.len() {
            self.stats.resize(index + 1, OpStat::default());
        }
        let stat = &mut self.stats[index];
        stat.name = name;
        stat.calls += 1;
        stat.ns += end.duration_since(start).as_nanos() as u64;
        stat.bytes += bytes;
        stat.samples += samples;
        if self.batch_sampled {
            if let Some(t) = self.trace.as_mut() {
                t.record(name, start, end);
            }
        }
    }

    /// The per-op table, indexed by op position.
    pub fn ops(&self) -> &[OpStat] {
        &self.stats
    }

    /// Folds another profiler's table into this one (worker aggregation
    /// at shutdown). Panics if the two tables disagree on an op's name
    /// — that would mean they profiled different models.
    pub fn absorb(&mut self, other: &Profiler) {
        merge_op_stats(&mut self.stats, &other.stats);
    }

    /// Consumes the profiler, returning its table (flushing any traced
    /// spans).
    pub fn into_ops(mut self) -> Vec<OpStat> {
        if let Some(t) = self.trace.as_mut() {
            t.flush();
        }
        std::mem::take(&mut self.stats)
    }
}

/// Folds `from` into `into`, position by position.
///
/// # Panics
///
/// Panics when the same position carries two different op names — the
/// tables come from different models and summing them would be a bug.
pub fn merge_op_stats(into: &mut Vec<OpStat>, from: &[OpStat]) {
    if into.len() < from.len() {
        into.resize(from.len(), OpStat::default());
    }
    for (i, s) in from.iter().enumerate() {
        let dst = &mut into[i];
        assert!(
            dst.calls == 0 || s.calls == 0 || dst.name == s.name,
            "op {i} name mismatch: {:?} vs {:?} (different models?)",
            dst.name,
            s.name
        );
        if s.calls > 0 {
            dst.name = s.name;
        }
        dst.calls += s.calls;
        dst.ns += s.ns;
        dst.bytes += s.bytes;
        dst.samples += s.samples;
    }
}

/// Renders an aggregated op table as an aligned, human-readable block
/// (one line per op: share of total time, ns/sample, MiB moved).
pub fn format_op_table(ops: &[OpStat]) -> String {
    use std::fmt::Write as _;
    let total_ns: u64 = ops.iter().map(|o| o.ns).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>3}  {:<12} {:>7}  {:>12}  {:>10}  {:>10}",
        "op", "name", "share", "ns/sample", "total ms", "MiB moved"
    );
    for (i, o) in ops.iter().enumerate() {
        if o.calls == 0 {
            continue;
        }
        let share = if total_ns == 0 {
            0.0
        } else {
            o.ns as f64 / total_ns as f64 * 100.0
        };
        let _ = writeln!(
            out,
            "{i:>3}  {:<12} {share:>6.1}%  {:>12.0}  {:>10.3}  {:>10.2}",
            o.name,
            o.ns_per_sample(),
            o.ns as f64 / 1e6,
            o.bytes as f64 / (1024.0 * 1024.0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{TraceConfig, Tracer};

    #[test]
    fn records_aggregate_per_position() {
        let mut p = Profiler::new();
        let t0 = Instant::now();
        p.batch_begin();
        p.record_op(0, "conv", t0, 1024, 8);
        p.record_op(1, "selu", t0, 512, 8);
        p.batch_begin();
        p.record_op(0, "conv", t0, 1024, 4);
        let ops = p.ops();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].name, "conv");
        assert_eq!(ops[0].calls, 2);
        assert_eq!(ops[0].bytes, 2048);
        assert_eq!(ops[0].samples, 12);
        assert!(ops[0].ns_per_sample() >= 0.0);
    }

    #[test]
    fn absorb_sums_matching_tables() {
        let t0 = Instant::now();
        let mut a = Profiler::new();
        a.record_op(0, "dense", t0, 10, 1);
        let mut b = Profiler::new();
        b.record_op(0, "dense", t0, 30, 3);
        b.record_op(1, "selu", t0, 5, 3);
        a.absorb(&b);
        assert_eq!(a.ops()[0].calls, 2);
        assert_eq!(a.ops()[0].bytes, 40);
        assert_eq!(a.ops()[1].name, "selu");
    }

    #[test]
    #[should_panic(expected = "name mismatch")]
    fn absorb_rejects_mismatched_models() {
        let t0 = Instant::now();
        let mut a = Profiler::new();
        a.record_op(0, "dense", t0, 10, 1);
        let mut b = Profiler::new();
        b.record_op(0, "conv", t0, 10, 1);
        a.absorb(&b);
    }

    #[test]
    fn traced_profiler_emits_spans_for_sampled_batches() {
        let tracer = Tracer::new(TraceConfig::always());
        let mut p = Profiler::with_tracer(tracer.thread());
        p.batch_begin();
        let t0 = Instant::now();
        p.record_op(0, "conv", t0, 64, 2);
        let ops = p.into_ops(); // flushes
        assert_eq!(ops[0].calls, 1);
        let spans = tracer.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "conv");
    }

    #[test]
    fn table_formats() {
        let mut p = Profiler::new();
        p.record_op(0, "conv", Instant::now(), 4096, 16);
        let table = format_op_table(p.ops());
        assert!(table.contains("conv"));
        assert!(table.contains("share"));
    }
}
