//! A minimal JSON reader — just enough to round-trip the artifacts this
//! crate itself emits (Chrome traces, JSONL metrics) without a
//! dependency. Strict where it matters for validation: rejects trailing
//! garbage, non-finite numbers and malformed escapes.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always finite — JSON has no NaN/inf).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are sorted (BTreeMap) — JSON objects are
    /// unordered, and deterministic iteration keeps tests stable.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses one complete JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(&format!("invalid number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(JsonValue::Number(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates and the like fall back to the
                            // replacement character — the writer never
                            // emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged — the input is a &str).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes a string for embedding in JSON output (adds no quotes).
pub(crate) fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = JsonValue::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null}"#)
            .expect("parse");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("NaN").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut enc = String::from('"');
        escape(nasty, &mut enc);
        enc.push('"');
        let v = JsonValue::parse(&enc).expect("parse escaped");
        assert_eq!(v.as_str(), Some(nasty));
    }
}
