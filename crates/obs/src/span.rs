//! Span tracing: a sampling gate, lock-free per-thread ring buffers of
//! completed spans, and a pluggable flush sink.
//!
//! The design splits hot from cold:
//!
//! * The **hot path** is [`ThreadTracer::record`] — a write into a ring
//!   the thread exclusively owns (no lock, no atomic, no allocation
//!   after the ring is built) — and [`Tracer::sample`], one relaxed
//!   `fetch_add` on a shared counter. A thread that decides a batch is
//!   not sampled records nothing at all.
//! * The **cold path** is [`ThreadTracer::flush`] (also run on drop):
//!   the ring's events are handed to the [`TraceSink`] in arrival
//!   order. The built-in collector sink appends to a mutex-guarded
//!   vector that [`Tracer::drain`] empties — the mutex is only ever
//!   taken at flush/drain time, never per span.
//!
//! Rings are bounded ([`TraceConfig::ring_capacity`] events per
//! thread); when a ring wraps, the oldest span is overwritten and
//! counted in [`Tracer::dropped`] — tracing degrades by forgetting
//! history, never by blocking the pipeline.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span: a named interval on one thread, relative to the
/// owning [`Tracer`]'s epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (`"infer"`, `"queue_wait"`, an op name, …).
    pub name: &'static str,
    /// Trace-local thread id (assigned by [`Tracer::thread`]).
    pub tid: u32,
    /// Start, in nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Receives flushed span batches (a file streamer, a test collector …).
///
/// `consume` is called from whichever thread flushes — at ring-flush
/// granularity, not per span — so a sink may take a lock without
/// touching the tracing hot path.
pub trait TraceSink: Send + Sync {
    /// Accepts one flushed batch of spans, in ring (arrival) order.
    fn consume(&self, events: &[SpanEvent]);
}

/// The built-in collector: accumulates everything for [`Tracer::drain`].
#[derive(Debug, Default)]
struct CollectorSink {
    events: Mutex<Vec<SpanEvent>>,
}

impl TraceSink for CollectorSink {
    fn consume(&self, events: &[SpanEvent]) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(events);
    }
}

/// Tracing knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When `false`, every record call is a no-op and
    /// [`Tracer::sample`] always answers `false` — the instrumented
    /// code's only cost is the branch on that answer.
    pub enabled: bool,
    /// Sample 1 in `sample_every` units of work (the caller decides the
    /// unit — the engine samples per micro-batch). `0` and `1` both
    /// mean "every one".
    pub sample_every: u32,
    /// Ring capacity, in spans, per [`ThreadTracer`].
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    /// Disabled — observability is strictly opt-in.
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            sample_every: DEFAULT_SAMPLE_EVERY,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

/// The default 1-in-N sampling rate ([`TraceConfig::sampled`]).
pub const DEFAULT_SAMPLE_EVERY: u32 = 8;

/// The default per-thread ring capacity, in spans.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

impl TraceConfig {
    /// Enabled at the default 1-in-8 sampling rate (the "default
    /// sampling" point of the overhead budget: ≤ 3% end-to-end).
    pub fn sampled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Enabled, sampling every unit of work (full-fidelity traces for
    /// short runs and tests).
    pub fn always() -> Self {
        TraceConfig {
            enabled: true,
            sample_every: 1,
            ..TraceConfig::default()
        }
    }
}

struct Shared {
    cfg: TraceConfig,
    epoch: Instant,
    tick: AtomicU64,
    next_tid: AtomicU32,
    dropped: AtomicU64,
    collector: Arc<CollectorSink>,
    sink: Arc<dyn TraceSink>,
}

/// The shared half of the tracer: configuration, the sampling gate and
/// the flush sink. Clone it freely — clones share everything.
#[derive(Clone)]
pub struct Tracer {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("cfg", &self.shared.cfg)
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer collecting into the built-in sink (see
    /// [`Tracer::drain`]).
    pub fn new(cfg: TraceConfig) -> Tracer {
        let collector = Arc::new(CollectorSink::default());
        Tracer {
            shared: Arc::new(Shared {
                cfg,
                epoch: Instant::now(),
                tick: AtomicU64::new(0),
                next_tid: AtomicU32::new(0),
                dropped: AtomicU64::new(0),
                sink: Arc::<CollectorSink>::clone(&collector),
                collector,
            }),
        }
    }

    /// A tracer flushing to a custom [`TraceSink`] instead of the
    /// built-in collector ([`Tracer::drain`] then always answers empty).
    pub fn with_sink(cfg: TraceConfig, sink: Arc<dyn TraceSink>) -> Tracer {
        let collector = Arc::new(CollectorSink::default());
        Tracer {
            shared: Arc::new(Shared {
                cfg,
                epoch: Instant::now(),
                tick: AtomicU64::new(0),
                next_tid: AtomicU32::new(0),
                dropped: AtomicU64::new(0),
                sink,
                collector,
            }),
        }
    }

    /// A permanently-off tracer: `sample()` is always `false`, records
    /// are no-ops. The zero-configuration default everywhere.
    pub fn disabled() -> Tracer {
        Tracer::new(TraceConfig::default())
    }

    /// The tracer's configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.shared.cfg
    }

    /// `true` when tracing is on at all.
    pub fn enabled(&self) -> bool {
        self.shared.cfg.enabled
    }

    /// The sampling gate: `true` for 1 in
    /// [`TraceConfig::sample_every`] calls (always `false` when
    /// disabled). Call once per unit of work and skip all recording on
    /// `false` — that makes the per-unit cost of an unsampled batch one
    /// relaxed `fetch_add`.
    pub fn sample(&self) -> bool {
        if !self.shared.cfg.enabled {
            return false;
        }
        let every = self.shared.cfg.sample_every.max(1) as u64;
        self.shared
            .tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }

    /// The instant all span timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.shared.epoch
    }

    /// A new per-thread recorder with a fresh trace-local thread id.
    pub fn thread(&self) -> ThreadTracer {
        ThreadTracer {
            shared: Arc::clone(&self.shared),
            tid: self.shared.next_tid.fetch_add(1, Ordering::Relaxed),
            ring: Vec::new(),
            next: 0,
            filled: false,
        }
    }

    /// Spans overwritten in wrapped rings (never flushed).
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Empties the built-in collector, returning every flushed span
    /// sorted by start time. Flush the [`ThreadTracer`]s first (worker
    /// tracers flush on drop).
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut events = std::mem::take(
            &mut *self
                .shared
                .collector
                .events
                .lock()
                .unwrap_or_else(|p| p.into_inner()),
        );
        events.sort_by_key(|e| (e.start_ns, e.tid));
        events
    }
}

/// One thread's span recorder: a bounded ring the thread exclusively
/// owns. Create via [`Tracer::thread`]; it flushes on drop.
pub struct ThreadTracer {
    shared: Arc<Shared>,
    tid: u32,
    ring: Vec<SpanEvent>,
    /// Next write slot.
    next: usize,
    /// `true` once the ring has wrapped at least once.
    filled: bool,
}

impl std::fmt::Debug for ThreadTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadTracer")
            .field("tid", &self.tid)
            .field("buffered", &self.buffered())
            .finish()
    }
}

impl ThreadTracer {
    /// This recorder's trace-local thread id.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Delegates to [`Tracer::sample`] (same shared gate).
    pub fn sample(&self) -> bool {
        if !self.shared.cfg.enabled {
            return false;
        }
        let every = self.shared.cfg.sample_every.max(1) as u64;
        self.shared
            .tick
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }

    /// `true` when tracing is on at all.
    pub fn enabled(&self) -> bool {
        self.shared.cfg.enabled
    }

    /// Spans currently buffered in the ring.
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }

    /// Records one completed span (no-op when tracing is disabled).
    /// `end` earlier than `start` clamps to a zero duration.
    pub fn record(&mut self, name: &'static str, start: Instant, end: Instant) {
        if !self.shared.cfg.enabled {
            return;
        }
        let event = SpanEvent {
            name,
            tid: self.tid,
            start_ns: start
                .saturating_duration_since(self.shared.epoch)
                .as_nanos() as u64,
            dur_ns: end.saturating_duration_since(start).as_nanos() as u64,
        };
        let cap = self.shared.cfg.ring_capacity.max(1);
        if self.ring.len() < cap {
            self.ring.push(event);
            self.next = self.ring.len() % cap;
            self.filled = self.next == 0 && self.ring.len() == cap;
        } else {
            // Wrapped: overwrite the oldest slot, account the loss.
            self.ring[self.next] = event;
            self.next = (self.next + 1) % cap;
            self.filled = true;
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hands the buffered spans (oldest first) to the sink and empties
    /// the ring. Also runs on drop.
    pub fn flush(&mut self) {
        if self.ring.is_empty() {
            return;
        }
        if self.filled && self.next != 0 {
            // Ring wrapped: re-linearize to oldest-first before flushing.
            self.ring.rotate_left(self.next);
        }
        self.shared.sink.consume(&self.ring);
        self.ring.clear();
        self.next = 0;
        self.filled = false;
    }
}

impl Drop for ThreadTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn at(tracer: &Tracer, offset_ns: u64) -> Instant {
        tracer.epoch() + Duration::from_nanos(offset_ns)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let mut t = tracer.thread();
        assert!(!t.sample());
        t.record("x", at(&tracer, 0), at(&tracer, 10));
        t.flush();
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn spans_round_trip_through_flush_and_drain() {
        let tracer = Tracer::new(TraceConfig::always());
        let mut t = tracer.thread();
        t.record("a", at(&tracer, 100), at(&tracer, 250));
        t.record("b", at(&tracer, 300), at(&tracer, 340));
        t.flush();
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].start_ns, 100);
        assert_eq!(events[0].dur_ns, 150);
        assert_eq!(events[1].name, "b");
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let cfg = TraceConfig {
            enabled: true,
            sample_every: 1,
            ring_capacity: 4,
        };
        let tracer = Tracer::new(cfg);
        let mut t = tracer.thread();
        for i in 0..10u64 {
            t.record("s", at(&tracer, i * 10), at(&tracer, i * 10 + 5));
        }
        t.flush();
        let events = tracer.drain();
        // Only the newest 4 survive, oldest-first.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].start_ns, 60);
        assert_eq!(events[3].start_ns, 90);
        assert_eq!(tracer.dropped(), 6);
    }

    #[test]
    fn sampling_gate_passes_one_in_n() {
        let cfg = TraceConfig {
            enabled: true,
            sample_every: 4,
            ring_capacity: 64,
        };
        let tracer = Tracer::new(cfg);
        let hits = (0..100).filter(|_| tracer.sample()).count();
        assert_eq!(hits, 25);
    }

    #[test]
    fn thread_ids_are_distinct() {
        let tracer = Tracer::new(TraceConfig::always());
        let a = tracer.thread();
        let b = tracer.thread();
        assert_ne!(a.tid(), b.tid());
    }

    #[test]
    fn custom_sink_receives_flushes() {
        #[derive(Default)]
        struct Count(AtomicU64);
        impl TraceSink for Count {
            fn consume(&self, events: &[SpanEvent]) {
                self.0.fetch_add(events.len() as u64, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(Count::default());
        let tracer = Tracer::with_sink(TraceConfig::always(), Arc::<Count>::clone(&sink));
        let mut t = tracer.thread();
        t.record("x", at(&tracer, 0), at(&tracer, 1));
        drop(t); // drop flushes
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
        assert!(tracer.drain().is_empty(), "custom sink bypasses drain");
    }
}
