//! `obs-check` — validates observability artifacts without a browser or
//! a Prometheus server in the loop.
//!
//! ```text
//! obs-check [--prom FILE]... [--trace FILE]...
//!           [--scrape ADDR [--scrape-timeout SECS]]
//! ```
//!
//! Each `--prom` file must parse as Prometheus text exposition with at
//! least one sample and no NaNs; each `--trace` file must parse as a
//! Chrome `trace_event` document. Exits non-zero naming the first
//! offending file. CI points this at what `deepcsi-served
//! --metrics-file/--trace-file` wrote.
//!
//! `--scrape ADDR` validates a *live* observability plane over loopback
//! instead of (or in addition to) files: it retries `/readyz` until the
//! plane answers 200 (up to `--scrape-timeout`, default 30 s), then
//! fetches `/metrics` (must parse as Prometheus text with samples),
//! `/healthz` (must be JSON with a `state`), `/stats.json` (JSON
//! object) and `/audit/tail?n=5` (JSON array). CI points this at a
//! backgrounded `deepcsi-served --obs-listen ADDR --obs-linger SECS`.

use deepcsi_obs::{http_get, parse_chrome_trace, parse_prometheus, JsonValue};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: obs-check [--prom FILE]... [--trace FILE]... \
         [--scrape ADDR [--scrape-timeout SECS]]"
    );
    ExitCode::FAILURE
}

/// Polls `/readyz` until the plane answers 200, then validates every
/// scrape endpoint with the same parsers the file checks use. Returns
/// an error string naming the first failing endpoint.
fn check_scrape(addr: &str, timeout: Duration) -> Result<(), String> {
    let per_request = Duration::from_secs(5).min(timeout);
    // The served process may still be training/loading its model when
    // CI launches the check — wait for readiness, not just for bind.
    let deadline = Instant::now() + timeout;
    loop {
        match http_get(addr, "/readyz", per_request) {
            Ok((200, _)) => break,
            Ok((status, _)) if Instant::now() >= deadline => {
                return Err(format!("/readyz still {status} after {timeout:?}"));
            }
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("/readyz unreachable after {timeout:?}: {e}"));
            }
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
    println!("obs-check: {addr}: /readyz ok");

    let get = |path: &str| -> Result<String, String> {
        match http_get(addr, path, per_request) {
            Ok((200, body)) => Ok(body),
            Ok((status, body)) => Err(format!("{path}: status {status}: {body}")),
            Err(e) => Err(format!("{path}: {e}")),
        }
    };

    let metrics = get("/metrics")?;
    match parse_prometheus(&metrics) {
        Ok(samples) if samples.is_empty() => return Err("/metrics: no samples".to_string()),
        Ok(samples) => println!("obs-check: {addr}: /metrics {} samples ok", samples.len()),
        Err(e) => return Err(format!("/metrics: {e}")),
    }

    let healthz = get("/healthz")?;
    let health = JsonValue::parse(&healthz).map_err(|e| format!("/healthz: {e}"))?;
    let state = health
        .get("state")
        .and_then(|v| v.as_str().map(str::to_string))
        .ok_or_else(|| format!("/healthz: no state in {healthz}"))?;
    println!("obs-check: {addr}: /healthz state {state} ok");

    let stats = get("/stats.json")?;
    let parsed = JsonValue::parse(&stats).map_err(|e| format!("/stats.json: {e}"))?;
    if parsed.get("deepcsi_ingested_total").is_none() {
        return Err(format!("/stats.json: no deepcsi_ingested_total in {stats}"));
    }
    println!("obs-check: {addr}: /stats.json ok");

    let tail = get("/audit/tail?n=5")?;
    let events = JsonValue::parse(&tail)
        .map_err(|e| format!("/audit/tail: {e}"))?
        .as_array()
        .map(<[JsonValue]>::len)
        .ok_or_else(|| format!("/audit/tail: not an array: {tail}"))?;
    println!("obs-check: {addr}: /audit/tail {events} event(s) ok");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    // --scrape-timeout applies to --scrape; find it in a first pass so
    // flag order doesn't matter.
    let mut scrape_timeout = Duration::from_secs(30);
    if let Some(i) = args.iter().position(|a| a == "--scrape-timeout") {
        let Some(secs) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) else {
            eprintln!("obs-check: --scrape-timeout needs a positive integer");
            return usage();
        };
        scrape_timeout = Duration::from_secs(secs);
    }

    let mut checked = 0usize;
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = (args[i].as_str(), args.get(i + 1));
        let Some(value) = value else {
            eprintln!("obs-check: {flag} needs an argument");
            return usage();
        };
        match flag {
            "--scrape" => {
                if let Err(e) = check_scrape(value, scrape_timeout) {
                    eprintln!("obs-check: {value}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            "--scrape-timeout" => {} // consumed in the first pass
            "--prom" | "--trace" => {
                let path = value;
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("obs-check: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match flag {
                    "--prom" => match parse_prometheus(&text) {
                        Ok(samples) if samples.is_empty() => {
                            eprintln!("obs-check: {path}: no samples");
                            return ExitCode::FAILURE;
                        }
                        Ok(samples) => {
                            println!("obs-check: {path}: {} samples ok", samples.len());
                        }
                        Err(e) => {
                            eprintln!("obs-check: {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                    _ => match parse_chrome_trace(&text) {
                        Ok(spans) => {
                            println!("obs-check: {path}: {} spans ok", spans.len());
                        }
                        Err(e) => {
                            eprintln!("obs-check: {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    },
                }
            }
            other => {
                eprintln!("obs-check: unknown flag {other}");
                return usage();
            }
        }
        checked += 1;
        i += 2;
    }
    println!("obs-check: {checked} check(s) ok");
    ExitCode::SUCCESS
}
