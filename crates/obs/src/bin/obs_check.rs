//! `obs-check` — validates observability artifacts without a browser or
//! a Prometheus server in the loop.
//!
//! ```text
//! obs-check [--prom FILE]... [--trace FILE]...
//! ```
//!
//! Each `--prom` file must parse as Prometheus text exposition with at
//! least one sample and no NaNs; each `--trace` file must parse as a
//! Chrome `trace_event` document. Exits non-zero naming the first
//! offending file. CI points this at what `deepcsi-served
//! --metrics-file/--trace-file` wrote.

use deepcsi_obs::{parse_chrome_trace, parse_prometheus};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: obs-check [--prom FILE]... [--trace FILE]...");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut checked = 0usize;
    let mut i = 0;
    while i < args.len() {
        let (flag, path) = (args[i].as_str(), args.get(i + 1));
        let Some(path) = path else {
            eprintln!("obs-check: {flag} needs a file argument");
            return usage();
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-check: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match flag {
            "--prom" => match parse_prometheus(&text) {
                Ok(samples) if samples.is_empty() => {
                    eprintln!("obs-check: {path}: no samples");
                    return ExitCode::FAILURE;
                }
                Ok(samples) => {
                    println!("obs-check: {path}: {} samples ok", samples.len());
                }
                Err(e) => {
                    eprintln!("obs-check: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match parse_chrome_trace(&text) {
                Ok(spans) => {
                    println!("obs-check: {path}: {} spans ok", spans.len());
                }
                Err(e) => {
                    eprintln!("obs-check: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("obs-check: unknown flag {other}");
                return usage();
            }
        }
        checked += 1;
        i += 2;
    }
    println!("obs-check: {checked} file(s) ok");
    ExitCode::SUCCESS
}
