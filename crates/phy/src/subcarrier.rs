//! Sounded OFDM subcarrier layouts for VHT channel sounding.

use crate::{Band, WifiChannel};
use serde::{Deserialize, Serialize};

/// The set of OFDM sub-channels sounded during VHT channel sounding.
///
/// For an 80 MHz VHT channel the usable tones are −122…−2 and +2…+122
/// (242 tones); the 8 pilot tones (±11, ±39, ±75, ±103) carry known symbols
/// and are not fed back, leaving **K = 234** sounded sub-channels — the
/// figure quoted in §IV of the paper ("the mechanism does not consider the
/// 14 control sub-channels and the 8 pilot ones").
///
/// Narrower-band views (Fig. 12a) are produced by [`SubcarrierLayout::subband`],
/// which keeps only the sounded tones that fall inside the narrower
/// channel's frequency span — mirroring how the paper extracts channels 38
/// and 36 from the channel-42 capture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubcarrierLayout {
    band: Band,
    indices: Vec<i32>,
}

impl SubcarrierLayout {
    /// The 80 MHz VHT sounding layout (K = 234).
    pub fn vht80() -> Self {
        let pilots = [-103, -75, -39, -11, 11, 39, 75, 103];
        let mut indices = Vec::with_capacity(234);
        for k in -122..=122 {
            if (-1..=1).contains(&k) {
                continue; // DC region
            }
            if pilots.contains(&k) {
                continue;
            }
            indices.push(k);
        }
        SubcarrierLayout {
            band: Band::Mhz80,
            indices,
        }
    }

    /// The 40 MHz VHT sounding layout (tones −58…−2, +2…+58 minus pilots
    /// ±11, ±53), used when a device natively sounds a 40 MHz channel.
    pub fn vht40() -> Self {
        let pilots = [-53, -11, 11, 53];
        let mut indices = Vec::new();
        for k in -58..=58 {
            if (-1..=1).contains(&k) || pilots.contains(&k) {
                continue;
            }
            indices.push(k);
        }
        SubcarrierLayout {
            band: Band::Mhz40,
            indices,
        }
    }

    /// The 20 MHz VHT sounding layout (tones −28…−1, +1…+28 minus pilots
    /// ±7, ±21).
    pub fn vht20() -> Self {
        let pilots = [-21, -7, 7, 21];
        let mut indices = Vec::new();
        for k in -28..=28 {
            if k == 0 || pilots.contains(&k) {
                continue;
            }
            indices.push(k);
        }
        SubcarrierLayout {
            band: Band::Mhz20,
            indices,
        }
    }

    /// Layout for a given bandwidth.
    pub fn for_band(band: Band) -> Self {
        match band {
            Band::Mhz20 => Self::vht20(),
            Band::Mhz40 => Self::vht40(),
            Band::Mhz80 | Band::Mhz160 => Self::vht80(),
        }
    }

    /// Bandwidth this layout belongs to.
    pub fn band(&self) -> Band {
        self.band
    }

    /// The sounded subcarrier indices, ascending.
    pub fn indices(&self) -> &[i32] {
        &self.indices
    }

    /// Number of sounded sub-channels (the paper's `K`, or `Ncol` after
    /// sub-band selection).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Returns `true` when no subcarriers are sounded.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Position of subcarrier index `k` within this layout, if sounded.
    pub fn position_of(&self, k: i32) -> Option<usize> {
        self.indices.binary_search(&k).ok()
    }

    /// Carves the view of a narrower channel out of this layout: keeps the
    /// sounded tones whose frequency falls inside `sub`'s span, expressed
    /// as **positions** into this layout (usable to slice captured data).
    ///
    /// The paper extracts 110 tones for the 40 MHz channel 38 and 54 tones
    /// for the 20 MHz channel 36 out of the 234-tone channel-42 capture;
    /// this method reproduces those counts.
    ///
    /// # Panics
    ///
    /// Panics if `sub` is wider than `parent`.
    pub fn subband(&self, parent: &WifiChannel, sub: &WifiChannel) -> Vec<usize> {
        assert!(
            sub.band.hz() <= parent.band.hz(),
            "sub-channel must be narrower than the parent channel"
        );
        let offset = sub.tone_offset_from(parent);
        // Span of usable tones of the sub-channel, in the parent's tone grid.
        // A 40 MHz channel uses tones ±58 around its own center; a 20 MHz
        // channel ±28; an 80 MHz channel ±122. The sub-channel's own DC and
        // edge tones are excluded, and the parent's pilot holes remain —
        // matching what an observer slicing an 80 MHz capture actually has.
        let half = match sub.band {
            Band::Mhz20 => 28,
            Band::Mhz40 => 58,
            Band::Mhz80 => 122,
            Band::Mhz160 => 250,
        };
        let lo = offset - half;
        let hi = offset + half;
        self.indices
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k <= hi && k != offset)
            .map(|(pos, _)| pos)
            .collect()
    }
}

impl Default for SubcarrierLayout {
    fn default() -> Self {
        SubcarrierLayout::vht80()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vht80_has_234_sounded_tones() {
        let l = SubcarrierLayout::vht80();
        assert_eq!(l.len(), 234);
        assert_eq!(l.indices()[0], -122);
        assert_eq!(*l.indices().last().unwrap(), 122);
        // Pilots and DC are excluded.
        for k in [-103, -75, -39, -11, -1, 0, 1, 11, 39, 75, 103] {
            assert_eq!(l.position_of(k), None, "tone {k} should not be sounded");
        }
    }

    #[test]
    fn vht40_has_110_sounded_tones() {
        assert_eq!(SubcarrierLayout::vht40().len(), 110);
    }

    #[test]
    fn vht20_has_52_sounded_tones() {
        assert_eq!(SubcarrierLayout::vht20().len(), 52);
    }

    #[test]
    fn indices_sorted_ascending() {
        for l in [
            SubcarrierLayout::vht20(),
            SubcarrierLayout::vht40(),
            SubcarrierLayout::vht80(),
        ] {
            assert!(l.indices().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn subband_40mhz_extraction_count() {
        let l = SubcarrierLayout::vht80();
        let pos = l.subband(&WifiChannel::CH42, &WifiChannel::CH38);
        // 40 MHz span [−122, −6]: 117 raw tones − 4 pilots − DC/edge carving
        // ≈ the paper's 110-tone figure (±a few edge tones).
        assert!(
            (108..=113).contains(&pos.len()),
            "40 MHz subset has {} tones",
            pos.len()
        );
        // Every selected position maps to a tone in the 40 MHz span.
        for &p in &pos {
            let k = l.indices()[p];
            assert!((-122..=-6).contains(&k));
        }
    }

    #[test]
    fn subband_20mhz_extraction_count() {
        let l = SubcarrierLayout::vht80();
        let pos = l.subband(&WifiChannel::CH42, &WifiChannel::CH36);
        assert!(
            (50..=55).contains(&pos.len()),
            "20 MHz subset has {} tones",
            pos.len()
        );
    }

    #[test]
    fn subband_of_same_channel_is_everything_but_dc() {
        let l = SubcarrierLayout::vht80();
        let pos = l.subband(&WifiChannel::CH42, &WifiChannel::CH42);
        assert_eq!(pos.len(), l.len()); // DC already excluded from layout
    }

    #[test]
    #[should_panic(expected = "narrower")]
    fn subband_wider_than_parent_panics() {
        let l = SubcarrierLayout::vht20();
        let _ = l.subband(&WifiChannel::CH36, &WifiChannel::CH42);
    }

    #[test]
    fn position_of_finds_sounded_tones() {
        let l = SubcarrierLayout::vht80();
        assert_eq!(l.position_of(-122), Some(0));
        assert_eq!(l.position_of(2), l.position_of(-2).map(|p| p + 1));
    }
}
