//! Carrier frequencies, bandwidths and timing constants.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Speed of light in vacuum \[m/s\]; used to convert path lengths to delays.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// OFDM subcarrier spacing for 802.11ac, `1/T` \[Hz\].
pub const SUBCARRIER_SPACING_HZ: f64 = 312_500.0;

/// Useful OFDM symbol period `T` \[s\] (without guard interval).
pub const SYMBOL_PERIOD_S: f64 = 1.0 / SUBCARRIER_SPACING_HZ;

/// Channel bandwidth of a VHT transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Band {
    /// 20 MHz channel.
    Mhz20,
    /// 40 MHz channel.
    Mhz40,
    /// 80 MHz channel (the paper's capture bandwidth).
    #[default]
    Mhz80,
    /// 160 MHz channel (supported by the standard; unused in the paper).
    Mhz160,
}

impl Band {
    /// Bandwidth in hertz.
    pub fn hz(self) -> f64 {
        match self {
            Band::Mhz20 => 20e6,
            Band::Mhz40 => 40e6,
            Band::Mhz80 => 80e6,
            Band::Mhz160 => 160e6,
        }
    }

    /// The 2-bit Channel Width field value used in the VHT MIMO Control
    /// field (0 = 20 MHz … 3 = 160 MHz).
    pub fn vht_width_field(self) -> u8 {
        match self {
            Band::Mhz20 => 0,
            Band::Mhz40 => 1,
            Band::Mhz80 => 2,
            Band::Mhz160 => 3,
        }
    }

    /// Inverse of [`Band::vht_width_field`].
    pub fn from_vht_width_field(v: u8) -> Option<Band> {
        match v {
            0 => Some(Band::Mhz20),
            1 => Some(Band::Mhz40),
            2 => Some(Band::Mhz80),
            3 => Some(Band::Mhz160),
            _ => None,
        }
    }
}

impl fmt::Display for Band {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Band::Mhz20 => write!(f, "20 MHz"),
            Band::Mhz40 => write!(f, "40 MHz"),
            Band::Mhz80 => write!(f, "80 MHz"),
            Band::Mhz160 => write!(f, "160 MHz"),
        }
    }
}

/// A Wi-Fi channel: IEEE channel number, center frequency and bandwidth.
///
/// The paper's testbed transmits on channel 42 (`fc` = 5.21 GHz, 80 MHz)
/// and the bandwidth ablation of Fig. 12a extracts channel 38 (40 MHz) and
/// channel 36 (20 MHz) subsets from the same capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiChannel {
    /// IEEE channel number.
    pub number: u16,
    /// Center frequency \[Hz\].
    pub center_hz: f64,
    /// Channel bandwidth.
    pub band: Band,
}

impl WifiChannel {
    /// Channel 42: 80 MHz centred at 5.21 GHz — the paper's data channel.
    pub const CH42: WifiChannel = WifiChannel {
        number: 42,
        center_hz: 5.210e9,
        band: Band::Mhz80,
    };

    /// Channel 38: 40 MHz centred at 5.19 GHz (lower half of channel 42).
    pub const CH38: WifiChannel = WifiChannel {
        number: 38,
        center_hz: 5.190e9,
        band: Band::Mhz40,
    };

    /// Channel 36: 20 MHz centred at 5.18 GHz (lower quarter of channel 42).
    pub const CH36: WifiChannel = WifiChannel {
        number: 36,
        center_hz: 5.180e9,
        band: Band::Mhz20,
    };

    /// Carrier wavelength λ = c / fc \[m\].
    pub fn wavelength(&self) -> f64 {
        SPEED_OF_LIGHT / self.center_hz
    }

    /// Frequency of OFDM subcarrier `k` relative to this channel's center:
    /// `fc + k/T` (paper Eq. (2)).
    pub fn subcarrier_freq(&self, k: i32) -> f64 {
        self.center_hz + k as f64 * SUBCARRIER_SPACING_HZ
    }

    /// Offset (in 312.5 kHz tones) of this channel's center from another
    /// channel's center. Used to re-index subcarriers when carving a
    /// narrower channel out of an 80 MHz capture.
    pub fn tone_offset_from(&self, other: &WifiChannel) -> i32 {
        ((self.center_hz - other.center_hz) / SUBCARRIER_SPACING_HZ).round() as i32
    }
}

impl Default for WifiChannel {
    fn default() -> Self {
        WifiChannel::CH42
    }
}

impl fmt::Display for WifiChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{} ({:.2} GHz, {})",
            self.number,
            self.center_hz / 1e9,
            self.band
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel42_matches_paper() {
        let ch = WifiChannel::CH42;
        assert_eq!(ch.number, 42);
        assert!((ch.center_hz - 5.21e9).abs() < 1.0);
        assert_eq!(ch.band, Band::Mhz80);
    }

    #[test]
    fn wavelength_at_5ghz_is_about_575mm_over_10() {
        let lambda = WifiChannel::CH42.wavelength();
        assert!((lambda - 0.05754).abs() < 1e-4, "λ = {lambda}");
    }

    #[test]
    fn subcarrier_frequency_spacing() {
        let ch = WifiChannel::CH42;
        let f1 = ch.subcarrier_freq(1);
        let f0 = ch.subcarrier_freq(0);
        assert!((f1 - f0 - SUBCARRIER_SPACING_HZ).abs() < 1e-6);
        assert!((ch.subcarrier_freq(-122) - (5.21e9 - 122.0 * 312_500.0)).abs() < 1e-3);
    }

    #[test]
    fn tone_offsets_of_subchannels() {
        // ch38 center is 20 MHz below ch42 → −64 tones.
        assert_eq!(WifiChannel::CH38.tone_offset_from(&WifiChannel::CH42), -64);
        // ch36 center is 30 MHz below ch42 → −96 tones.
        assert_eq!(WifiChannel::CH36.tone_offset_from(&WifiChannel::CH42), -96);
    }

    #[test]
    fn width_field_roundtrip() {
        for b in [Band::Mhz20, Band::Mhz40, Band::Mhz80, Band::Mhz160] {
            assert_eq!(Band::from_vht_width_field(b.vht_width_field()), Some(b));
        }
        assert_eq!(Band::from_vht_width_field(7), None);
    }

    #[test]
    fn symbol_period_is_3_2_us() {
        assert!((SYMBOL_PERIOD_S - 3.2e-6).abs() < 1e-12);
    }
}
