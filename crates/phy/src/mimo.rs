//! MIMO dimensioning: TX/RX antennas and spatial streams.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a MIMO configuration violates the standard's
/// dimensioning rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidMimoConfig(String);

impl fmt::Display for InvalidMimoConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MIMO configuration: {}", self.0)
    }
}

impl std::error::Error for InvalidMimoConfig {}

/// Antenna/stream dimensioning of one beamformer→beamformee link.
///
/// * `m_tx` — number of transmit antennas at the beamformer (paper: M = 3).
/// * `n_rx` — number of receive antennas at the beamformee (N ∈ {1, 2}).
/// * `n_ss` — number of spatial streams fed back (N_SS ≤ N, §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MimoConfig {
    m_tx: usize,
    n_rx: usize,
    n_ss: usize,
}

impl MimoConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidMimoConfig`] unless
    /// `1 ≤ n_ss ≤ n_rx ≤ 8` and `n_ss ≤ m_tx ≤ 8`.
    pub fn new(m_tx: usize, n_rx: usize, n_ss: usize) -> Result<Self, InvalidMimoConfig> {
        if m_tx == 0 || m_tx > 8 {
            return Err(InvalidMimoConfig(format!("m_tx={m_tx} outside 1..=8")));
        }
        if n_rx == 0 || n_rx > 8 {
            return Err(InvalidMimoConfig(format!("n_rx={n_rx} outside 1..=8")));
        }
        if n_ss == 0 || n_ss > n_rx {
            return Err(InvalidMimoConfig(format!(
                "n_ss={n_ss} must satisfy 1 ≤ n_ss ≤ n_rx={n_rx}"
            )));
        }
        if n_ss > m_tx {
            return Err(InvalidMimoConfig(format!(
                "n_ss={n_ss} cannot exceed m_tx={m_tx}"
            )));
        }
        Ok(MimoConfig { m_tx, n_rx, n_ss })
    }

    /// The paper's main configuration: M = 3 TX antennas, N = 2 RX
    /// antennas, N_SS = 2 spatial streams per beamformee.
    pub fn paper_default() -> Self {
        MimoConfig {
            m_tx: 3,
            n_rx: 2,
            n_ss: 2,
        }
    }

    /// Number of transmit antennas M.
    pub fn m_tx(&self) -> usize {
        self.m_tx
    }

    /// Number of receive antennas N.
    pub fn n_rx(&self) -> usize {
        self.n_rx
    }

    /// Number of spatial streams N_SS.
    pub fn n_ss(&self) -> usize {
        self.n_ss
    }

    /// Number of (φ, ψ) angles of one subcarrier's feedback: Algorithm 1
    /// produces, for `i = 1..min(N_SS, M−1)`, the φ angles `φ_{i..M−1,i}`
    /// and the ψ angles `ψ_{i+1..M,i}`.
    ///
    /// For the paper's 3×2 feedback this is 6 angles (φ11 φ21 ψ21 ψ31 φ22
    /// ψ32); the same count as the standard's Table 8-53g row "Nr=3, Nc=2".
    pub fn num_angle_pairs(&self) -> usize {
        let m = self.m_tx;
        let imax = self.n_ss.min(m - 1);
        let mut count = 0;
        for i in 1..=imax {
            count += m - i; // φ_{i..M−1,i}
            count += m - i; // ψ_{i+1..M,i}
        }
        count
    }

    /// Number of φ angles per subcarrier.
    pub fn num_phi(&self) -> usize {
        self.num_angle_pairs() / 2
    }

    /// Number of ψ angles per subcarrier.
    pub fn num_psi(&self) -> usize {
        self.num_angle_pairs() / 2
    }

    /// Number of real-valued input channels a classifier sees when stacking
    /// I/Q of the Ṽ rows (the paper's `Nch < 2M`): every TX antenna row
    /// contributes I and Q except the last, which is real by construction.
    pub fn num_iq_channels(&self) -> usize {
        2 * self.m_tx - 1
    }
}

impl Default for MimoConfig {
    fn default() -> Self {
        MimoConfig::paper_default()
    }
}

impl fmt::Display for MimoConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} ({} ss)", self.m_tx, self.n_rx, self.n_ss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_dimensions() {
        let c = MimoConfig::paper_default();
        assert_eq!(c.m_tx(), 3);
        assert_eq!(c.n_rx(), 2);
        assert_eq!(c.n_ss(), 2);
        assert_eq!(c.num_iq_channels(), 5);
    }

    #[test]
    fn angle_counts_match_standard_table() {
        // (M, NSS) → angle count per the 802.11 Givens ordering.
        let cases = [
            (2, 1, 2),  // φ11 ψ21
            (3, 1, 4),  // φ11 φ21 ψ21 ψ31
            (3, 2, 6),  // + φ22 ψ32
            (4, 1, 6),  // φ11 φ21 φ31 ψ21 ψ31 ψ41
            (4, 2, 10), // + φ22 φ32 ψ32 ψ42
        ];
        for (m, nss, want) in cases {
            let c = MimoConfig::new(m, nss.max(1), nss).unwrap();
            assert_eq!(c.num_angle_pairs(), want, "M={m} NSS={nss}");
        }
    }

    #[test]
    fn phi_psi_split_evenly() {
        let c = MimoConfig::new(3, 2, 2).unwrap();
        assert_eq!(c.num_phi(), 3);
        assert_eq!(c.num_psi(), 3);
    }

    #[test]
    fn rejects_zero_and_oversize() {
        assert!(MimoConfig::new(0, 2, 1).is_err());
        assert!(MimoConfig::new(3, 0, 1).is_err());
        assert!(MimoConfig::new(3, 2, 0).is_err());
        assert!(MimoConfig::new(9, 2, 1).is_err());
        assert!(MimoConfig::new(3, 9, 1).is_err());
    }

    #[test]
    fn rejects_nss_above_nrx_or_mtx() {
        assert!(MimoConfig::new(3, 2, 3).is_err()); // nss > n_rx
        assert!(MimoConfig::new(1, 2, 2).is_err()); // nss > m_tx
    }

    #[test]
    fn error_displays() {
        let e = MimoConfig::new(0, 1, 1).unwrap_err();
        assert!(format!("{e}").contains("m_tx"));
    }
}
