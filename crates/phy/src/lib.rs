//! IEEE 802.11ac/ax PHY constants and OFDM layouts.
//!
//! This crate pins down the physical-layer facts the rest of the DeepCSI
//! reproduction builds on:
//!
//! * [`Band`] / [`WifiChannel`] — carrier frequencies and bandwidths of the
//!   channels used in the paper's testbed (channel 42 @ 5.21 GHz, 80 MHz,
//!   and its 40/20 MHz sub-channels 38 and 36).
//! * [`SubcarrierLayout`] — which OFDM sub-channels are *sounded* during
//!   VHT channel sounding (K = 234 for 80 MHz after removing control and
//!   pilot tones, matching §IV of the paper) and how narrower-band subsets
//!   are carved out of an 80 MHz capture (Fig. 12a).
//! * [`MimoConfig`] — transmit/receive antenna counts and spatial streams.
//! * [`Codebook`] — the (bψ, bφ) angle-quantization bit widths of the
//!   standard's SU/MU feedback codebooks (§III-B, Eq. (8)).
//!
//! # Example
//!
//! ```
//! use deepcsi_phy::{SubcarrierLayout, Codebook, MimoConfig};
//!
//! let layout = SubcarrierLayout::vht80();
//! assert_eq!(layout.len(), 234); // K in the paper
//!
//! let cfg = MimoConfig::new(3, 2, 2).unwrap(); // M=3 TX, N=2 RX, NSS=2
//! assert_eq!(cfg.num_angle_pairs(), 6); // φ11 φ21 ψ21 ψ31 φ22 ψ32
//!
//! let cb = Codebook::MU_HIGH; // bψ=7, bφ=9 — the paper's AP setting
//! assert_eq!(cb.b_phi, 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod band;
mod codebook;
mod mimo;
mod subcarrier;

pub use band::{Band, WifiChannel, SPEED_OF_LIGHT, SUBCARRIER_SPACING_HZ, SYMBOL_PERIOD_S};
pub use codebook::Codebook;
pub use mimo::{InvalidMimoConfig, MimoConfig};
pub use subcarrier::SubcarrierLayout;
