//! Angle-quantization codebooks of the VHT compressed feedback.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A (bψ, bφ) angle-quantization codebook (§III-B of the paper,
/// IEEE 802.11ac Table 8-53c "Codebook Information").
///
/// φ angles are quantized with `b_phi` bits over `[0, 2π)` and ψ angles
/// with `b_psi = b_phi − 2` bits over `[0, π/2]`, following Eq. (8):
///
/// ```text
/// φ = π (1/2^{bφ}   + qφ / 2^{bφ−1})
/// ψ = π (1/2^{bψ+2} + qψ / 2^{bψ+1})
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Codebook {
    /// Bits for each φ angle.
    pub b_phi: u8,
    /// Bits for each ψ angle.
    pub b_psi: u8,
}

impl Codebook {
    /// SU feedback, Codebook Information = 0: (bψ=2, bφ=4).
    pub const SU_LOW: Codebook = Codebook { b_phi: 4, b_psi: 2 };
    /// SU feedback, Codebook Information = 1: (bψ=4, bφ=6).
    pub const SU_HIGH: Codebook = Codebook { b_phi: 6, b_psi: 4 };
    /// MU feedback, Codebook Information = 0: (bψ=5, bφ=7) — the coarser
    /// setting of Fig. 13a.
    pub const MU_LOW: Codebook = Codebook { b_phi: 7, b_psi: 5 };
    /// MU feedback, Codebook Information = 1: (bψ=7, bφ=9) — the paper's
    /// AP setting (§IV) and Fig. 13b.
    pub const MU_HIGH: Codebook = Codebook { b_phi: 9, b_psi: 7 };

    /// Builds a custom codebook.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ b_psi < b_phi ≤ 16` (quantized angle indices are
    /// stored in `u16`).
    pub fn new(b_phi: u8, b_psi: u8) -> Self {
        assert!(
            b_psi >= 2 && b_psi < b_phi && b_phi <= 16,
            "codebook bits must satisfy 2 ≤ bψ < bφ ≤ 16"
        );
        Codebook { b_phi, b_psi }
    }

    /// The MU codebook for a Codebook Information bit value.
    pub fn mu_from_bit(bit: u8) -> Codebook {
        if bit == 0 {
            Codebook::MU_LOW
        } else {
            Codebook::MU_HIGH
        }
    }

    /// The SU codebook for a Codebook Information bit value.
    pub fn su_from_bit(bit: u8) -> Codebook {
        if bit == 0 {
            Codebook::SU_LOW
        } else {
            Codebook::SU_HIGH
        }
    }

    /// The Codebook Information bit this codebook corresponds to, if it is
    /// one of the four standard codebooks (`(is_mu, bit)`).
    pub fn to_standard_bit(self) -> Option<(bool, u8)> {
        match self {
            Codebook::SU_LOW => Some((false, 0)),
            Codebook::SU_HIGH => Some((false, 1)),
            Codebook::MU_LOW => Some((true, 0)),
            Codebook::MU_HIGH => Some((true, 1)),
            _ => None,
        }
    }

    /// Number of quantization levels for φ.
    pub fn phi_levels(self) -> u32 {
        1u32 << self.b_phi
    }

    /// Number of quantization levels for ψ.
    pub fn psi_levels(self) -> u32 {
        1u32 << self.b_psi
    }

    /// Bits used by one subcarrier's feedback given the number of angle
    /// pairs (φ and ψ come in equal numbers for every (M, N_SS)).
    pub fn bits_per_subcarrier(self, num_angle_pairs: usize) -> usize {
        let per_pair = (self.b_phi + self.b_psi) as usize;
        num_angle_pairs / 2 * per_pair
    }
}

impl Default for Codebook {
    fn default() -> Self {
        Codebook::MU_HIGH
    }
}

impl fmt::Display for Codebook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(bψ={}, bφ={})", self.b_psi, self.b_phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_codebooks_have_bpsi_two_less() {
        for cb in [
            Codebook::SU_LOW,
            Codebook::SU_HIGH,
            Codebook::MU_LOW,
            Codebook::MU_HIGH,
        ] {
            assert_eq!(cb.b_psi + 2, cb.b_phi);
        }
    }

    #[test]
    fn paper_setting_is_mu_high() {
        // §IV: "bφ = 9 and bψ = 7".
        let cb = Codebook::MU_HIGH;
        assert_eq!(cb.b_phi, 9);
        assert_eq!(cb.b_psi, 7);
        assert_eq!(cb.phi_levels(), 512);
        assert_eq!(cb.psi_levels(), 128);
    }

    #[test]
    fn bit_mapping_roundtrip() {
        assert_eq!(Codebook::mu_from_bit(0), Codebook::MU_LOW);
        assert_eq!(Codebook::mu_from_bit(1), Codebook::MU_HIGH);
        assert_eq!(Codebook::su_from_bit(0), Codebook::SU_LOW);
        assert_eq!(Codebook::su_from_bit(1), Codebook::SU_HIGH);
        assert_eq!(Codebook::MU_HIGH.to_standard_bit(), Some((true, 1)));
        assert_eq!(Codebook::new(10, 3).to_standard_bit(), None);
    }

    #[test]
    fn bits_per_subcarrier_3x2() {
        // 3 φ + 3 ψ angles at (9,7) → 3·(9+7) = 48 bits.
        assert_eq!(Codebook::MU_HIGH.bits_per_subcarrier(6), 48);
        // Coarse MU codebook: 3·(7+5) = 36 bits.
        assert_eq!(Codebook::MU_LOW.bits_per_subcarrier(6), 36);
    }

    #[test]
    #[should_panic(expected = "codebook bits")]
    fn invalid_custom_codebook_panics() {
        let _ = Codebook::new(4, 6);
    }
}
